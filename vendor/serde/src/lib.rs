//! Offline serialization substrate, API-compatible with the slice of `serde`
//! this workspace uses: `#[derive(Serialize, Deserialize)]` plus
//! `serde_json::{to_string, from_str}` round trips.
//!
//! Unlike real serde there is no visitor machinery: serialization goes
//! through an owned [`Value`] tree ([`Serialize::to_value`] /
//! [`Deserialize::from_value`]), which is all the JSON round trips in this
//! repository need. The derive macros live in the vendored `serde_derive`
//! crate and target these traits.

#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// An owned, JSON-shaped data tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array (mirrors `serde_json::Value`).
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any numeric variant.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with a message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted to a [`Value`].
pub trait Serialize {
    /// Converts `self` into an owned data tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a data tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: extracts and deserializes an object field.
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::from_value(field),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Value::Int(v as i64) } else { Value::UInt(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: u64 = match v {
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::UInt(u) => *u,
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => *f as u64,
                    other => return Err(Error::msg(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::msg(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| Error::msg("array length mismatch"))
            }
            Value::Array(items) => Err(Error::msg(format!(
                "expected array of length {N}, got {}",
                items.len()
            ))),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                $name::from_value(
                                    it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                                )?
                            },
                        )+))
                    }
                    other => Err(Error::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs: u64 = from_field(v, "secs")?;
        let nanos: u32 = from_field(v, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<K: Serialize + ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u32).to_value(), Value::Int(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::Int(5)).unwrap(), Some(5));
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1u64, 2, 3];
        let val = v.to_value();
        assert_eq!(Vec::<u64>::from_value(&val).unwrap(), v);
    }

    #[test]
    fn duration_round_trip() {
        let d = Duration::new(5, 123_456_789);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::Int(3)).unwrap(), 3);
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1u32, 2.5f64);
        let v = t.to_value();
        assert_eq!(<(u32, f64)>::from_value(&v).unwrap(), t);
    }
}

//! Offline subset of `rayon` built on `std::thread::scope`.
//!
//! Provides indexed parallel iterators over slices and ranges with `map`,
//! `enumerate`, `collect`, `for_each`, and `sum`, plus [`join`]. Work is
//! split into one contiguous chunk per available core; item order is always
//! preserved, so `collect` output is identical to the sequential result
//! regardless of thread count. Closures must be `Fn + Sync + Send`, exactly
//! as real rayon requires.

#![warn(rust_2018_idioms)]

use std::num::NonZeroUsize;

/// Number of worker threads parallel operations will use.
///
/// Honors `RAYON_NUM_THREADS` (like real rayon's global pool), defaulting to
/// the machine's available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Everything needed to use the parallel iterator API.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Indexed parallel iterators.
pub mod iter {
    use super::current_num_threads;

    /// A parallel iterator: a length plus a `Sync` position-to-item function.
    ///
    /// All adaptors keep items indexed, so terminal operations can hand each
    /// worker thread a contiguous index range and reassemble results in
    /// order.
    pub struct ParIter<F> {
        len: usize,
        f: F,
    }

    /// Types convertible into a parallel iterator (by value).
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Types whose references convert into a parallel iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// The element type (a reference).
        type Item: Send + 'a;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = ParIter<SliceGet<'a, T>>;

        fn par_iter(&'a self) -> Self::Iter {
            ParIter {
                len: self.len(),
                f: SliceGet { slice: self },
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = ParIter<SliceGet<'a, T>>;

        fn par_iter(&'a self) -> Self::Iter {
            self.as_slice().par_iter()
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = ParIter<SliceGet<'a, T>>;

        fn into_par_iter(self) -> Self::Iter {
            self.par_iter()
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = ParIter<SliceGet<'a, T>>;

        fn into_par_iter(self) -> Self::Iter {
            self.as_slice().par_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParIter<RangeGet>;

        fn into_par_iter(self) -> Self::Iter {
            ParIter {
                len: self.end.saturating_sub(self.start),
                f: RangeGet { start: self.start },
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Item = u32;
        type Iter = ParIter<RangeGet32>;

        fn into_par_iter(self) -> Self::Iter {
            ParIter {
                len: (self.end.saturating_sub(self.start)) as usize,
                f: RangeGet32 { start: self.start },
            }
        }
    }

    /// Position accessor for slices.
    pub struct SliceGet<'a, T> {
        slice: &'a [T],
    }

    /// Position accessor for `Range<usize>`.
    pub struct RangeGet {
        start: usize,
    }

    /// Position accessor for `Range<u32>`.
    pub struct RangeGet32 {
        start: u32,
    }

    /// Maps a position to an item. Implementations must be cheap: terminal
    /// operations call this once per index from worker threads.
    pub trait PositionFn: Sync {
        /// The produced item.
        type Output: Send;
        /// Produces the item at `index`.
        fn at(&self, index: usize) -> Self::Output;
    }

    impl<'a, T: Sync> PositionFn for SliceGet<'a, T> {
        type Output = &'a T;
        fn at(&self, index: usize) -> &'a T {
            &self.slice[index]
        }
    }

    impl PositionFn for RangeGet {
        type Output = usize;
        fn at(&self, index: usize) -> usize {
            self.start + index
        }
    }

    impl PositionFn for RangeGet32 {
        type Output = u32;
        fn at(&self, index: usize) -> u32 {
            self.start + index as u32
        }
    }

    /// A mapped accessor.
    pub struct MapFn<F, G> {
        base: F,
        g: G,
    }

    impl<F: PositionFn, U: Send, G: Fn(F::Output) -> U + Sync> PositionFn for MapFn<F, G> {
        type Output = U;
        fn at(&self, index: usize) -> U {
            (self.g)(self.base.at(index))
        }
    }

    /// An enumerated accessor.
    pub struct EnumerateFn<F> {
        base: F,
    }

    impl<F: PositionFn> PositionFn for EnumerateFn<F> {
        type Output = (usize, F::Output);
        fn at(&self, index: usize) -> (usize, F::Output) {
            (index, self.base.at(index))
        }
    }

    /// The parallel iterator interface (indexed subset of rayon's).
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item: Send;
        /// The underlying accessor type.
        type Fn: PositionFn<Output = Self::Item>;

        /// Decomposes into `(len, accessor)`.
        fn into_parts(self) -> (usize, Self::Fn);

        /// Maps each item through `g`.
        fn map<U: Send, G: Fn(Self::Item) -> U + Sync>(self, g: G) -> ParIter<MapFn<Self::Fn, G>> {
            let (len, f) = self.into_parts();
            ParIter {
                len,
                f: MapFn { base: f, g },
            }
        }

        /// Pairs each item with its index.
        fn enumerate(self) -> ParIter<EnumerateFn<Self::Fn>> {
            let (len, f) = self.into_parts();
            ParIter {
                len,
                f: EnumerateFn { base: f },
            }
        }

        /// Evaluates all items across worker threads, preserving order.
        fn collect<C: From<Vec<Self::Item>>>(self) -> C {
            let (len, f) = self.into_parts();
            C::from(run_indexed(len, &f))
        }

        /// Runs `g` on every item (order of side effects is unspecified).
        fn for_each<G: Fn(Self::Item) + Sync>(self, g: G) {
            let (len, f) = self.into_parts();
            let mapped = MapFn {
                base: f,
                g: |x| g(x),
            };
            let _ = run_indexed(len, &mapped);
        }

        /// Sums all items.
        fn sum<S: std::iter::Sum<Self::Item> + Send>(self) -> S {
            let (len, f) = self.into_parts();
            run_indexed(len, &f).into_iter().sum()
        }
    }

    impl<F: PositionFn> ParallelIterator for ParIter<F> {
        type Item = F::Output;
        type Fn = F;

        fn into_parts(self) -> (usize, F) {
            (self.len, self.f)
        }
    }

    /// Evaluates `f.at(i)` for `0..len` using one contiguous chunk per
    /// worker thread, reassembling results in index order.
    fn run_indexed<F: PositionFn>(len: usize, f: &F) -> Vec<F::Output> {
        if len == 0 {
            return Vec::new();
        }
        let threads = current_num_threads().min(len);
        if threads <= 1 {
            return (0..len).map(|i| f.at(i)).collect();
        }
        let chunk = len.div_ceil(threads);
        let mut chunks: Vec<Vec<F::Output>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(len);
                    scope.spawn(move || (start..end).map(|i| f.at(i)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(len);
        for c in &mut chunks {
            out.append(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[31], 961);
        assert_eq!(squares.len(), 1000);
    }

    #[test]
    fn enumerate_matches_indices() {
        let v = vec!["a", "b", "c"];
        let pairs: Vec<(usize, String)> = v
            .par_iter()
            .enumerate()
            .map(|(i, s)| (i, s.to_string()))
            .collect();
        assert_eq!(
            pairs,
            vec![(0, "a".into()), (1, "b".into()), (2, "c".into())]
        );
    }

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<u64> = (1..=100).collect();
        let total: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        (0..500usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }
}

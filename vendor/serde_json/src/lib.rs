//! Offline JSON encoding/decoding over the vendored `serde::Value` model.
//!
//! Supports the `to_string` / `to_string_pretty` / `from_str` subset of the
//! real `serde_json` API. Floats are printed with Rust's shortest
//! round-trippable representation (`{:?}`), so `to_string` → `from_str`
//! round trips are lossless for every finite `f64`.

#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

pub use serde::Error;
pub use serde::Value;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Array(items)),
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Object(entries)),
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| Error::msg("invalid \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::msg("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the original slice.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = (start + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid float `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(from_str::<i64>("-5").unwrap(), -5);
    }

    #[test]
    fn float_round_trip_is_lossless() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -2.5e10, 0.0] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, f, "json {json}");
        }
    }

    #[test]
    fn string_escapes() {
        let s = "line1\nline2 \"quoted\" \\ tab\t".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_round_trip() {
        let s = "héllo wörld — ∑ 💡".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_containers() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        let back: Vec<Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,null]");
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("3 4").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, 2u32)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u32, u32)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}

//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `rand` API the project uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`], slice helpers
//! ([`seq::SliceRandom`]) and the [`distributions`] module with
//! [`distributions::WeightedIndex`]. Algorithms differ from upstream `rand`
//! (streams are NOT bit-compatible with the real crate), but every generator
//! is deterministic under a seed, which is all the experiments rely on.

#![warn(rust_2018_idioms)]

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits (the stub's
/// equivalent of `Standard: Distribution<T>`).
pub trait SampleStandard: Sized {
    /// Draws one uniform sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire-style rejection-free-enough sampling: widen, multiply.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_signed_range!(i64 => u64, i32 => u32, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample of `T` (see [`SampleStandard`]).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and tiny standalone generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given state.
    #[must_use]
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (not bit-compatible
    /// with upstream `rand`'s `StdRng`, but a high-quality deterministic
    /// generator with the same API).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The state `from_seed` substitutes for the all-zero fixed point.
        const ZERO_GUARD: [u64; 4] = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];

        /// Builds the generator directly from its four state words — the
        /// state `from_seed` reaches after its little-endian byte
        /// round-trip, including the all-zero fixed-point guard.
        fn from_state_words(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                Self {
                    s: Self::ZERO_GUARD,
                }
            } else {
                Self { s }
            }
        }

        /// Seeds one generator per entry of `seeds`, appending into `out`
        /// (which is cleared first; its capacity is reused).
        ///
        /// State-identical to pushing `StdRng::seed_from_u64(seed)` per
        /// entry: the per-seed SplitMix64 expansion chains are interleaved
        /// four at a time so their serial multiply/xor dependency chains
        /// overlap across seeds (the scalar schedule is latency-bound), but
        /// each chain performs exactly the four draws `seed_from_u64`
        /// performs — including the all-zero-state guard — so every
        /// generator starts in the identical state and yields the identical
        /// draw stream.
        pub fn seed_batch_from_u64(seeds: &[u64], out: &mut Vec<StdRng>) {
            out.clear();
            out.reserve(seeds.len());
            let mut quads = seeds.chunks_exact(4);
            for quad in &mut quads {
                let mut st = [quad[0], quad[1], quad[2], quad[3]];
                let mut words = [[0u64; 4]; 4];
                // Word index outermost so the four per-seed chains advance in
                // lockstep (that interleaving is the whole point of the batch).
                for w in 0..4 {
                    for (s, lane_words) in st.iter_mut().zip(words.iter_mut()) {
                        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        let mut z = *s;
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        lane_words[w] = z ^ (z >> 31);
                    }
                }
                for state in words {
                    out.push(Self::from_state_words(state));
                }
            }
            for &seed in quads.remainder() {
                out.push(Self::seed_from_u64(seed));
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; perturb it.
            Self::from_state_words(s)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = rng.gen_range(0..self.len());
                Some(&self[idx])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Re-export so `use rand::seq::SliceRandom` matches upstream paths.
    pub use super::RngCore as _SeqRngCore;

    #[allow(unused)]
    fn _assert_object_safe(_r: &mut dyn RngCore) {}
}

/// Distributions over arbitrary types.
pub mod distributions {
    use super::{Rng, SampleStandard};

    /// A distribution that can be sampled with any RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution (0..1 for floats, full range for ints).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: SampleStandard> Distribution<T> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_standard(rng)
        }
    }

    /// Error type for [`WeightedIndex`] construction.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices proportionally to a weight vector (alias-free
    /// cumulative-sum + binary search implementation).
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the distribution from an iterator of weights.
        pub fn new<'a, I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator<Item = &'a f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for &w in weights {
                if w < 0.0 || !w.is_finite() {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(Self { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let x = f64::sample_standard(rng) * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite cumulative weights"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng, SplitMix64};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..5);
            assert!(y < 5);
            let z = rng.gen_range(0usize..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = StdRng::seed_from_u64(6);
        let weights = vec![1.0, 0.0, 9.0];
        let dist = WeightedIndex::new(&weights).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn weighted_index_rejects_bad_inputs() {
        assert!(WeightedIndex::new(&Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new(&vec![0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&vec![-1.0]).is_err());
    }

    #[test]
    fn dyn_rng_core_works_through_rng_methods() {
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn seed_batch_matches_seed_from_u64() {
        // Cover the empty batch, partial quads, exact quads, and long runs.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 16, 100] {
            let seeds: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF)
                .collect();
            let mut batch = Vec::new();
            StdRng::seed_batch_from_u64(&seeds, &mut batch);
            assert_eq!(batch.len(), n);
            for (i, rng) in batch.iter_mut().enumerate() {
                let mut reference = StdRng::seed_from_u64(seeds[i]);
                for _ in 0..8 {
                    assert_eq!(rng.next_u64(), reference.next_u64(), "seed index {i}");
                }
            }
        }
    }

    #[test]
    fn seed_batch_reuses_buffer() {
        let mut out = Vec::new();
        StdRng::seed_batch_from_u64(&[1, 2, 3, 4, 5], &mut out);
        assert_eq!(out.len(), 5);
        StdRng::seed_batch_from_u64(&[9], &mut out);
        assert_eq!(out.len(), 1);
        let mut reference = StdRng::seed_from_u64(9);
        assert_eq!(out[0].next_u64(), reference.next_u64());
    }

    #[test]
    fn from_seed_zero_state_guard_still_applies() {
        // The guard lives in the shared `from_state_words` path; an all-zero
        // raw seed must not produce the xoshiro fixed point.
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn splitmix_expands_seeds() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
    }
}

//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API the workspace's benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups, throughput annotation, and `Bencher::iter`.
//!
//! Each benchmark is warmed up briefly, then timed over a fixed measurement
//! window; the mean ns/iteration is printed as
//! `bench: <group>/<name> ... <time> (<throughput>)` and recorded in the
//! [`Criterion`] so callers can export machine-readable results with
//! [`Criterion::results`].

#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully qualified benchmark id (`group/name`).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iterations: u64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    /// Measurement window per benchmark.
    measurement: Option<Duration>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_benchmark(self, name.to_string(), None, f);
    }

    /// All results measured so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Overrides the measurement window (mainly for fast CI runs).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by time instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = Some(d);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, full, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; results were recorded as they ran).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    measurement: Duration,
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Measures `f`, storing the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~5 ms have elapsed to stabilise caches.
        let warmup_deadline = Instant::now() + Duration::from_millis(5);
        let mut warmup_iters = 0u64;
        while Instant::now() < warmup_deadline {
            black_box(f());
            warmup_iters += 1;
        }
        // Choose a batch size aiming for ~20 batches in the window.
        let per_iter_estimate = Duration::from_millis(5)
            .checked_div(warmup_iters.max(1) as u32)
            .unwrap_or(Duration::from_nanos(1));
        let target_batch =
            (self.measurement.as_nanos() / 20 / per_iter_estimate.as_nanos().max(1)).max(1);
        let deadline = Instant::now() + self.measurement;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..target_batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += target_batch as u64;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iterations = iters;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &mut Criterion,
    id: String,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let measurement = criterion
        .measurement
        .or_else(env_measurement)
        .unwrap_or(Duration::from_millis(300));
    let mut bencher = Bencher {
        measurement,
        mean_ns: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    let result = BenchResult {
        id: id.clone(),
        mean_ns: bencher.mean_ns,
        iterations: bencher.iterations,
        throughput,
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.1} Melem/s)", n as f64 / bencher.mean_ns * 1e9 / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / bencher.mean_ns * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("bench: {:<55} {}{}", id, format_ns(bencher.mean_ns), rate);
    criterion.results.push(result);
}

/// `CRITERION_MEASUREMENT_MS` overrides the per-benchmark window.
fn env_measurement() -> Option<Duration> {
    std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s/iter", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(10));
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert!(results[0].mean_ns > 0.0);
        assert!(results[0].iterations > 0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_function("inner", |b| b.iter(|| black_box(3u32) * 2));
        g.bench_with_input(BenchmarkId::new("param", 42), &7u32, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        g.finish();
        assert_eq!(c.results()[0].id, "grp/inner");
        assert_eq!(c.results()[1].id, "grp/param/42");
    }
}

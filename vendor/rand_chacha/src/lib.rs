//! Offline ChaCha-based RNGs for the vendored `rand` traits.
//!
//! Implements the actual ChaCha stream cipher core (with 8, 12, or 20
//! rounds) keyed by a 32-byte seed. Streams are deterministic under a seed
//! but are not bit-compatible with the upstream `rand_chacha` crate.

#![warn(rust_2018_idioms)]

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key words (state words 4..12 of the ChaCha matrix).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Buffered output of the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(b);
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                (hi << 32) | lo
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self {
                    core: ChaChaCore::from_seed_bytes(seed),
                }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn round_counts_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniformity_smoke_test() {
        use rand::Rng;
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        // Consume more than one 16-word block and check no repetition window.
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}

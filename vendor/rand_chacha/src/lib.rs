//! Offline ChaCha-based RNGs for the vendored `rand` traits.
//!
//! Implements the actual ChaCha stream cipher core (with 8, 12, or 20
//! rounds) keyed by a 32-byte seed. Streams are deterministic under a seed
//! but are not bit-compatible with the upstream `rand_chacha` crate.
//!
//! # Kernel shape
//!
//! A single ChaCha block is one long dependency chain (~100 serially
//! dependent ALU ops), so generating one block at a time leaves the core
//! idle. The generator therefore buffers **four consecutive blocks per
//! refill** and computes them with interleaved independent chains:
//!
//! * on `x86_64` with AVX2 (runtime-detected), two 256-bit registers hold
//!   the same row of two blocks each — four blocks in eight registers,
//!   ~3.5× the one-block scalar formulation on the CI container;
//! * on any `x86_64`, an SSE2 path (always available on the architecture)
//!   interleaves four 128-bit states;
//! * elsewhere, a portable row-based scalar fallback computes the four
//!   blocks in sequence; the row form (`[u32; 4]` lanes) keeps the four
//!   column quarter-rounds independent for the out-of-order core.
//!
//! All three paths are **bit-identical** to the classic index-based
//! formulation (see `matches_scalar_reference` and the pinned-stream
//! tests): the diagonal round is expressed as a lane rotation of rows
//! `b`/`c`/`d` around the same lane-parallel quarter-round, which is the
//! textbook SIMD ChaCha shape. Buffering four blocks changes nothing
//! observable — blocks are consumed in counter order.
//!
//! The output buffer is kept as `u64` words so the common `next_u64` path
//! — what the `ldp` batched draw pipeline hammers — is one bounds check
//! and one load. `fill_bytes` drains whole buffered blocks with bulk
//! copies, byte-identical to the default word-at-a-time trait
//! implementation (exhaustively tested across lengths and alignments) for
//! callers that consume entropy in bulk.

#![warn(rust_2018_idioms)]

use rand::{RngCore, SeedableRng};

/// Number of 16-word ChaCha blocks computed per refill.
const BLOCKS: usize = 4;
/// Buffered output words (`u64` granularity): 4 blocks × 8 `u64`.
const BUF_U64: usize = BLOCKS * 8;
/// Buffered output in 32-bit words.
const BUF_WORDS: usize = BLOCKS * 16;

/// The ChaCha row constants ("expand 32-byte k").
const ROW_A: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// One lane-parallel quarter-round step over full rows.
#[inline(always)]
fn row_quarter_round(a: &mut [u32; 4], b: &mut [u32; 4], c: &mut [u32; 4], d: &mut [u32; 4]) {
    for i in 0..4 {
        a[i] = a[i].wrapping_add(b[i]);
    }
    for i in 0..4 {
        d[i] = (d[i] ^ a[i]).rotate_left(16);
    }
    for i in 0..4 {
        c[i] = c[i].wrapping_add(d[i]);
    }
    for i in 0..4 {
        b[i] = (b[i] ^ c[i]).rotate_left(12);
    }
    for i in 0..4 {
        a[i] = a[i].wrapping_add(b[i]);
    }
    for i in 0..4 {
        d[i] = (d[i] ^ a[i]).rotate_left(8);
    }
    for i in 0..4 {
        c[i] = c[i].wrapping_add(d[i]);
    }
    for i in 0..4 {
        b[i] = (b[i] ^ c[i]).rotate_left(7);
    }
}

/// Rotates the lanes of a row left by `N` (the diagonalisation shuffle).
#[inline(always)]
fn rotate_lanes_left<const N: usize>(row: [u32; 4]) -> [u32; 4] {
    [
        row[N % 4],
        row[(N + 1) % 4],
        row[(N + 2) % 4],
        row[(N + 3) % 4],
    ]
}

/// Portable single-block function in row form; the ground truth the SIMD
/// paths reproduce and the fallback for non-x86_64 targets.
fn block_scalar(rounds: usize, key: &[u32; 8], counter: u64, out: &mut [u64]) {
    let b0 = [key[0], key[1], key[2], key[3]];
    let c0 = [key[4], key[5], key[6], key[7]];
    let d0 = [counter as u32, (counter >> 32) as u32, 0, 0];
    let (mut a, mut b, mut c, mut d) = (ROW_A, b0, c0, d0);
    for _ in 0..rounds / 2 {
        // Column round: lanes are the columns.
        row_quarter_round(&mut a, &mut b, &mut c, &mut d);
        // Diagonal round: shuffle rows so lanes become the diagonals,
        // quarter-round, shuffle back.
        b = rotate_lanes_left::<1>(b);
        c = rotate_lanes_left::<2>(c);
        d = rotate_lanes_left::<3>(d);
        row_quarter_round(&mut a, &mut b, &mut c, &mut d);
        b = rotate_lanes_left::<3>(b);
        c = rotate_lanes_left::<2>(c);
        d = rotate_lanes_left::<1>(d);
    }
    let pack = |row: [u32; 4], init: [u32; 4], out: &mut [u64], at: usize| {
        let w = [
            row[0].wrapping_add(init[0]),
            row[1].wrapping_add(init[1]),
            row[2].wrapping_add(init[2]),
            row[3].wrapping_add(init[3]),
        ];
        out[at] = u64::from(w[0]) | (u64::from(w[1]) << 32);
        out[at + 1] = u64::from(w[2]) | (u64::from(w[3]) << 32);
    };
    pack(a, ROW_A, out, 0);
    pack(b, b0, out, 2);
    pack(c, c0, out, 4);
    pack(d, d0, out, 6);
}

/// The portable row-based fallback: the four blocks in sequence.
fn blocks4_portable(rounds: usize, key: &[u32; 8], counter: u64, out: &mut [u64; BUF_U64]) {
    for j in 0..BLOCKS {
        block_scalar(
            rounds,
            key,
            counter.wrapping_add(j as u64),
            &mut out[j * 8..j * 8 + 8],
        );
    }
}

/// Selects the four-block kernel for the given force-portable setting —
/// factored out of the cached dispatch so tests can exercise every
/// selectable tier without mutating the process environment.
fn select_blocks4(force_portable: bool) -> fn(usize, &[u32; 8], u64, &mut [u64; BUF_U64]) {
    if force_portable {
        return blocks4_portable;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return x86::blocks4_avx2_safe;
        }
        // SSE2 is architecturally guaranteed on x86_64.
        return x86::blocks4_sse2;
    }
    #[allow(unreachable_code)]
    blocks4_portable
}

/// Four consecutive blocks (`counter .. counter + 4`) into `out`, through
/// the detect-once cached kernel pointer: CPU features are probed on the
/// first refill in the process (honoring the
/// `CNE_FORCE_PORTABLE_KERNELS=1` escape hatch, read once at the same
/// moment) and every later refill is a direct indirect call. All tiers are
/// bit-identical, so the choice is invisible in the output.
type Blocks4Fn = fn(usize, &[u32; 8], u64, &mut [u64; BUF_U64]);

fn blocks4(rounds: usize, key: &[u32; 8], counter: u64, out: &mut [u64; BUF_U64]) {
    static KERNEL: std::sync::OnceLock<Blocks4Fn> = std::sync::OnceLock::new();
    let kernel = KERNEL.get_or_init(|| {
        let force = std::env::var("CNE_FORCE_PORTABLE_KERNELS").is_ok_and(|v| v == "1");
        select_blocks4(force)
    });
    kernel(rounds, key, counter, out);
}

/// x86_64 SIMD kernels. Both interleave four independent block states so
/// the per-block dependency chains overlap; both are bit-identical to
/// [`block_scalar`].
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{BUF_U64, ROW_A};

    /// Four interleaved 128-bit states (SSE2 — baseline on x86_64).
    pub(super) fn blocks4_sse2(rounds: usize, key: &[u32; 8], counter: u64, out: &mut [u64; 32]) {
        use std::arch::x86_64::*;
        // SAFETY: SSE2 is part of the x86_64 baseline; every intrinsic used
        // here is SSE2.
        unsafe {
            #[inline(always)]
            unsafe fn rot<const L: i32, const R: i32>(x: __m128i) -> __m128i {
                _mm_or_si128(_mm_slli_epi32::<L>(x), _mm_srli_epi32::<R>(x))
            }
            let a0 = _mm_set_epi32(
                ROW_A[3] as i32,
                ROW_A[2] as i32,
                ROW_A[1] as i32,
                ROW_A[0] as i32,
            );
            let b0 = _mm_set_epi32(key[3] as i32, key[2] as i32, key[1] as i32, key[0] as i32);
            let c0 = _mm_set_epi32(key[7] as i32, key[6] as i32, key[5] as i32, key[4] as i32);
            let mut a = [a0; 4];
            let mut b = [b0; 4];
            let mut c = [c0; 4];
            let mut d = [_mm_setzero_si128(); 4];
            let mut d0 = [_mm_setzero_si128(); 4];
            for (j, (dj, d0j)) in d.iter_mut().zip(d0.iter_mut()).enumerate() {
                let ctr = counter.wrapping_add(j as u64);
                *d0j = _mm_set_epi32(0, 0, (ctr >> 32) as i32, ctr as i32);
                *dj = *d0j;
            }
            macro_rules! qr4 {
                () => {
                    for j in 0..4 {
                        a[j] = _mm_add_epi32(a[j], b[j]);
                        d[j] = rot::<16, 16>(_mm_xor_si128(d[j], a[j]));
                        c[j] = _mm_add_epi32(c[j], d[j]);
                        b[j] = rot::<12, 20>(_mm_xor_si128(b[j], c[j]));
                        a[j] = _mm_add_epi32(a[j], b[j]);
                        d[j] = rot::<8, 24>(_mm_xor_si128(d[j], a[j]));
                        c[j] = _mm_add_epi32(c[j], d[j]);
                        b[j] = rot::<7, 25>(_mm_xor_si128(b[j], c[j]));
                    }
                };
            }
            for _ in 0..rounds / 2 {
                qr4!();
                for j in 0..4 {
                    b[j] = _mm_shuffle_epi32(b[j], 0b00_11_10_01);
                    c[j] = _mm_shuffle_epi32(c[j], 0b01_00_11_10);
                    d[j] = _mm_shuffle_epi32(d[j], 0b10_01_00_11);
                }
                qr4!();
                for j in 0..4 {
                    b[j] = _mm_shuffle_epi32(b[j], 0b10_01_00_11);
                    c[j] = _mm_shuffle_epi32(c[j], 0b01_00_11_10);
                    d[j] = _mm_shuffle_epi32(d[j], 0b00_11_10_01);
                }
            }
            for j in 0..4 {
                let st = |v: __m128i, init: __m128i, out: &mut [u64; 32], at: usize| {
                    let s = _mm_add_epi32(v, init);
                    let mut tmp = [0u64; 2];
                    _mm_storeu_si128(tmp.as_mut_ptr().cast(), s);
                    out[at] = tmp[0];
                    out[at + 1] = tmp[1];
                };
                st(a[j], a0, out, j * 8);
                st(b[j], b0, out, j * 8 + 2);
                st(c[j], c0, out, j * 8 + 4);
                st(d[j], d0[j], out, j * 8 + 6);
            }
        }
    }

    /// Four blocks in eight 256-bit registers (each holds one row of two
    /// blocks). `_mm256_shuffle_epi32` shuffles within each 128-bit lane,
    /// which is exactly the per-block diagonalisation.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn blocks4_avx2(
        rounds: usize,
        key: &[u32; 8],
        counter: u64,
        out: &mut [u64; BUF_U64],
    ) {
        use std::arch::x86_64::*;
        #[inline(always)]
        unsafe fn rot<const L: i32, const R: i32>(x: __m256i) -> __m256i {
            _mm256_or_si256(_mm256_slli_epi32::<L>(x), _mm256_srli_epi32::<R>(x))
        }
        let bcast = |w: [u32; 4]| {
            _mm256_set_epi32(
                w[3] as i32,
                w[2] as i32,
                w[1] as i32,
                w[0] as i32,
                w[3] as i32,
                w[2] as i32,
                w[1] as i32,
                w[0] as i32,
            )
        };
        let a0 = bcast(ROW_A);
        let b0 = bcast([key[0], key[1], key[2], key[3]]);
        let c0 = bcast([key[4], key[5], key[6], key[7]]);
        let ctr = |k: u64| counter.wrapping_add(k);
        let dpair = |lo: u64, hi: u64| {
            _mm256_set_epi32(
                0,
                0,
                (hi >> 32) as i32,
                hi as i32,
                0,
                0,
                (lo >> 32) as i32,
                lo as i32,
            )
        };
        let d00 = dpair(ctr(0), ctr(1));
        let d01 = dpair(ctr(2), ctr(3));
        let (mut a1, mut b1, mut c1, mut d1) = (a0, b0, c0, d00);
        let (mut a2, mut b2, mut c2, mut d2) = (a0, b0, c0, d01);
        macro_rules! qr2 {
            () => {
                a1 = _mm256_add_epi32(a1, b1);
                a2 = _mm256_add_epi32(a2, b2);
                d1 = rot::<16, 16>(_mm256_xor_si256(d1, a1));
                d2 = rot::<16, 16>(_mm256_xor_si256(d2, a2));
                c1 = _mm256_add_epi32(c1, d1);
                c2 = _mm256_add_epi32(c2, d2);
                b1 = rot::<12, 20>(_mm256_xor_si256(b1, c1));
                b2 = rot::<12, 20>(_mm256_xor_si256(b2, c2));
                a1 = _mm256_add_epi32(a1, b1);
                a2 = _mm256_add_epi32(a2, b2);
                d1 = rot::<8, 24>(_mm256_xor_si256(d1, a1));
                d2 = rot::<8, 24>(_mm256_xor_si256(d2, a2));
                c1 = _mm256_add_epi32(c1, d1);
                c2 = _mm256_add_epi32(c2, d2);
                b1 = rot::<7, 25>(_mm256_xor_si256(b1, c1));
                b2 = rot::<7, 25>(_mm256_xor_si256(b2, c2));
            };
        }
        for _ in 0..rounds / 2 {
            qr2!();
            b1 = _mm256_shuffle_epi32(b1, 0b00_11_10_01);
            b2 = _mm256_shuffle_epi32(b2, 0b00_11_10_01);
            c1 = _mm256_shuffle_epi32(c1, 0b01_00_11_10);
            c2 = _mm256_shuffle_epi32(c2, 0b01_00_11_10);
            d1 = _mm256_shuffle_epi32(d1, 0b10_01_00_11);
            d2 = _mm256_shuffle_epi32(d2, 0b10_01_00_11);
            qr2!();
            b1 = _mm256_shuffle_epi32(b1, 0b10_01_00_11);
            b2 = _mm256_shuffle_epi32(b2, 0b10_01_00_11);
            c1 = _mm256_shuffle_epi32(c1, 0b01_00_11_10);
            c2 = _mm256_shuffle_epi32(c2, 0b01_00_11_10);
            d1 = _mm256_shuffle_epi32(d1, 0b00_11_10_01);
            d2 = _mm256_shuffle_epi32(d2, 0b00_11_10_01);
        }
        let st = |v: __m256i, init: __m256i, out: &mut [u64; BUF_U64], blk: usize, row: usize| {
            let s = _mm256_add_epi32(v, init);
            let mut tmp = [0u64; 4];
            _mm256_storeu_si256(tmp.as_mut_ptr().cast(), s);
            out[blk * 8 + row * 2] = tmp[0];
            out[blk * 8 + row * 2 + 1] = tmp[1];
            out[(blk + 1) * 8 + row * 2] = tmp[2];
            out[(blk + 1) * 8 + row * 2 + 1] = tmp[3];
        };
        st(a1, a0, out, 0, 0);
        st(b1, b0, out, 0, 1);
        st(c1, c0, out, 0, 2);
        st(d1, d00, out, 0, 3);
        st(a2, a0, out, 2, 0);
        st(b2, b0, out, 2, 1);
        st(c2, c0, out, 2, 2);
        st(d2, d01, out, 2, 3);
    }

    /// Safe shim over [`blocks4_avx2`] with the plain function-pointer
    /// signature the cached dispatcher stores. Only `select_blocks4`
    /// reaches it, and only after `is_x86_feature_detected!("avx2")`
    /// succeeded, so the target-feature precondition always holds.
    pub(super) fn blocks4_avx2_safe(
        rounds: usize,
        key: &[u32; 8],
        counter: u64,
        out: &mut [u64; BUF_U64],
    ) {
        // SAFETY: stored in the dispatch table only after the runtime AVX2
        // check succeeded (see `select_blocks4`).
        unsafe { blocks4_avx2(rounds, key, counter, out) }
    }
}

#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key words (state words 4..12 of the ChaCha matrix).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14) of the next refill.
    counter: u64,
    /// Buffered output of the current four blocks, packed as little-endian
    /// `u64` pairs of the output words (`buffer[i] = word(2i) | word(2i+1) << 32`).
    buffer: [u64; BUF_U64],
    /// Next unread **32-bit word** index into the buffer; `BUF_WORDS`
    /// means "refill".
    index: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(b);
        }
        Self {
            key,
            counter: 0,
            buffer: [0; BUF_U64],
            index: BUF_WORDS,
        }
    }

    fn refill(&mut self) {
        blocks4(ROUNDS, &self.key, self.counter, &mut self.buffer);
        self.counter = self.counter.wrapping_add(BLOCKS as u64);
        self.index = 0;
    }

    /// Reads the 32-bit output word at `index` (buffer must be fresh).
    #[inline]
    fn word_at(&self, index: usize) -> u32 {
        (self.buffer[index / 2] >> (32 * (index % 2))) as u32
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let w = self.word_at(self.index);
        self.index += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: aligned read of one buffered u64 (the overwhelmingly
        // common case — only interleaved next_u32 calls break alignment).
        if self.index < BUF_WORDS && self.index.is_multiple_of(2) {
            let v = self.buffer[self.index / 2];
            self.index += 2;
            return v;
        }
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` exactly as the default `RngCore::fill_bytes` (one
    /// `next_u64` per 8-byte chunk, low bytes of one final `next_u64` for
    /// the remainder), draining buffered blocks with bulk copies.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        let mut bulk = (&mut chunks).peekable();
        while bulk.peek().is_some() {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            if !self.index.is_multiple_of(2) {
                // Misaligned (odd next_u32 history): resynchronise with one
                // word-pair read.
                if let Some(chunk) = bulk.next() {
                    let lo = self.next_word() as u64;
                    let hi = self.next_word() as u64;
                    chunk.copy_from_slice(&((hi << 32) | lo).to_le_bytes());
                }
                continue;
            }
            // Copy as many whole buffered u64s as the destination takes.
            let mut at = self.index / 2;
            while at < BUF_U64 {
                match bulk.next() {
                    Some(chunk) => {
                        chunk.copy_from_slice(&self.buffer[at].to_le_bytes());
                        at += 1;
                    }
                    None => break,
                }
            }
            self.index = at * 2;
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.core.next_u64()
            }

            #[inline]
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                self.core.fill_bytes(dest)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self {
                    core: ChaChaCore::from_seed_bytes(seed),
                }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-vectorisation implementation's block function, retained
    /// verbatim as the ground truth every kernel must reproduce.
    fn reference_block(key: &[u32; 8], counter: u64, rounds: usize) -> [u32; 16] {
        fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(16);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(12);
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(8);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(7);
        }
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        let input = state;
        for _ in 0..rounds / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u32; 16];
        for i in 0..16 {
            out[i] = state[i].wrapping_add(input[i]);
        }
        out
    }

    #[test]
    fn matches_scalar_reference() {
        // Covers whichever SIMD path the host dispatches to, plus the
        // portable row-scalar and all three round counts.
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let key = rng.core.key;
            for block in 0..8u64 {
                let expect = reference_block(&key, block, 12);
                for (i, &word) in expect.iter().enumerate() {
                    assert_eq!(rng.next_u32(), word, "seed {seed} block {block} word {i}");
                }
            }
            let mut scalar = [0u64; 8];
            block_scalar(12, &key, 3, &mut scalar);
            let expect = reference_block(&key, 3, 12);
            for i in 0..8 {
                let want = u64::from(expect[2 * i]) | (u64::from(expect[2 * i + 1]) << 32);
                assert_eq!(scalar[i], want, "portable scalar word pair {i}");
            }
        }
        for (rounds, seed) in [(8usize, 5u64), (20, 9)] {
            let mut sse = [0u64; 32];
            let key = {
                let mut r = ChaCha12Rng::seed_from_u64(seed);
                let _ = r.next_u32();
                r.core.key
            };
            blocks4(rounds, &key, 11, &mut sse);
            for j in 0..4u64 {
                let expect = reference_block(&key, 11 + j, rounds);
                for i in 0..8 {
                    let want = u64::from(expect[2 * i]) | (u64::from(expect[2 * i + 1]) << 32);
                    assert_eq!(sse[j as usize * 8 + i], want, "rounds {rounds} block {j}");
                }
            }
        }
    }

    /// Every tier `select_blocks4` can hand out — forced-portable and the
    /// host's fastest — produces identical words, without mutating the
    /// process environment.
    #[test]
    fn every_selectable_tier_matches_portable() {
        let key: [u32; 8] = core::array::from_fn(|i| (i as u32).wrapping_mul(0x9E37_79B9) ^ 7);
        for rounds in [8usize, 12, 20] {
            let mut portable = [0u64; BUF_U64];
            select_blocks4(true)(rounds, &key, 1000, &mut portable);
            let mut fast = [0u64; BUF_U64];
            select_blocks4(false)(rounds, &key, 1000, &mut fast);
            assert_eq!(portable, fast, "rounds {rounds}");
        }
    }

    /// Exact output values captured from the pre-vectorisation
    /// implementation: kernel rewrites must never move the stream.
    #[test]
    fn stream_is_pinned_to_previous_implementation() {
        let mut r12 = ChaCha12Rng::seed_from_u64(42);
        let first: Vec<u64> = (0..6).map(|_| r12.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0x280b_7b79_f392_fa12,
                0x4dad_ef83_bc93_1d07,
                0xc195_c99b_a537_5e5f,
                0x7e65_7f1b_6bdc_3bfd,
                0xfe40_a244_bc14_b82f,
                0x3dd7_5b63_7ba6_5c81,
            ]
        );
        let mut r8 = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(r8.next_u64(), 0x6686_d7a0_5082_5212);
        assert_eq!(r8.next_u64(), 0xc63a_5f92_9db4_1d41);
        let mut r20 = ChaCha20Rng::seed_from_u64(7);
        assert_eq!(r20.next_u64(), 0x1843_cd2c_5d94_2b5b);
        assert_eq!(r20.next_u64(), 0x71a3_5992_ccf5_be10);
        // A long-run checksum pins every block boundary over 10k draws.
        let mut r = ChaCha12Rng::seed_from_u64(123);
        let mut h = 0u64;
        for _ in 0..10_000 {
            h = h.wrapping_mul(0x0100_0000_01b3) ^ r.next_u64();
        }
        assert_eq!(h, 0x1ecb_8959_ffcf_7f77);
    }

    /// Word-granular interleavings (odd numbers of `next_u32` between
    /// `next_u64`/`fill_bytes` calls) keep the exact historical stream.
    #[test]
    fn mixed_width_draws_are_pinned() {
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let words: Vec<u32> = (0..5).map(|_| rng.next_u32()).collect();
        assert_eq!(
            words,
            vec![
                0xf392_fa12,
                0x280b_7b79,
                0xbc93_1d07,
                0x4dad_ef83,
                0xa537_5e5f
            ]
        );
        assert_eq!(rng.next_u64(), 0x6bdc_3bfd_c195_c99b);
        let mut bytes = [0u8; 13];
        rng.fill_bytes(&mut bytes);
        assert_eq!(
            bytes,
            [0x1b, 0x7f, 0x65, 0x7e, 0x2f, 0xb8, 0x14, 0xbc, 0x44, 0xa2, 0x40, 0xfe, 0x81]
        );
    }

    /// `fill_bytes` must consume the stream exactly like the default trait
    /// implementation (one `next_u64` per 8 bytes, one more for any
    /// remainder) for every length and any word alignment, including
    /// lengths that straddle the four-block buffer boundary.
    #[test]
    fn fill_bytes_matches_default_impl_all_lengths() {
        for len in (0..64usize).chain([250, 256, 260, 300]) {
            for prefix_words in 0..4usize {
                let mut fast = ChaCha12Rng::seed_from_u64(9);
                let mut slow = ChaCha12Rng::seed_from_u64(9);
                for _ in 0..prefix_words {
                    assert_eq!(fast.next_u32(), slow.next_u32());
                }
                let mut a = vec![0u8; len];
                fast.fill_bytes(&mut a);
                // Default implementation, spelled out.
                let mut b = vec![0u8; len];
                {
                    let mut chunks = b.chunks_exact_mut(8);
                    for chunk in &mut chunks {
                        chunk.copy_from_slice(&slow.next_u64().to_le_bytes());
                    }
                    let rem = chunks.into_remainder();
                    if !rem.is_empty() {
                        let bytes = slow.next_u64().to_le_bytes();
                        rem.copy_from_slice(&bytes[..rem.len()]);
                    }
                }
                assert_eq!(a, b, "len {len} prefix {prefix_words}");
                // And the post-call stream positions agree.
                assert_eq!(fast.next_u64(), slow.next_u64(), "len {len} post");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn round_counts_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniformity_smoke_test() {
        use rand::Rng;
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}

//! Hand-rolled `#[derive(Serialize, Deserialize)]` macros for the vendored
//! serde stub. Parses the item's token stream directly (no `syn`/`quote`,
//! which are unavailable offline) and generates `to_value`/`from_value`
//! impls against `serde::{Serialize, Deserialize, Value, Error}`.
//!
//! Supported shapes — exactly what this workspace uses:
//! * unit structs, newtype/tuple structs, named-field structs,
//! * enums with unit, newtype/tuple, and named-field variants,
//! * no generic parameters, no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated code parses"),
        Err(e) => error_stream(&e),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated code parses"),
        Err(e) => error_stream(&e),
    }
}

fn error_stream(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error stream parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i)?;
    let name = expect_ident(&tokens, &mut i)?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive: generic type `{name}` is not supported"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected token after struct name: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("expected struct or enum, got `{other}`")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, got {other:?}")),
    }
}

/// Parses `a: Type, b: Type, ...`, returning the field names. Types are
/// skipped wholesale (generated code never needs them), tracking `<`/`>`
/// depth so commas inside generic arguments don't split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&tokens, &mut i);
        names.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(names)
}

/// Advances past one type: consumes tokens until a comma at angle-bracket
/// depth zero (or end of stream).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Counts top-level comma-separated segments of a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut saw_content_since_comma = true;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_content_since_comma = false;
            }
            _ => saw_content_since_comma = true,
        }
    }
    if !saw_content_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and advance to the next comma.
        while i < tokens.len()
            && !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',')
        {
            i += 1;
        }
        i += 1; // past the comma (or end)
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn object_literal(entries: &[(String, String)]) -> String {
    let inner = entries
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from({k:?}), {v})"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("::serde::Value::Object(::std::vec![{inner}])")
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::Value::Array(::std::vec![{items}])")
                }
                Fields::Named(names) => {
                    let entries: Vec<(String, String)> = names
                        .iter()
                        .map(|f| {
                            (
                                f.clone(),
                                format!("::serde::Serialize::to_value(&self.{f})"),
                            )
                        })
                        .collect();
                    object_literal(&entries)
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        Fields::Tuple(n) => {
                            let binds = (0..*n).map(|k| format!("f{k}")).collect::<Vec<_>>();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!("::serde::Value::Array(::std::vec![{items}])")
                            };
                            let tagged = object_literal(&[(vname.clone(), payload)]);
                            format!("{name}::{vname}({}) => {tagged},", binds.join(", "))
                        }
                        Fields::Named(fnames) => {
                            let entries: Vec<(String, String)> = fnames
                                .iter()
                                .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                                .collect();
                            let payload = object_literal(&entries);
                            let tagged = object_literal(&[(vname.clone(), payload)]);
                            format!("{name}::{vname} {{ {} }} => {tagged},", fnames.join(", "))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items = (0..*n)
                        .map(|k| {
                            format!(
                                "::serde::Deserialize::from_value(items.get({k}).ok_or_else(|| \
                                 ::serde::Error::msg(\"tuple too short\"))?)?"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "match v {{ ::serde::Value::Array(items) => \
                         ::std::result::Result::Ok({name}({items})), \
                         _ => ::std::result::Result::Err(::serde::Error::msg(\"expected array\")) }}"
                    )
                }
                Fields::Named(names) => {
                    let inits = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_field(v, {f:?})?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::std::result::Result::Ok({name} {{ {inits} }})")
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect::<Vec<_>>()
                .join("\n");
            let tagged_arms = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => unreachable!("filtered above"),
                        Fields::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({k}).\
                                         ok_or_else(|| ::serde::Error::msg(\"tuple too short\"))?)?"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{vname:?} => match payload {{ ::serde::Value::Array(items) => \
                                 ::std::result::Result::Ok({name}::{vname}({items})), \
                                 _ => ::std::result::Result::Err(::serde::Error::msg(\"expected array\")) }},"
                            )
                        }
                        Fields::Named(fnames) => {
                            let inits = fnames
                                .iter()
                                .map(|f| format!("{f}: ::serde::from_field(payload, {f:?})?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     match v {{\n\
                       ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                       }},\n\
                       ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                           {tagged_arms}\n\
                           other => ::std::result::Result::Err(::serde::Error::msg(\
                               ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                       }}\n\
                       _ => ::std::result::Result::Err(::serde::Error::msg(\
                           \"expected string or single-key object for enum\")),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

//! Offline subset of `proptest`: strategies, the `proptest!` macro, and the
//! `prop_assert*` family.
//!
//! Instead of real shrinking, each property runs a fixed number of cases
//! with inputs drawn from a deterministic per-test RNG (seeded from the
//! test's name), so failures are reproducible run to run. Supported
//! strategy surface: numeric ranges, `any::<T>()`, `Just`, tuples (arity
//! 2–4), `prop::collection::vec`, `prop_map`, and `prop_flat_map`.

#![warn(rust_2018_idioms)]

/// A deterministic RNG for drawing strategy samples (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds deterministically from a test name.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + off as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + off as $t
            }
        }
    )*};
}
impl_int_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_signed_strategy!(i64 => u64, i32 => u32, isize => usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        *self.start() + rng.next_f64() * (*self.end() - *self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Produces `any::<T>()` strategies.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over all values of `T`.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Finite, symmetric around zero, spanning many magnitudes.
        let mag = (rng.next_f64() * 600.0) - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
        sign * (mag / 10.0).exp2()
    }
}

/// Collection and auxiliary strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<T>` with a size drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// Generates vectors whose length is drawn from `size` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.end.saturating_sub(self.size.start).max(1);
                let len = self.size.start + rng.below(span);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// immediately) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                ::std::format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                l,
                r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` runs
/// `config.cases` times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(::std::stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "property `{}` failed on case {}/{}: {}",
                        ::std::stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = crate::Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let f = crate::Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(2);
        let s = prop::collection::vec(0u32..5, 2..7);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0usize..100, y in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuple_and_map(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, a + b))) {
            let (a, sum) = pair;
            prop_assert!(sum >= a);
        }

        #[test]
        fn flat_map_dependent(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0usize..n, 1..4))) {
            prop_assert!(!v.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_respected(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}

//! Deterministic, seed-driven fault injection for the cluster tier.
//!
//! Every robustness path in this crate — connect retry, reconnect-and-
//! resend, IO deadlines, rebalance rollback, supervision rebuild — can be
//! exercised *on purpose* by arming a [`FaultPlan`] through the
//! [`CNE_FAULT_PLAN`][FAULT_PLAN_ENV] environment variable (or
//! programmatically via [`FaultInjector::from_plan`]). The plan is pure
//! data: a seed plus a handful of one-shot directives, each of which
//! fires exactly once at a deterministic point, so a failing chaos run is
//! reproduced by re-running with the same plan string (the armed plan and
//! its seed are printed to stderr when the injector first fires).
//!
//! # Plan grammar
//!
//! Semicolon-separated `key=value` directives, all optional:
//!
//! ```text
//! seed=42;kill=bootstrap:new0;drop=3;corrupt=5;delay=2:300;torn=1;stall=3:1500
//! ```
//!
//! | directive | effect |
//! |---|---|
//! | `seed=N` | seeds the deterministic choices below (corrupted byte, torn cut point) |
//! | `kill=STEP:TARGET` | when a rebalance enters step `STEP` (lower-case [`RebalanceStep`] name), kill the targeted worker process. `TARGET` is `oldI` (current table index `I`) or `newI` (incoming worker `I`); repeatable |
//! | `drop=K` | swallow the Kth coordinator request frame instead of sending it — the response read hits the IO deadline and the reconnect-and-resend path runs |
//! | `corrupt=K` | flip one seed-chosen payload byte of the Kth coordinator request frame — the worker rejects the frame and drops the connection, same recovery path |
//! | `delay=K:MS` | sleep `MS` milliseconds before sending the Kth coordinator request frame |
//! | `torn=K` | truncate the Kth shard-snapshot file the coordinator writes, at a seed-chosen cut — models a crash between write and fsync; the adopting worker's checksum validation rejects it |
//! | `stall=K:MS` | **worker-side**: hold the Kth response this worker process writes for `MS` milliseconds — with `MS` past the coordinator's IO deadline this is the stalled-socket leg |
//!
//! Frame counting (`drop`/`corrupt`/`delay`) covers coordinator *request*
//! frames sent through the retried exchange path; handshake frames are
//! exempt so a directive's index stays stable across reconnects. On
//! serial coordinator paths (bootstrap, replication, flush, rebalance)
//! the count is fully deterministic; under the concurrent round-2
//! fan-out, which exchange the Kth frame lands on may vary with thread
//! scheduling, but the directive still fires exactly once and the
//! recovery contract under test is scheduling-independent.
//!
//! [`RebalanceStep`]: crate::RebalanceStep

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Environment variable a [`FaultPlan`] is read from, by both the
/// coordinator process ([`FaultInjector::from_env`], consulted by the
/// default [`ClusterConfig`](crate::ClusterConfig)) and every worker
/// process it spawns (workers inherit the environment and apply the
/// worker-side directives themselves).
pub const FAULT_PLAN_ENV: &str = "CNE_FAULT_PLAN";

/// Which worker a `kill` directive targets while a rebalance is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillTarget {
    /// A worker in the coordinator's current (pre-commit) table.
    Old(usize),
    /// An incoming worker spawned by the rebalance in flight.
    New(usize),
}

/// A parsed fault plan: a seed plus one-shot fault directives. See the
/// [module docs](self) for the grammar and the effect of each directive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seeds the deterministic choices (corrupted byte, torn cut point).
    pub seed: u64,
    /// `(rebalance step name, target)` pairs; each fires once when a
    /// rebalance enters the named step.
    pub kill: Vec<(String, KillTarget)>,
    /// Swallow the Kth coordinator request frame (1-based).
    pub drop_frame: Option<u64>,
    /// Corrupt one payload byte of the Kth coordinator request frame.
    pub corrupt_frame: Option<u64>,
    /// Sleep before sending the Kth coordinator request frame.
    pub delay_frame: Option<(u64, Duration)>,
    /// Truncate the Kth shard-snapshot file written (1-based).
    pub torn_write: Option<u64>,
    /// Worker-side: hold this process's Kth response for the duration.
    pub stall: Option<(u64, Duration)>,
    /// The plan string as parsed, kept verbatim for the reproduction
    /// banner.
    pub source: String,
}

impl FaultPlan {
    /// Parses the [module-doc](self) grammar.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed directive —
    /// a fault plan with a typo must fail loudly, not silently test
    /// nothing.
    pub fn parse(text: &str) -> std::result::Result<Self, String> {
        let mut plan = Self {
            source: text.to_string(),
            ..Self::default()
        };
        for directive in text.split(';').filter(|d| !d.trim().is_empty()) {
            let (key, value) = directive
                .split_once('=')
                .ok_or_else(|| format!("directive `{directive}` is not key=value"))?;
            let bad = |detail: &str| format!("directive `{directive}`: {detail}");
            let parse_u64 =
                |s: &str, what: &str| s.parse::<u64>().map_err(|_| bad(&format!("bad {what}")));
            match key.trim() {
                "seed" => plan.seed = parse_u64(value, "seed")?,
                "kill" => {
                    let (step, target) = value
                        .split_once(':')
                        .ok_or_else(|| bad("expected STEP:TARGET"))?;
                    let target = target.trim();
                    let parsed = if let Some(i) = target.strip_prefix("old") {
                        KillTarget::Old(i.parse().map_err(|_| bad("bad old-worker index"))?)
                    } else if let Some(i) = target.strip_prefix("new") {
                        KillTarget::New(i.parse().map_err(|_| bad("bad new-worker index"))?)
                    } else {
                        return Err(bad("target must be oldI or newI"));
                    };
                    plan.kill.push((step.trim().to_ascii_lowercase(), parsed));
                }
                "drop" => plan.drop_frame = Some(parse_u64(value, "frame index")?),
                "corrupt" => plan.corrupt_frame = Some(parse_u64(value, "frame index")?),
                "delay" => {
                    let (k, ms) = value.split_once(':').ok_or_else(|| bad("expected K:MS"))?;
                    plan.delay_frame = Some((
                        parse_u64(k, "frame index")?,
                        Duration::from_millis(parse_u64(ms, "delay ms")?),
                    ));
                }
                "torn" => plan.torn_write = Some(parse_u64(value, "write index")?),
                "stall" => {
                    let (k, ms) = value.split_once(':').ok_or_else(|| bad("expected K:MS"))?;
                    plan.stall = Some((
                        parse_u64(k, "response index")?,
                        Duration::from_millis(parse_u64(ms, "stall ms")?),
                    ));
                }
                other => return Err(format!("unknown fault directive `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Whether any directive is armed (an all-default plan injects
    /// nothing and costs nothing on the hot paths).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.kill.is_empty()
            || self.drop_frame.is_some()
            || self.corrupt_frame.is_some()
            || self.delay_frame.is_some()
            || self.torn_write.is_some()
            || self.stall.is_some()
    }
}

/// What the injector decided about one outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Send the (possibly perturbed) bytes.
    Send,
    /// Swallow the frame entirely; the sender proceeds to its read and
    /// the IO deadline does the rest.
    Drop,
}

/// The runtime side of a [`FaultPlan`]: counters that decide *when* each
/// one-shot directive fires, shared via `Arc` across every connection of
/// one coordinator. Constructed once per plan; an injector built from an
/// empty plan is inert.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Coordinator request frames sent so far (handshakes exempt).
    frames: AtomicU64,
    /// Shard-snapshot files written so far.
    writes: AtomicU64,
    /// Worker-side responses written so far (worker processes only).
    responses: AtomicU64,
    /// Indices into `plan.kill` that have already fired.
    kills_fired: Mutex<Vec<bool>>,
    /// Whether the reproduction banner has been printed.
    announced: AtomicBool,
}

impl FaultInjector {
    /// Wraps a plan in a fresh injector (all counters at zero).
    #[must_use]
    pub fn from_plan(plan: FaultPlan) -> Arc<Self> {
        let fired = vec![false; plan.kill.len()];
        Arc::new(Self {
            plan,
            kills_fired: Mutex::new(fired),
            ..Self::default()
        })
    }

    /// Reads [`FAULT_PLAN_ENV`] and arms whatever it holds; an unset
    /// variable yields an inert injector.
    ///
    /// # Panics
    ///
    /// Panics on a malformed plan string: a chaos run with a typo in its
    /// plan must fail loudly instead of silently testing nothing.
    #[must_use]
    pub fn from_env() -> Arc<Self> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(text) => Self::from_plan(
                FaultPlan::parse(&text).unwrap_or_else(|e| panic!("{FAULT_PLAN_ENV}: {e}")),
            ),
            Err(_) => Arc::new(Self::default()),
        }
    }

    /// Whether any directive is armed.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// The armed plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Prints the reproduction banner once per injector: the seed and
    /// the verbatim plan string, so any failure downstream of an
    /// injected fault can be replayed exactly.
    fn announce(&self) {
        if self.is_active() && !self.announced.swap(true, Ordering::Relaxed) {
            eprintln!(
                "cluster: fault plan armed (seed={}): {}",
                self.plan.seed, self.plan.source
            );
        }
    }

    /// Counts one outbound coordinator request frame and applies any
    /// armed frame directive to it: may sleep (`delay`), flip a payload
    /// byte in place (`corrupt`), or order the frame swallowed (`drop`).
    pub fn outbound_frame(&self, frame: &mut [u8]) -> FrameFate {
        if !self.is_active() {
            return FrameFate::Send;
        }
        let nth = self.frames.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some((k, pause)) = self.plan.delay_frame {
            if nth == k {
                self.announce();
                std::thread::sleep(pause);
            }
        }
        if self.plan.corrupt_frame == Some(nth) {
            self.announce();
            // Flip a seed-chosen byte past the kind + length prefix —
            // landing on the frame checksum or the payload, either of
            // which the receiver's integrity check rejects before decode
            // (`frame checksum mismatch`), dropping the connection and
            // driving the reconnect-and-resend path. Kind and length are
            // left intact so the receiver still reads a complete frame —
            // a torn-stream desync is the torn-write leg's job, not this
            // one's.
            let h = splitmix64(self.plan.seed ^ nth);
            let at = if frame.len() > 5 {
                5 + (h as usize % (frame.len() - 5))
            } else {
                0
            };
            frame[at] ^= ((h >> 8) as u8) | 1;
        }
        if self.plan.drop_frame == Some(nth) {
            self.announce();
            return FrameFate::Drop;
        }
        FrameFate::Send
    }

    /// Counts one shard-snapshot file write of `len` bytes; `Some(keep)`
    /// means this write is the torn one and only the first `keep` bytes
    /// may land on disk.
    pub fn torn_write(&self, len: usize) -> Option<usize> {
        self.plan.torn_write?;
        let nth = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.torn_write == Some(nth) && len > 1 {
            self.announce();
            // A seed-chosen cut strictly inside the image: never empty
            // (that would be a missing file, a different failure), never
            // complete.
            let h = splitmix64(self.plan.seed ^ 0x70524e_u64 ^ nth);
            Some(1 + (h as usize % (len - 1)))
        } else {
            None
        }
    }

    /// All armed kill directives for the rebalance step named `step`
    /// that have not fired yet; marks them fired.
    pub fn kills_due(&self, step: &str) -> Vec<KillTarget> {
        if self.plan.kill.is_empty() {
            return Vec::new();
        }
        let mut fired = self.kills_fired.lock().expect("fault injector poisoned");
        let mut due = Vec::new();
        for (i, (at, target)) in self.plan.kill.iter().enumerate() {
            if !fired[i] && at == step {
                fired[i] = true;
                due.push(*target);
            }
        }
        if !due.is_empty() {
            self.announce();
        }
        due
    }

    /// Worker-side: counts one response about to be written and sleeps
    /// through an armed `stall` directive when this is the Kth.
    pub fn stall_before_response(&self) {
        let Some((k, pause)) = self.plan.stall else {
            return;
        };
        let nth = self.responses.fetch_add(1, Ordering::Relaxed) + 1;
        if nth == k {
            self.announce();
            std::thread::sleep(pause);
        }
    }
}

/// The process-global injector a **worker** consults: parsed from
/// [`FAULT_PLAN_ENV`] once, on first use. Workers inherit the
/// coordinator's environment, so arming a plan there arms the
/// worker-side directives (`stall`) everywhere at once.
pub(crate) fn worker_injector() -> &'static FaultInjector {
    static INJECTOR: OnceLock<Arc<FaultInjector>> = OnceLock::new();
    INJECTOR.get_or_init(FaultInjector::from_env)
}

/// SplitMix64: the deterministic hash behind every seed-derived choice.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_grammar_round_trips_every_directive() {
        let plan =
            FaultPlan::parse("seed=42;kill=bootstrap:new0;kill=quiesce:old2;drop=3;corrupt=5;delay=2:300;torn=1;stall=3:1500")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan.kill,
            vec![
                ("bootstrap".into(), KillTarget::New(0)),
                ("quiesce".into(), KillTarget::Old(2)),
            ]
        );
        assert_eq!(plan.drop_frame, Some(3));
        assert_eq!(plan.corrupt_frame, Some(5));
        assert_eq!(plan.delay_frame, Some((2, Duration::from_millis(300))));
        assert_eq!(plan.torn_write, Some(1));
        assert_eq!(plan.stall, Some((3, Duration::from_millis(1500))));
        assert!(plan.is_active());
        assert!(!FaultPlan::parse("").unwrap().is_active());
        assert!(!FaultPlan::parse("seed=7").unwrap().is_active());
    }

    #[test]
    fn malformed_plans_are_rejected_loudly() {
        for bad in [
            "bogus=1",
            "kill=nostep",
            "kill=quiesce:worker3",
            "drop=abc",
            "delay=3",
            "stall=1:xs",
            "seed",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn directives_fire_exactly_once_at_their_index() {
        let plan = FaultPlan::parse("seed=9;drop=2;corrupt=3").unwrap();
        let inj = FaultInjector::from_plan(plan);
        let mut frame1 = sample_frame();
        assert_eq!(inj.outbound_frame(&mut frame1), FrameFate::Send);
        assert_eq!(frame1, sample_frame(), "frame 1 untouched");
        let mut frame2 = sample_frame();
        assert_eq!(inj.outbound_frame(&mut frame2), FrameFate::Drop);
        let mut frame3 = sample_frame();
        assert_eq!(inj.outbound_frame(&mut frame3), FrameFate::Send);
        assert_ne!(frame3, sample_frame(), "frame 3 corrupted");
        assert_eq!(
            frame3.len(),
            sample_frame().len(),
            "corruption flips bytes, never resizes"
        );
        let mut frame4 = sample_frame();
        assert_eq!(inj.outbound_frame(&mut frame4), FrameFate::Send);
        assert_eq!(frame4, sample_frame(), "one-shot: frame 4 untouched");
    }

    #[test]
    fn corruption_is_reproducible_from_the_seed() {
        let corrupt = |seed: u64| {
            let inj = FaultInjector::from_plan(
                FaultPlan::parse(&format!("seed={seed};corrupt=1")).unwrap(),
            );
            let mut frame = sample_frame();
            let _ = inj.outbound_frame(&mut frame);
            frame
        };
        assert_eq!(corrupt(7), corrupt(7), "same seed, same corruption");
        assert_ne!(corrupt(7), corrupt(8), "different seed, different bytes");
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix() {
        let inj = FaultInjector::from_plan(FaultPlan::parse("seed=3;torn=2").unwrap());
        assert_eq!(inj.torn_write(1000), None, "write 1 lands intact");
        let keep = inj.torn_write(1000).expect("write 2 is torn");
        assert!((1..1000).contains(&keep), "strict prefix, got {keep}");
        assert_eq!(inj.torn_write(1000), None, "one-shot");
    }

    #[test]
    fn kills_fire_once_per_directive_and_only_at_their_step() {
        let inj = FaultInjector::from_plan(
            FaultPlan::parse("kill=bootstrap:new1;kill=bootstrap:old0;kill=cutover:old1").unwrap(),
        );
        assert!(inj.kills_due("quiesce").is_empty());
        assert_eq!(
            inj.kills_due("bootstrap"),
            vec![KillTarget::New(1), KillTarget::Old(0)]
        );
        assert!(inj.kills_due("bootstrap").is_empty(), "one-shot");
        assert_eq!(inj.kills_due("cutover"), vec![KillTarget::Old(1)]);
    }

    /// A representative frame image (kind + length prefix + payload).
    fn sample_frame() -> Vec<u8> {
        crate::wire::Message::Update {
            batch_seq: 1,
            deltas: vec![bigraph::GraphDelta::AddEdge { upper: 3, lower: 9 }],
        }
        .to_frame_bytes()
    }
}

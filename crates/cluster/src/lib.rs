//! Multi-process sharded serving: shard workers + a coordinator that
//! scales query throughput across the process boundary.
//!
//! A single [`cne::serving::ServingEngine`] already decouples queries
//! from splices inside one process. This crate is the horizontal half of
//! the millions-of-users story: the graph is partitioned into contiguous
//! vertex-range **shards**, each owned by a worker process running its
//! own serving engine, and a [`Coordinator`] fans every batch query out
//! over Unix-domain sockets and concatenates the per-worker reports into
//! a full [`BatchReport`](cne::batch::BatchReport) that is
//! **byte-identical** to what an unsharded engine would have produced.
//! No async runtime, no serde on the wire: std threads, blocking
//! sockets, and a hand-rolled little-endian protocol ([`wire`]).
//!
//! # Shard assignment
//!
//! Sharding is along one layer (the *shard layer*, the layer queries
//! target). [`Coordinator::spawn_with`] splits `[0, n)` into `k` even
//! contiguous ranges; the **last** range is open-ended (`hi =
//! u32::MAX`), so vertices appended after spawn have an owner. Every
//! shard graph keeps the **global layer sizes** (validation only reads
//! sizes, so any worker can validate any query) but holds only the edges
//! whose shard-layer endpoint it owns — a worker therefore has the
//! *complete* adjacency of every vertex it owns, which is the only
//! adjacency either protocol round ever reads.
//!
//! The update stream is partitioned by the same ranges
//! ([`bigraph::UpdateBatch::partition_by_ranges`]): an edge delta goes
//! to its shard-layer endpoint's owner, and `AddVertex` is broadcast so
//! layer sizes stay aligned. Order is preserved within each worker's
//! stream; deltas that land on different workers touch different edges
//! and commute under last-delta-wins batch semantics, so after a
//! [`Coordinator::flush`] the union of shard graphs equals the unsharded
//! graph after the same stream.
//!
//! # Why concatenation is exact (proof sketch)
//!
//! The batch protocol's randomness is placement-independent by
//! construction:
//!
//! 1. **Round 1** consumes the query RNG in a fixed order — budget
//!    split, the target row's randomized response, then one draw of the
//!    per-candidate `base_seed`. It runs entirely at the target's owner
//!    from `StdRng::seed_from_u64(seed)`, exactly as the unsharded
//!    engine would, and only needs the target's adjacency (complete at
//!    its owner).
//! 2. **Round 2** perturbs candidate `w` with a *fresh* stream seeded
//!    `mix(base_seed, w)` ([`cne::batch::user_stream_seed`]). A
//!    candidate's estimate depends only on `(noisy target row, flip
//!    probability, ε₂, base_seed, w's own adjacency)` — all shipped in
//!    the round-1 artifact or locally complete — and on **no other
//!    candidate**. So computing a slice of candidates on one worker and
//!    another slice elsewhere yields bit-for-bit the numbers a single
//!    engine computes, and concatenating slices at their original
//!    indices is the identity.
//! 3. **Accounting** (budget ledger + transcript) is a pure replay:
//!    given the round-1 artifact and the candidate count it never draws
//!    randomness, so the coordinator reproduces it locally
//!    ([`cne::batch::BatchSingleSource::assemble_report`]).
//!
//! The swap-correctness suite (`tests/cluster_swap.rs`) pins this: for
//! random 1/2/4-shard partitions, reports concatenated across real
//! worker processes equal an unsharded engine's byte for byte —
//! estimates, budget, and transcript.
//!
//! # Robustness
//!
//! Connects retry with backoff under a deadline; every socket carries
//! read/write timeouts; each request gets one reconnect-and-resend (a
//! *restarting* worker is transparently picked back up, since workers
//! keep state across connections). A worker that stays dead is marked
//! unhealthy and the fan-out returns
//! [`ClusterError::PartialResult`] — the coordinator never hangs on a
//! dead shard. Per-worker [`ServingStats`](cne::serving::ServingStats)
//! (lag percentiles, epochs, health) roll up via
//! [`Coordinator::stats`].
//!
//! # Persistence and supervision
//!
//! A cluster can bootstrap from a [`bigraph::snapshot::GraphSnapshot`]
//! instead of streaming per-edge `Bootstrap` frames:
//! [`Coordinator::spawn_partitioned_from_snapshot`] writes one
//! *restricted* snapshot file per shard (each holding only that shard's
//! edges and packed bitmaps) and sends every worker a path-only
//! `BootstrapSnapshot` frame; the worker validates the file's checksums
//! and adopts its bytes directly — no text parse, no re-pack. The shard
//! files sit behind a byte-exact manifest (graph identity + shard
//! ranges), so a coordinator restarting over the same snapshot and
//! partition reuses them and pays only worker adoption.
//!
//! Supervision closes the loop: [`Coordinator::supervise`] probes every
//! worker, respawns any that died, re-bootstraps the replacement from
//! its shard's snapshot file, replays the update-log tail past the
//! snapshot's pinned sequence, and marks
//! it healthy — the recovered worker serves byte-identical reports
//! (pinned by the kill-one-worker case in `tests/cluster_swap.rs`).

#![warn(missing_docs)]

pub mod coordinator;
pub mod error;
pub mod wire;
pub mod worker;

pub use coordinator::{
    worker_command, ClusterConfig, ClusterStats, Coordinator, WorkerSpec, WorkerStatus,
};
pub use error::{ClusterError, Result};
pub use worker::{maybe_run_worker_from_env, WorkerConfig};

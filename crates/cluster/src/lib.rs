//! Multi-process sharded serving: shard workers + a coordinator that
//! scales query throughput across the process boundary.
//!
//! A single [`cne::serving::ServingEngine`] already decouples queries
//! from splices inside one process. This crate is the horizontal half of
//! the millions-of-users story: the graph is partitioned into contiguous
//! vertex-range **shards**, each owned by a worker process running its
//! own serving engine, and a [`Coordinator`] fans every batch query out
//! over Unix-domain sockets and concatenates the per-worker reports into
//! a full [`BatchReport`](cne::batch::BatchReport) that is
//! **byte-identical** to what an unsharded engine would have produced.
//! No async runtime, no serde on the wire: std threads, blocking
//! sockets, and a hand-rolled little-endian protocol ([`wire`]).
//!
//! # Shard assignment
//!
//! Sharding is along one layer (the *shard layer*, the layer queries
//! target). [`Coordinator::spawn_with`] splits `[0, n)` into `k` even
//! contiguous ranges; the **last** range is open-ended (`hi =
//! u32::MAX`), so vertices appended after spawn have an owner. Every
//! shard graph keeps the **global layer sizes** (validation only reads
//! sizes, so any worker can validate any query) but holds only the edges
//! whose shard-layer endpoint it owns — a worker therefore has the
//! *complete* adjacency of every vertex it owns, which is the only
//! adjacency either protocol round ever reads.
//!
//! The update stream is partitioned by the same ranges
//! ([`bigraph::UpdateBatch::partition_by_ranges`]): an edge delta goes
//! to its shard-layer endpoint's owner, and `AddVertex` is broadcast so
//! layer sizes stay aligned. Order is preserved within each worker's
//! stream; deltas that land on different workers touch different edges
//! and commute under last-delta-wins batch semantics, so after a
//! [`Coordinator::flush`] the union of shard graphs equals the unsharded
//! graph after the same stream.
//!
//! # Why concatenation is exact (proof sketch)
//!
//! The batch protocol's randomness is placement-independent by
//! construction:
//!
//! 1. **Round 1** consumes the query RNG in a fixed order — budget
//!    split, the target row's randomized response, then one draw of the
//!    per-candidate `base_seed`. It runs entirely at the target's owner
//!    from `StdRng::seed_from_u64(seed)`, exactly as the unsharded
//!    engine would, and only needs the target's adjacency (complete at
//!    its owner).
//! 2. **Round 2** perturbs candidate `w` with a *fresh* stream seeded
//!    `mix(base_seed, w)` ([`cne::batch::user_stream_seed`]). A
//!    candidate's estimate depends only on `(noisy target row, flip
//!    probability, ε₂, base_seed, w's own adjacency)` — all shipped in
//!    the round-1 artifact or locally complete — and on **no other
//!    candidate**. So computing a slice of candidates on one worker and
//!    another slice elsewhere yields bit-for-bit the numbers a single
//!    engine computes, and concatenating slices at their original
//!    indices is the identity.
//! 3. **Accounting** (budget ledger + transcript) is a pure replay:
//!    given the round-1 artifact and the candidate count it never draws
//!    randomness, so the coordinator reproduces it locally
//!    ([`cne::batch::BatchSingleSource::assemble_report`]).
//!
//! The swap-correctness suite (`tests/cluster_swap.rs`) pins this: for
//! random 1/2/4-shard partitions, reports concatenated across real
//! worker processes equal an unsharded engine's byte for byte —
//! estimates, budget, and transcript.
//!
//! # Robustness
//!
//! Connects retry with backoff under a deadline; every socket carries
//! read/write timeouts; each request gets one reconnect-and-resend (a
//! *restarting* worker is transparently picked back up, since workers
//! keep state across connections). A worker that stays dead is marked
//! unhealthy and the fan-out returns
//! [`ClusterError::PartialResult`] — the coordinator never hangs on a
//! dead shard. Per-worker [`ServingStats`](cne::serving::ServingStats)
//! (lag percentiles, epochs, health) roll up via
//! [`Coordinator::stats`].
//!
//! # Persistence and supervision
//!
//! A cluster can bootstrap from a [`bigraph::snapshot::GraphSnapshot`]
//! instead of streaming per-edge `Bootstrap` frames:
//! [`Coordinator::spawn_partitioned_from_snapshot`] writes one
//! *restricted* snapshot file per shard (each holding only that shard's
//! edges and packed bitmaps) and sends every worker a path-only
//! `BootstrapSnapshot` frame; the worker validates the file's checksums
//! and adopts its bytes directly — no text parse, no re-pack. The shard
//! files sit behind a byte-exact manifest (graph identity + shard
//! ranges), so a coordinator restarting over the same snapshot and
//! partition reuses them and pays only worker adoption.
//!
//! Supervision closes the loop: [`Coordinator::supervise`] probes every
//! worker, respawns any that died, re-bootstraps the replacement from
//! its shard's snapshot file, replays the update-log tail past the
//! snapshot's pinned sequence, and marks
//! it healthy — the recovered worker serves byte-identical reports
//! (pinned by the kill-one-worker case in `tests/cluster_swap.rs`).
//!
//! # Rebalancing lifecycle
//!
//! [`Coordinator::rebalance`] changes the shard partition **live** —
//! split (2→4), merge (4→2), or shift cuts — without a full respawn and
//! without a window in which queries fail. It is a seven-step state
//! machine ([`RebalanceStep`]), driveable one step at a time via
//! [`Coordinator::begin_rebalance`] + [`Coordinator::rebalance_step`]
//! with live traffic between any two steps:
//!
//! ```text
//!  begin ─► Quiesce ─► Capture ─► Cut ─► Spawn ─► Bootstrap ─► CutOver ─► Retire ─► done
//!             │           │        │       │          │         ▲  │
//!             ╰───────────┴────────┴───────┴──────────┴─────────╯  │ (commit
//!                  any failure up to the commit point               │  point)
//!                  rolls back: staged workers killed, staged        ▼
//!                  files deleted, OLD topology still serving   new topology
//!                  (error has `rolled_back: true`)              serving
//! ```
//!
//! - **Quiesce** drains the replication log and barriers every worker —
//!   worker state now equals the coordinator's base graph plus the
//!   drained tail, with nothing in flight.
//! - **Capture** folds that tail into the coordinator's own graph
//!   replica and pins a quiet-point snapshot at the drained sequence.
//! - **Cut** writes one shard-restricted, generation-named snapshot
//!   file per *new* range; **Spawn**/**Bootstrap** bring the new
//!   generation's workers up from those files on fresh sockets while
//!   the old generation keeps serving.
//! - **CutOver** replays the drained tail past the pinned sequence to
//!   the new workers, barriers them, then **commits**: range table,
//!   cut-point cache, worker table, and snapshot source swap in one
//!   motion (manifest invalidated first, rewritten after — the same
//!   crash-safe ordering the spawn path uses), and retained history
//!   before the new pin is truncated.
//! - **Retire** shuts the old generation down and sweeps unreferenced
//!   shard files. Purely janitorial: the new topology has been serving
//!   since commit.
//!
//! **Rollback guarantees.** Every fallible action precedes the commit
//! point, so a surfaced [`ClusterError::Rebalance`] always carries
//! `rolled_back: true`: the staged generation is torn down and the old
//! topology keeps serving with zero divergence — byte-identity holds
//! across a failed rebalance exactly as across a successful one. A new
//! worker dying *after* commit is ordinary supervision work
//! ([`Coordinator::supervise`] rebuilds it from the new generation's
//! shard files); the coordinator's own death mid-rebalance leaves only
//! ignorable garbage (generation-named files not referenced by the
//! manifest, swept at the next spawn or retire).
//!
//! # Fault injection
//!
//! The chaos legs above are driven by a deterministic, seed-reproducible
//! fault layer ([`FaultPlan`] / [`FaultInjector`]) threaded through the
//! coordinator's transport, the shard-file writes, and the rebalance
//! step machine. A plan is armed via the environment and announced on
//! stderr so every failure is replayable from its printed seed:
//!
//! ```text
//! CNE_FAULT_PLAN='seed=42;kill=bootstrap:new0;drop=3' cargo test -p cluster
//! ```
//!
//! Directives (each fires **once**, at a deterministic index):
//! `kill=STEP:oldI|newI` crashes a worker at a rebalance step's entry;
//! `drop=K` / `corrupt=K` / `delay=K:MS` swallow, byte-flip, or delay
//! the Kth coordinator request frame; `torn=K` truncates the Kth shard
//! file written during a rebalance Cut; `stall=K:MS` holds a worker's
//! Kth response past the coordinator's I/O deadline (the worker side
//! arms itself from the same inherited environment variable). See
//! [`FaultPlan`] for the full grammar. Timeouts, deadlines, and the
//! jitter-free exponential backoff they retry under are unified in
//! [`RetryPolicy`], env-overridable per process.

#![warn(missing_docs)]

pub mod coordinator;
pub mod error;
pub mod fault;
pub mod wire;
pub mod worker;

pub use coordinator::{
    worker_command, ClusterConfig, ClusterStats, Coordinator, RebalanceStatus, RebalanceStep,
    RetryPolicy, WorkerSpec, WorkerStatus,
};
pub use error::{ClusterError, Result};
pub use fault::{FaultInjector, FaultPlan, FrameFate, KillTarget, FAULT_PLAN_ENV};
pub use worker::{maybe_run_worker_from_env, WorkerConfig};

//! Typed failures of the multi-process serving tier.

use std::fmt;
use std::io;

/// Convenience alias for cluster results.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Everything that can go wrong between coordinator and workers.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClusterError {
    /// Spawning or bootstrapping a worker process failed.
    Spawn {
        /// The worker index that failed to come up.
        worker: usize,
        /// The underlying I/O failure.
        source: io::Error,
    },
    /// A worker's connection died and reconnect/retry was exhausted. The
    /// coordinator has marked it unhealthy; subsequent fan-outs fail fast
    /// with [`ClusterError::PartialResult`] until it is replaced.
    WorkerDown {
        /// The dead worker's index.
        worker: usize,
        /// What the coordinator was doing when the worker vanished.
        context: &'static str,
        /// The final I/O failure.
        source: io::Error,
    },
    /// A fan-out could not cover every shard: the listed workers are dead
    /// or returned errors, so no full report can be concatenated. This is
    /// the typed partial-result error the coordinator returns **instead of
    /// hanging** on a dead worker.
    PartialResult {
        /// Indices of the workers whose shard results are missing.
        missing: Vec<usize>,
        /// What the fan-out was computing.
        context: &'static str,
    },
    /// Supervision found a dead worker but the cluster has no snapshot
    /// source to rebuild it from: it was spawned with edge-list
    /// bootstrap, and only the snapshot-spawn entry points
    /// ([`Coordinator::spawn_partitioned_from_snapshot`]) retain one.
    ///
    /// [`Coordinator::spawn_partitioned_from_snapshot`]: crate::coordinator::Coordinator::spawn_partitioned_from_snapshot
    NoSnapshotSource {
        /// The dead worker that cannot be rebuilt.
        worker: usize,
    },
    /// A worker sent a frame that violates the wire protocol.
    Protocol {
        /// The offending worker's index.
        worker: usize,
        /// What was malformed.
        detail: String,
    },
    /// A worker reported a request-level error ([`wire::Message::Err`]).
    ///
    /// [`wire::Message::Err`]: crate::wire::Message::Err
    Remote {
        /// The reporting worker's index.
        worker: usize,
        /// One of [`wire::err_code`](crate::wire::err_code)'s constants.
        code: u16,
        /// The worker's message.
        message: String,
    },
    /// A coordinator-side query step failed (validation, assembly).
    Query(cne::CneError),
    /// A live rebalance failed at the named step. `rolled_back: true`
    /// means the coordinator restored the previous topology before
    /// returning — the old workers are still serving and a retry may
    /// succeed; `false` means the new topology had already committed and
    /// whatever is left (a dead incoming worker, unretired old workers)
    /// is [`Coordinator::supervise`]'s to finish.
    ///
    /// [`Coordinator::supervise`]: crate::coordinator::Coordinator::supervise
    Rebalance {
        /// Lower-case name of the [`RebalanceStep`](crate::RebalanceStep)
        /// that failed.
        step: &'static str,
        /// Whether the previous topology was restored.
        rolled_back: bool,
        /// The failure that aborted the step.
        source: Box<ClusterError>,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Spawn { worker, source } => {
                write!(f, "worker {worker} failed to start: {source}")
            }
            ClusterError::WorkerDown {
                worker,
                context,
                source,
            } => write!(f, "worker {worker} unreachable during {context}: {source}"),
            ClusterError::PartialResult { missing, context } => write!(
                f,
                "partial result: worker(s) {missing:?} missing from {context} fan-out"
            ),
            ClusterError::NoSnapshotSource { worker } => write!(
                f,
                "worker {worker} is dead and the cluster has no snapshot source to rebuild it from"
            ),
            ClusterError::Protocol { worker, detail } => {
                write!(f, "protocol violation from worker {worker}: {detail}")
            }
            ClusterError::Remote {
                worker,
                code,
                message,
            } => write!(f, "worker {worker} error (code {code}): {message}"),
            ClusterError::Query(e) => write!(f, "query failed: {e}"),
            ClusterError::Rebalance {
                step,
                rolled_back,
                source,
            } => write!(
                f,
                "rebalance failed at step `{step}` ({}): {source}",
                if *rolled_back {
                    "rolled back to the previous topology"
                } else {
                    "already committed; supervision completes it"
                }
            ),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Spawn { source, .. } | ClusterError::WorkerDown { source, .. } => {
                Some(source)
            }
            ClusterError::Query(e) => Some(e),
            ClusterError::Rebalance { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<cne::CneError> for ClusterError {
    fn from(e: cne::CneError) -> Self {
        ClusterError::Query(e)
    }
}

//! The coordinator: spawns shard workers, replicates the update stream,
//! fans queries out, and concatenates per-worker reports.
//!
//! See the [crate docs](crate) for the shard-assignment rules and the
//! concatenation proof sketch. Mechanically, a batch query runs as:
//!
//! 1. **Round 1 at the target's owner.** The owner validates the full
//!    candidate list (validation only reads global layer sizes, which
//!    every shard graph carries) and runs the target's randomized
//!    response, returning the noisy row + the per-candidate stream base
//!    seed.
//! 2. **Round 2 at each candidate's owner.** The coordinator groups
//!    candidates by owning range and ships the round-1 artifact to each
//!    owner, which computes its slice of estimates against its own
//!    (complete) adjacency.
//! 3. **Concatenate + replay.** Estimates come back bit-exact and are
//!    placed at their original indices; the coordinator replays the
//!    budget/transcript accounting locally (replay never draws
//!    randomness), yielding a [`BatchReport`] byte-identical to an
//!    unsharded engine's.
//!
//! Robustness: connects have a bounded retry budget, reads carry
//! timeouts, and one reconnect-and-resend is attempted per request — a
//! worker that is merely restarting is picked back up, while a dead one
//! gets marked unhealthy and the fan-out returns
//! [`ClusterError::PartialResult`] instead of hanging.

use crate::error::{ClusterError, Result};
use crate::fault::{FaultInjector, FrameFate, KillTarget};
use crate::wire::{Message, WireRound1, WireStats};
use crate::worker::{SHARD_HI_ENV, SHARD_LO_ENV, SOCKET_ENV};
use bigraph::delta::{GraphDelta, UpdateLog};
use bigraph::snapshot::GraphSnapshot;
use bigraph::{BipartiteGraph, Layer, VertexId};
use cne::batch::{BatchEstimate, BatchReport, BatchRound1, BatchSingleSource};
use cne::CneError;
use ldp::budget::PrivacyBudget;
use ldp::noisy_graph::NoisyNeighborsPacked;
use std::io;
use std::ops::Range;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every timeout, deadline, and backoff the coordinator applies to a
/// worker, in one place. Retries sleep a **jitter-free exponential**
/// sequence — `backoff_base * 2^attempt`, capped at `backoff_cap` — so a
/// retry schedule is exactly reproducible run to run (the property the
/// fault-injection harness pins its legs on), while still spreading a
/// slow worker's restart over geometrically fewer probes than the old
/// fixed sleep did.
///
/// [`RetryPolicy::from_env`] (which [`Default`] delegates to) lets every
/// knob be overridden per process without a code change:
///
/// | field | env var | default |
/// |---|---|---|
/// | `connect_timeout` | `CNE_CLUSTER_CONNECT_TIMEOUT_MS` | 5000 |
/// | `backoff_base` | `CNE_CLUSTER_BACKOFF_BASE_MS` | 10 |
/// | `backoff_cap` | `CNE_CLUSTER_BACKOFF_CAP_MS` | 160 |
/// | `io_timeout` | `CNE_CLUSTER_IO_TIMEOUT_MS` | 10000 |
/// | `teardown_deadline` | `CNE_CLUSTER_TEARDOWN_MS` | 2000 |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total time budget for (re)connecting to one worker's socket,
    /// with [`backoff`](Self::backoff) sleeps between attempts.
    pub connect_timeout: Duration,
    /// First retry sleep; attempt `n` sleeps `backoff_base * 2^n`.
    pub backoff_base: Duration,
    /// Ceiling on any single retry sleep.
    pub backoff_cap: Duration,
    /// Read/write timeout on every worker socket: the bound that turns a
    /// hung worker into a typed error instead of a hung coordinator.
    pub io_timeout: Duration,
    /// How long an orderly teardown waits for a worker to exit on its
    /// own (polled with [`backoff`](Self::backoff)) before killing it.
    pub teardown_deadline: Duration,
}

impl RetryPolicy {
    /// The compiled-in baseline (the table in the type docs), with no
    /// environment consulted.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(160),
            io_timeout: Duration::from_secs(10),
            teardown_deadline: Duration::from_secs(2),
        }
    }

    /// [`baseline`](Self::baseline) with any of the documented
    /// `CNE_CLUSTER_*_MS` environment overrides applied (unparsable
    /// values are ignored). This is what [`Default`] returns, so CI legs
    /// and operators tune deadlines without touching call sites.
    #[must_use]
    pub fn from_env() -> Self {
        let ms = |var: &str, fallback: Duration| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map_or(fallback, Duration::from_millis)
        };
        let base = Self::baseline();
        Self {
            connect_timeout: ms("CNE_CLUSTER_CONNECT_TIMEOUT_MS", base.connect_timeout),
            backoff_base: ms("CNE_CLUSTER_BACKOFF_BASE_MS", base.backoff_base),
            backoff_cap: ms("CNE_CLUSTER_BACKOFF_CAP_MS", base.backoff_cap),
            io_timeout: ms("CNE_CLUSTER_IO_TIMEOUT_MS", base.io_timeout),
            teardown_deadline: ms("CNE_CLUSTER_TEARDOWN_MS", base.teardown_deadline),
        }
    }

    /// The deterministic sleep before retry `attempt` (0-based):
    /// `min(backoff_base * 2^attempt, backoff_cap)`. No jitter — two runs
    /// of the same schedule probe at the same offsets.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.backoff_base
            .checked_mul(factor)
            .map_or(self.backoff_cap, |d| d.min(self.backoff_cap))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Coordinator-side tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Timeouts, deadlines, and retry backoff (see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Deltas drained from the coordinator log per replication pump.
    pub pump_chunk: usize,
    /// The fault-injection harness consulted on every outbound frame,
    /// shard-file write, and rebalance step. The default arms whatever
    /// [`FAULT_PLAN_ENV`](crate::FAULT_PLAN_ENV) holds — unset, an inert
    /// injector that costs one atomic-free boolean check per site.
    pub faults: Arc<FaultInjector>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::from_env(),
            pump_chunk: 4096,
            faults: FaultInjector::from_env(),
        }
    }
}

/// A worker's spawn-time identity, handed to the launch closure.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Index in the coordinator's worker table.
    pub index: usize,
    /// The socket the worker must listen on.
    pub socket: PathBuf,
    /// First owned shard-layer vertex.
    pub shard_lo: u32,
    /// One past the last owned vertex.
    pub shard_hi: u32,
}

/// A [`Command`] that runs `program` as the shard worker described by
/// `spec` (socket + range via the worker env vars). The standard launch
/// closure for both the dedicated `shard-worker` binary and self-exec
/// harnesses.
#[must_use]
pub fn worker_command(program: &Path, spec: &WorkerSpec) -> Command {
    let mut cmd = Command::new(program);
    cmd.env(SOCKET_ENV, &spec.socket)
        .env(SHARD_LO_ENV, spec.shard_lo.to_string())
        .env(SHARD_HI_ENV, spec.shard_hi.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    cmd
}

/// Coordinator-side state for one worker process.
struct Worker {
    spec: WorkerSpec,
    child: Option<Child>,
    conn: Option<UnixStream>,
    healthy: bool,
    /// Idempotency counter for `Update` exchanges: bumped once per
    /// logical batch, so the retry inside [`exchange`] re-sends the same
    /// `batch_seq` and the worker can drop a batch it already ingested
    /// instead of double-applying it (`AddVertex` is not idempotent).
    update_batches: u64,
}

/// One worker's entry in a [`ClusterStats`] roll-up.
#[derive(Debug, Clone)]
pub struct WorkerStatus {
    /// Worker index.
    pub index: usize,
    /// Owned shard range.
    pub shard: Range<u32>,
    /// Whether the last exchange with this worker succeeded.
    pub healthy: bool,
    /// The worker's serving counters (`None` if unreachable).
    pub stats: Option<WireStats>,
}

/// The coordinator's roll-up of every worker's [`ServingStats`]
/// (mirrored over the wire as [`WireStats`]).
///
/// [`ServingStats`]: cne::serving::ServingStats
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-worker detail, in shard order.
    pub workers: Vec<WorkerStatus>,
    /// Workers that answered the stats request.
    pub healthy_workers: usize,
    /// Sum of per-worker appended deltas.
    pub appended: u64,
    /// Sum of per-worker published deltas.
    pub published: u64,
    /// Sum of per-worker rejected deltas.
    pub rejected: u64,
    /// Worst current ingest lag across workers.
    pub max_ingest_lag: u64,
    /// Worst p50 snapshot lag across workers.
    pub max_lag_p50: u64,
    /// Worst p95 snapshot lag across workers.
    pub max_lag_p95: u64,
    /// Slowest worker's published epoch.
    pub min_epoch: u64,
    /// Fastest worker's published epoch.
    pub max_epoch: u64,
}

/// The retained worker-launch closure: maps a [`WorkerSpec`] to a spawned
/// child process, both at initial spawn and when [`Coordinator::supervise`]
/// respawns a dead worker.
type LaunchFn = Box<dyn FnMut(&WorkerSpec) -> io::Result<Child> + Send>;

/// The multi-process serving front end: owns the worker processes, the
/// replication log, and the query fan-out.
pub struct Coordinator {
    config: ClusterConfig,
    shard_layer: Layer,
    ranges: Vec<Range<u32>>,
    /// Interior cut points of `ranges` (`ranges[i].start` for `i >= 1`),
    /// cached so [`owner_of`](Self::owner_of) — which runs once per
    /// candidate on every batch query — is a binary search instead of a
    /// linear scan over the partition.
    cuts: Vec<u32>,
    workers: Vec<Worker>,
    log: UpdateLog,
    algo: BatchSingleSource,
    /// The launch closure, retained so [`supervise`](Self::supervise) can
    /// respawn a dead worker with the same command the original used.
    launch: LaunchFn,
    /// Where workers (re)bootstrap from, for clusters spawned via the
    /// snapshot path. `None` for edge-list-bootstrapped clusters, which
    /// cannot rebuild dead workers.
    snapshot: Option<SnapshotSource>,
    /// The artifact directory (sockets, shard files, manifest), retained
    /// so rebalancing can stage a new generation of files next to the
    /// live ones.
    dir: PathBuf,
    /// Topology generation, bumped by every [`begin_rebalance`]
    /// (`Coordinator::begin_rebalance`). Generation-`g` artifacts carry a
    /// `-g{g}-` infix so a staged topology never collides with the one
    /// still serving.
    generation: u64,
    /// The coordinator's own copy of the graph, kept current lazily:
    /// `graph` is the source snapshot's state with every drained delta
    /// through `seq` applied. Rebalancing folds the drained tail in at
    /// its quiet point to cut fresh shard files without asking any worker
    /// to serialize state back. `None` for edge-list-bootstrapped
    /// clusters, which therefore cannot rebalance.
    base: Option<BaseGraph>,
    /// The in-flight rebalance, if any (see [`RebalanceStep`] for the
    /// step sequence). `Some` only between a failed/paused step and the
    /// next [`rebalance_step`](Coordinator::rebalance_step) call;
    /// completed or rolled-back rebalances clear it.
    rebalance: Option<RebalanceState>,
}

/// The coordinator-held graph replica rebalancing cuts shard files from.
struct BaseGraph {
    /// Source-snapshot state plus all drained deltas through `seq`.
    graph: BipartiteGraph,
    /// Last drained log sequence folded into `graph`.
    seq: u64,
}

/// The on-disk snapshots a snapshot-spawned cluster rebuilds workers
/// from: one shard-restricted file per worker, so a (re)bootstrapping
/// worker reads and validates only its own shard's bytes instead of the
/// full graph image.
struct SnapshotSource {
    /// Per-worker shard snapshot paths; must stay readable for the
    /// cluster's lifetime.
    paths: Vec<PathBuf>,
    /// Coordinator-log sequence the snapshots cover; tail replay starts
    /// strictly after it.
    seq: u64,
    /// Graph epoch stamped into the files (workers cross-check it before
    /// adopting).
    epoch: u64,
}

/// The steps of a live rebalance, in order. Each step is atomic from the
/// caller's perspective: a failure inside any of them rolls the
/// coordinator back to the previous topology (still serving, zero
/// divergence) before the error surfaces. The **commit point** is inside
/// [`CutOver`](Self::CutOver) — every fallible action precedes it, so a
/// surfaced [`ClusterError::Rebalance`] always has `rolled_back: true`;
/// anything that dies *after* commit (a fresh worker crashing on its
/// first query) is ordinary supervision work, finished by
/// [`Coordinator::supervise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RebalanceStep {
    /// Drain the replication log and barrier every worker: after this,
    /// worker state == base state + drained tail, with nothing in flight.
    Quiesce,
    /// Fold the drained tail into the coordinator's base graph and pin a
    /// quiet-point [`GraphSnapshot`] at the current drained sequence.
    Capture,
    /// Cut one shard-restricted snapshot file per **new** range, named
    /// with the new generation so the staged files never collide with
    /// the serving ones.
    Cut,
    /// Launch the new generation's worker processes on fresh sockets.
    Spawn,
    /// Handshake each new worker and ship its snapshot-bootstrap frame.
    Bootstrap,
    /// Catch the new workers up past the pinned sequence, barrier them,
    /// then **commit**: swap the coordinator's range table, cut-point
    /// cache, worker table, and snapshot source in one motion. Queries
    /// issued before this step complete against the old topology; the
    /// first query after it runs against the new one.
    CutOver,
    /// Shut down the retired workers and sweep shard files no longer
    /// named by the manifest. Purely janitorial — the new topology is
    /// already serving, so failures here degrade to best-effort cleanup.
    Retire,
}

impl RebalanceStep {
    /// Lower-case step name — the spelling [`FaultPlan`] `kill=` targets
    /// and [`ClusterError::Rebalance::step`] use.
    ///
    /// [`FaultPlan`]: crate::FaultPlan
    /// [`ClusterError::Rebalance::step`]: crate::ClusterError::Rebalance
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RebalanceStep::Quiesce => "quiesce",
            RebalanceStep::Capture => "capture",
            RebalanceStep::Cut => "cut",
            RebalanceStep::Spawn => "spawn",
            RebalanceStep::Bootstrap => "bootstrap",
            RebalanceStep::CutOver => "cutover",
            RebalanceStep::Retire => "retire",
        }
    }

    /// The step after this one (`None` after [`Retire`](Self::Retire)).
    #[must_use]
    pub fn next(self) -> Option<Self> {
        match self {
            RebalanceStep::Quiesce => Some(RebalanceStep::Capture),
            RebalanceStep::Capture => Some(RebalanceStep::Cut),
            RebalanceStep::Cut => Some(RebalanceStep::Spawn),
            RebalanceStep::Spawn => Some(RebalanceStep::Bootstrap),
            RebalanceStep::Bootstrap => Some(RebalanceStep::CutOver),
            RebalanceStep::CutOver => Some(RebalanceStep::Retire),
            RebalanceStep::Retire => None,
        }
    }
}

/// What one [`Coordinator::rebalance_step`] call left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceStatus {
    /// The named step completed; call `rebalance_step` again to run it.
    InProgress(RebalanceStep),
    /// The rebalance is done and the new topology is serving.
    Complete,
}

/// Everything an in-flight rebalance has staged, kept in one bundle so
/// rollback is "drop the bundle" and commit is "swap the bundle in".
struct RebalanceState {
    /// The step to run next.
    step: RebalanceStep,
    /// Target partition (validated contiguous cover at `begin`).
    new_ranges: Vec<Range<u32>>,
    /// The generation these staged artifacts belong to.
    generation: u64,
    /// The quiet-point snapshot pinned by [`RebalanceStep::Capture`];
    /// dropped once [`RebalanceStep::Cut`] has serialized it.
    snapshot: Option<GraphSnapshot>,
    /// Drained log sequence the pinned snapshot covers.
    pinned_seq: u64,
    /// Graph epoch stamped into the staged shard files.
    epoch: u64,
    /// Manifest bytes describing the staged files (written at commit).
    manifest: Vec<u8>,
    /// Staged shard-file paths. Cleared at commit — rollback deletes
    /// whatever is still listed here, so a path present means "safe to
    /// remove".
    paths: Vec<PathBuf>,
    /// The new generation's workers, in new-range order. Swapped into
    /// the coordinator at commit.
    new_workers: Vec<Worker>,
    /// The old generation's workers, moved here at commit and shut down
    /// by [`RebalanceStep::Retire`].
    retired: Vec<Worker>,
}

/// The index of the range owning `v` in a contiguous partition whose
/// interior cut points are `cuts` (`cuts[i]` = start of range `i + 1`):
/// the number of cut points at or below `v`.
fn owner_index(cuts: &[u32], v: VertexId) -> usize {
    cuts.partition_point(|&cut| cut <= v)
}

/// Shard-manifest magic: `"CNEM"` read as a little-endian u32.
const MANIFEST_MAGIC: u32 = 0x4D454E43;
/// Shard-manifest format version.
const MANIFEST_VERSION: u16 = 1;

/// The manifest a snapshot-spawned cluster writes next to its shard
/// files, recording every parameter that shaped them. A later spawn into
/// the same directory reuses the existing files iff its own manifest
/// bytes are identical — same source epoch and pinned sequence, same
/// graph shape, same shard layer, same ranges — which is what makes a
/// cluster *restart* skip shard derivation entirely. Reuse trusts the
/// directory to be this cluster's own artifact store (the same trust
/// supervision already places in it between spawn and respawn); payload
/// corruption is still caught by the snapshot section checksums when a
/// worker adopts its file.
fn shard_manifest(snapshot: &GraphSnapshot, shard_layer: Layer, ranges: &[Range<u32>]) -> Vec<u8> {
    let g = snapshot.graph();
    let mut out = Vec::with_capacity(56 + ranges.len() * 8);
    out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&[
        match shard_layer {
            Layer::Upper => 0u8,
            Layer::Lower => 1,
        },
        0,
    ]);
    out.extend_from_slice(&snapshot.epoch().to_le_bytes());
    out.extend_from_slice(&snapshot.log_seq().to_le_bytes());
    out.extend_from_slice(&(g.n_upper() as u64).to_le_bytes());
    out.extend_from_slice(&(g.n_lower() as u64).to_le_bytes());
    out.extend_from_slice(&(g.n_edges() as u64).to_le_bytes());
    out.extend_from_slice(&(ranges.len() as u64).to_le_bytes());
    for r in ranges {
        out.extend_from_slice(&r.start.to_le_bytes());
        out.extend_from_slice(&r.end.to_le_bytes());
    }
    out
}

/// Contiguous shard ranges: an even split of `[0, n)` into `k` parts,
/// with the last part open-ended (`hi = u32::MAX`) so vertices appended
/// after spawn have an owner.
fn shard_ranges(n: usize, k: usize) -> Vec<Range<u32>> {
    assert!(k > 0, "at least one worker");
    let n = n as u64;
    let k64 = k as u64;
    (0..k)
        .map(|i| {
            let lo = (n * i as u64 / k64) as u32;
            let hi = if i == k - 1 {
                u32::MAX
            } else {
                (n * (i as u64 + 1) / k64) as u32
            };
            lo..hi
        })
        .collect()
}

/// A [`ClusterError::Rebalance`] for misuse caught before any step ran
/// (step `"begin"`): a rebalance already in flight, or a cluster with no
/// base graph. Always `rolled_back: true` — nothing was staged, so the
/// previous topology is trivially intact.
fn rebalance_misuse(reason: String) -> ClusterError {
    ClusterError::Rebalance {
        step: "begin",
        rolled_back: true,
        source: Box::new(ClusterError::Query(CneError::InvalidParameter {
            name: "rebalance",
            reason,
        })),
    }
}

/// Panics unless `ranges` is a contiguous ascending cover of
/// `0..u32::MAX` — the shared validity rule for spawn partitions and
/// rebalance targets.
fn assert_contiguous_cover(ranges: &[Range<u32>]) {
    assert!(!ranges.is_empty(), "at least one shard range");
    assert_eq!(ranges[0].start, 0, "first range must start at vertex 0");
    assert_eq!(
        ranges.last().expect("non-empty").end,
        u32::MAX,
        "last range must be open-ended"
    );
    assert!(
        ranges.windows(2).all(|p| p[0].end == p[1].start),
        "ranges must be contiguous and ascending"
    );
}

/// Sweeps `dir` of shard snapshot files (`shard-*.snap`) that are not in
/// `keep`. Best-effort janitor: a cluster restart with fewer workers, or
/// a completed rebalance, orphans the previous layout's files, and
/// nothing can ever bootstrap from a file the manifest no longer names.
/// The manifest itself and unrelated files (including full-graph
/// snapshots like `screening.snap` that don't match the `shard-` prefix)
/// are untouched.
fn gc_stale_shard_files(dir: &Path, keep: &[PathBuf]) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("shard-") && name.ends_with(".snap") && !keep.contains(&path) {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Orderly shutdown of one worker: best-effort `Shutdown` request, a
/// bounded grace period ([`RetryPolicy::teardown_deadline`], polled with
/// the policy's deterministic backoff), then a kill if it overstays, and
/// finally socket removal. Shared by [`Coordinator`]'s `Drop` teardown
/// and the rebalance [`Retire`](RebalanceStep::Retire) step; safe to
/// call on a worker that is already dead or half-gone.
fn retire_worker(config: &ClusterConfig, worker: &mut Worker) {
    if worker.child.is_some() {
        // Best effort: a dead worker just gets killed below.
        let _ = exchange(config, worker, &Message::Shutdown, "shutdown");
        worker.conn = None;
        if let Some(mut child) = worker.child.take() {
            let deadline = Instant::now() + config.retry.teardown_deadline;
            let mut attempt = 0u32;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(config.retry.backoff(attempt));
                        attempt += 1;
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }
    let _ = std::fs::remove_file(&worker.spec.socket);
}

/// Replays the drained-delta tail strictly after `after_seq` to one
/// worker, filtered to `range` by the same routing rule replication uses
/// ([`GraphDelta::shard_vertex`]: edge deltas to their shard-layer
/// endpoint's owner, `AddVertex` broadcast), in chunks of
/// [`pump_chunk`](ClusterConfig::pump_chunk). A free function so both
/// supervision (rebuilding into `Coordinator::workers`) and rebalancing
/// (catching up workers not yet in the table) can drive it.
fn replay_drained_tail(
    config: &ClusterConfig,
    log: &UpdateLog,
    shard_layer: Layer,
    worker: &mut Worker,
    range: &Range<u32>,
    after_seq: u64,
) -> Result<()> {
    let tail = log
        .replay_from(after_seq)
        .expect("snapshot-spawned clusters retain drained deltas");
    let part: Vec<GraphDelta> = tail
        .deltas()
        .iter()
        .copied()
        .filter(|d| match d.shard_vertex(shard_layer) {
            Some(v) => range.contains(&v),
            None => true, // AddVertex: broadcast, every shard replays it.
        })
        .collect();
    for chunk in part.chunks(config.pump_chunk.max(1)) {
        worker.update_batches += 1;
        let update = Message::Update {
            batch_seq: worker.update_batches,
            deltas: chunk.to_vec(),
        };
        match exchange(config, worker, &update, "tail replay")? {
            Message::UpdateAck { .. } => {}
            other => {
                return Err(ClusterError::Protocol {
                    worker: worker.spec.index,
                    detail: format!("unexpected response during tail replay: {other:?}"),
                })
            }
        }
    }
    Ok(())
}

/// One request→response exchange with bounded retry: on an I/O failure
/// the connection is dropped, re-established (fresh handshake included),
/// and the request re-sent once. A second failure marks the worker
/// unhealthy and surfaces [`ClusterError::WorkerDown`].
///
/// A free function over one worker's state (not a `Coordinator` method)
/// so the round-2 fan-out can drive disjoint workers from scoped threads.
fn exchange(
    config: &ClusterConfig,
    worker: &mut Worker,
    msg: &Message,
    context: &'static str,
) -> Result<Message> {
    match try_exchange(config, worker, msg) {
        Ok(resp) => {
            worker.healthy = true;
            Ok(resp)
        }
        Err(_) => {
            // The worker may be restarting: reconnect and resend once.
            worker.conn = None;
            match try_exchange(config, worker, msg) {
                Ok(resp) => {
                    worker.healthy = true;
                    Ok(resp)
                }
                Err(source) => {
                    worker.conn = None;
                    worker.healthy = false;
                    Err(ClusterError::WorkerDown {
                        worker: worker.spec.index,
                        context,
                        source,
                    })
                }
            }
        }
    }
}

/// Sends `msg` on the worker's connection (establishing it first if
/// needed) and reads one response frame.
fn try_exchange(config: &ClusterConfig, worker: &mut Worker, msg: &Message) -> io::Result<Message> {
    ensure_connected(config, worker)?;
    let conn = worker.conn.as_mut().expect("just connected");
    send_with_faults(&config.faults, conn, msg)?;
    Message::read_from(conn)
}

/// Writes one request frame through the fault injector. With no plan
/// armed this is exactly [`Message::write_to`]; with one, the frame is
/// counted and may be delayed, corrupted, or dropped. A *dropped* frame
/// is swallowed here (nothing hits the socket), so the caller's read
/// times out at the I/O deadline and [`exchange`]'s reconnect-and-resend
/// retry fires — the counter has already advanced, so the resend goes
/// through clean. Handshake frames bypass this path on purpose: frame
/// indices stay stable across reconnects.
fn send_with_faults(
    faults: &FaultInjector,
    conn: &mut UnixStream,
    msg: &Message,
) -> io::Result<()> {
    use std::io::Write;
    if !faults.is_active() {
        return msg.write_to(conn);
    }
    let mut frame = msg.to_frame_bytes();
    match faults.outbound_frame(&mut frame) {
        FrameFate::Send => {
            conn.write_all(&frame)?;
            conn.flush()
        }
        FrameFate::Drop => Ok(()),
    }
}

/// Connects (with [`RetryPolicy::backoff`] sleeps up to
/// `connect_timeout`) and runs the versioned handshake. No-op when a
/// connection is already up.
fn ensure_connected(config: &ClusterConfig, worker: &mut Worker) -> io::Result<()> {
    if worker.conn.is_some() {
        return Ok(());
    }
    let retry = &config.retry;
    let deadline = Instant::now() + retry.connect_timeout;
    let mut attempt = 0u32;
    let mut stream = loop {
        match UnixStream::connect(&worker.spec.socket) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(retry.backoff(attempt));
                attempt += 1;
            }
        }
    };
    stream.set_read_timeout(Some(retry.io_timeout))?;
    stream.set_write_timeout(Some(retry.io_timeout))?;
    Message::Hello.write_to(&mut stream)?;
    match Message::read_from(&mut stream)? {
        Message::HelloAck { shard_lo, shard_hi } => {
            let spec = &worker.spec;
            if shard_lo != spec.shard_lo || shard_hi != spec.shard_hi {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "worker {} reports shard {shard_lo}..{shard_hi}, expected {}..{}",
                        spec.index, spec.shard_lo, spec.shard_hi
                    ),
                ));
            }
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("handshake got {other:?}"),
            ))
        }
    }
    worker.conn = Some(stream);
    Ok(())
}

/// Rebuilds the typed round-1 artifact from its wire image.
fn round1_from_wire(
    owner: VertexId,
    layer: Layer,
    wire: WireRound1,
) -> std::result::Result<BatchRound1, String> {
    let eps2 = PrivacyBudget::new(wire.eps2).map_err(|e| format!("bad eps2: {e}"))?;
    Ok(BatchRound1 {
        epsilon: wire.epsilon,
        flip_probability: wire.flip_probability,
        eps2,
        base_seed: wire.base_seed,
        noisy_target: NoisyNeighborsPacked::from_parts(
            owner,
            layer,
            wire.rr_epsilon,
            bigraph::bitset::PackedSet::from_words(wire.words, wire.universe as usize),
        ),
    })
}

impl Coordinator {
    /// Spawns `n_workers` shard workers for `graph`, sharded along
    /// `shard_layer` into contiguous even ranges, using `launch` to start
    /// each process (see [`worker_command`]). Sockets live under `dir`.
    /// Each worker is handshaked and bootstrapped with its shard's edges
    /// before this returns.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Spawn`] if any worker fails to start, connect, or
    /// bootstrap.
    pub fn spawn_with<F>(
        graph: &BipartiteGraph,
        shard_layer: Layer,
        n_workers: usize,
        dir: &Path,
        config: ClusterConfig,
        launch: F,
    ) -> Result<Self>
    where
        F: FnMut(&WorkerSpec) -> io::Result<Child> + Send + 'static,
    {
        let layer_size = match shard_layer {
            Layer::Upper => graph.n_upper(),
            Layer::Lower => graph.n_lower(),
        };
        let ranges = shard_ranges(layer_size, n_workers);
        Self::spawn_partitioned(graph, shard_layer, ranges, dir, config, launch)
    }

    /// [`Coordinator::spawn_with`] with an **explicit** partition instead
    /// of the even split: `ranges` must start at 0, be contiguous and
    /// ascending, and end at `u32::MAX`. Placement independence means any
    /// such partition serves byte-identical reports; this entry point
    /// exists so tests can prove that for arbitrary partitions.
    ///
    /// # Panics
    ///
    /// Panics if `ranges` is not a contiguous cover of `0..u32::MAX`.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::spawn_with`].
    pub fn spawn_partitioned<F>(
        graph: &BipartiteGraph,
        shard_layer: Layer,
        ranges: Vec<Range<u32>>,
        dir: &Path,
        config: ClusterConfig,
        launch: F,
    ) -> Result<Self>
    where
        F: FnMut(&WorkerSpec) -> io::Result<Child> + Send + 'static,
    {
        let mut coordinator = Self::spawn_core(
            shard_layer,
            ranges,
            dir,
            config,
            Box::new(launch),
            UpdateLog::new(),
        )?;
        let n_workers = coordinator.workers.len();
        // Handshake + bootstrap every worker with its shard's edge list.
        for index in 0..n_workers {
            let range = coordinator.ranges[index].clone();
            let edges: Vec<(u32, u32)> = graph
                .edges()
                .filter(|&(u, l)| {
                    let v = match shard_layer {
                        Layer::Upper => u,
                        Layer::Lower => l,
                    };
                    range.contains(&v)
                })
                .collect();
            let bootstrap = Message::Bootstrap {
                n_upper: graph.n_upper() as u64,
                n_lower: graph.n_lower() as u64,
                edges,
            };
            let resp = coordinator
                .request(index, &bootstrap, "bootstrap")
                .map_err(|e| match e {
                    ClusterError::WorkerDown { worker, source, .. } => {
                        ClusterError::Spawn { worker, source }
                    }
                    other => other,
                })?;
            match resp {
                Message::BootstrapAck => {}
                other => return Err(coordinator.unexpected(index, "bootstrap", &other)),
            }
        }
        Ok(coordinator)
    }

    /// Shared spawn tail: asserts the partition is a contiguous cover of
    /// `0..u32::MAX`, launches one worker per range, and assembles the
    /// coordinator. No bootstrap happens here — callers ship edge lists
    /// or a snapshot frame next.
    fn spawn_core(
        shard_layer: Layer,
        ranges: Vec<Range<u32>>,
        dir: &Path,
        config: ClusterConfig,
        mut launch: LaunchFn,
        log: UpdateLog,
    ) -> Result<Self> {
        assert_contiguous_cover(&ranges);
        let mut workers = Vec::with_capacity(ranges.len());
        for (index, range) in ranges.iter().enumerate() {
            let spec = WorkerSpec {
                index,
                socket: dir.join(format!("shard-worker-{index}.sock")),
                shard_lo: range.start,
                shard_hi: range.end,
            };
            // A stale socket from a previous run must not satisfy our
            // connect retry before the new worker binds.
            let _ = std::fs::remove_file(&spec.socket);
            let child = launch(&spec).map_err(|source| ClusterError::Spawn {
                worker: index,
                source,
            })?;
            workers.push(Worker {
                spec,
                child: Some(child),
                conn: None,
                healthy: true,
                update_batches: 0,
            });
        }
        let cuts = ranges[1..].iter().map(|r| r.start).collect();
        Ok(Self {
            config,
            shard_layer,
            ranges,
            cuts,
            workers,
            log,
            algo: BatchSingleSource::default(),
            launch,
            snapshot: None,
            dir: dir.to_path_buf(),
            generation: 0,
            base: None,
            rebalance: None,
        })
    }

    /// [`Coordinator::spawn_partitioned`] bootstrapping every worker from
    /// **binary snapshots** instead of an edge list: `snapshot` (an
    /// already-captured [`bigraph::snapshot`] image, typically the serving
    /// tier's quiet-point artifact) is restricted per shard and written as
    /// one `shard-<index>.snap` file per worker under `dir`. Each worker
    /// receives a [`BootstrapSnapshot`](Message::BootstrapSnapshot) frame
    /// naming its own file — it reads, validates, and adopts only its
    /// shard's bytes, with just paths crossing the sockets.
    ///
    /// Shard files persist in `dir` alongside a manifest of the
    /// parameters that shaped them; spawning again into the same
    /// directory from the same source **reuses** them — a cluster
    /// restart skips shard derivation and pays only worker adoption.
    /// Reuse is gated on an exact manifest match (source epoch and
    /// pinned sequence, graph shape, shard layer, ranges); the directory
    /// is trusted to be this cluster's own artifact store, and payload
    /// corruption is still caught by section checksums at adoption.
    ///
    /// Clusters spawned this way keep the shard files as their **recovery
    /// source** and retain drained deltas
    /// ([`UpdateLog::with_retention`]), which is what lets
    /// [`Coordinator::supervise`] rebuild a dead worker (respawn →
    /// snapshot bootstrap → tail replay) instead of merely reporting it.
    ///
    /// # Panics
    ///
    /// Panics if `ranges` is not a contiguous cover of `0..u32::MAX`, or
    /// if `snapshot` is pinned at a nonzero log sequence — its state must
    /// precede this coordinator's (fresh) update stream.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Spawn`] if writing a shard snapshot or starting,
    /// connecting, or bootstrapping any worker fails.
    pub fn spawn_partitioned_from_snapshot<F>(
        snapshot: &GraphSnapshot,
        shard_layer: Layer,
        ranges: Vec<Range<u32>>,
        dir: &Path,
        config: ClusterConfig,
        launch: F,
    ) -> Result<Self>
    where
        F: FnMut(&WorkerSpec) -> io::Result<Child> + Send + 'static,
    {
        assert_eq!(
            snapshot.log_seq(),
            0,
            "a cluster bootstrap snapshot must be pinned at sequence 0 — \
             its state precedes this coordinator's update stream"
        );
        let epoch = snapshot.epoch();
        // Launch the workers first so their process startup overlaps the
        // shard-file writes below.
        let mut coordinator = Self::spawn_core(
            shard_layer,
            ranges,
            dir,
            config,
            Box::new(launch),
            UpdateLog::with_retention(),
        )?;
        let paths: Vec<PathBuf> = (0..coordinator.ranges.len())
            .map(|index| dir.join(format!("shard-{index}.snap")))
            .collect();
        let manifest_path = dir.join("shards.manifest");
        let manifest = shard_manifest(snapshot, shard_layer, &coordinator.ranges);
        // A restart into the same directory reuses the shard files it
        // finds there when the manifest proves they were derived from
        // the same source with the same partition (see [`shard_manifest`]).
        let reusable = std::fs::read(&manifest_path).is_ok_and(|found| found == manifest)
            && paths.iter().all(|p| p.exists());
        if !reusable {
            // Invalidate first so a crash mid-rewrite never leaves a
            // manifest vouching for half-rewritten files.
            let _ = std::fs::remove_file(&manifest_path);
            for (index, (range, path)) in coordinator.ranges.clone().iter().zip(&paths).enumerate()
            {
                // Plain writes, not `write_to`'s durable tmp + rename +
                // fsync dance: shard files are scratch bootstrap
                // artifacts re-derived from the source snapshot on
                // demand, and a torn file is caught by section checksums
                // on read. Durability is the *source* snapshot's concern.
                let bytes = snapshot
                    .restrict_to_shard(shard_layer, range.start, range.end)
                    .to_bytes();
                std::fs::write(path, bytes).map_err(|source| ClusterError::Spawn {
                    worker: index,
                    source,
                })?;
            }
            std::fs::write(&manifest_path, &manifest)
                .map_err(|source| ClusterError::Spawn { worker: 0, source })?;
        }
        // A previous run with a different worker count (or an aborted
        // rebalance generation) may have left shard files the manifest no
        // longer names; sweep them so the directory only ever holds
        // artifacts something can still bootstrap from.
        gc_stale_shard_files(dir, &paths);
        coordinator.snapshot = Some(SnapshotSource {
            paths,
            seq: 0,
            epoch,
        });
        coordinator.base = Some(BaseGraph {
            graph: snapshot.graph().clone(),
            seq: 0,
        });
        for index in 0..coordinator.workers.len() {
            coordinator
                .bootstrap_from_snapshot(index)
                .map_err(|e| match e {
                    ClusterError::WorkerDown { worker, source, .. } => {
                        ClusterError::Spawn { worker, source }
                    }
                    other => other,
                })?;
        }
        Ok(coordinator)
    }

    /// [`Coordinator::spawn_program`]'s snapshot twin: an even split into
    /// `n_workers` ranges, per-shard bootstrap snapshots written under
    /// `dir`, and `program` run as each worker via [`worker_command`].
    ///
    /// # Errors
    ///
    /// See [`Coordinator::spawn_partitioned_from_snapshot`].
    pub fn spawn_program_from_snapshot(
        snapshot: &GraphSnapshot,
        shard_layer: Layer,
        n_workers: usize,
        dir: &Path,
        config: ClusterConfig,
        program: &Path,
    ) -> Result<Self> {
        let layer_size = match shard_layer {
            Layer::Upper => snapshot.graph().n_upper(),
            Layer::Lower => snapshot.graph().n_lower(),
        };
        let ranges = shard_ranges(layer_size, n_workers);
        let program = program.to_path_buf();
        Self::spawn_partitioned_from_snapshot(
            snapshot,
            shard_layer,
            ranges,
            dir,
            config,
            move |spec| worker_command(&program, spec).spawn(),
        )
    }

    /// Ships the snapshot-bootstrap frame to worker `index` (naming its
    /// own shard file) and waits for its ack.
    fn bootstrap_from_snapshot(&mut self, index: usize) -> Result<()> {
        let src = self
            .snapshot
            .as_ref()
            .expect("callers check for a snapshot source");
        let spec = &self.workers[index].spec;
        let msg = Message::BootstrapSnapshot {
            epoch: src.epoch,
            shard_layer: self.shard_layer,
            shard_lo: spec.shard_lo,
            shard_hi: spec.shard_hi,
            path: src.paths[index].to_string_lossy().into_owned(),
        };
        match self.request(index, &msg, "snapshot bootstrap")? {
            Message::BootstrapAck => Ok(()),
            other => Err(self.unexpected(index, "snapshot bootstrap", &other)),
        }
    }

    /// [`Coordinator::spawn_with`] running `program` as each worker via
    /// [`worker_command`]. This is the standard entry point: tests pass
    /// `env!("CARGO_BIN_EXE_shard-worker")`, self-exec harnesses pass
    /// `std::env::current_exe()?`.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::spawn_with`].
    pub fn spawn_program(
        graph: &BipartiteGraph,
        shard_layer: Layer,
        n_workers: usize,
        dir: &Path,
        config: ClusterConfig,
        program: &Path,
    ) -> Result<Self> {
        let program = program.to_path_buf();
        Self::spawn_with(graph, shard_layer, n_workers, dir, config, move |spec| {
            worker_command(&program, spec).spawn()
        })
    }

    /// Number of shard workers.
    #[must_use]
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The contiguous shard ranges, in worker order.
    #[must_use]
    pub fn ranges(&self) -> &[Range<u32>] {
        &self.ranges
    }

    /// The worker index owning shard-layer vertex `v`: a binary search
    /// over the cached interior cut points of the partition.
    #[must_use]
    pub fn owner_of(&self, v: VertexId) -> usize {
        owner_index(&self.cuts, v)
    }

    // ------------------------------------------------------- replication

    /// Appends one delta to the coordinator's replication log.
    pub fn append(&self, delta: GraphDelta) -> u64 {
        self.log.append(delta)
    }

    /// Appends many deltas to the replication log.
    pub fn extend<I: IntoIterator<Item = GraphDelta>>(&self, deltas: I) -> u64 {
        self.log.extend(deltas)
    }

    /// Drains one chunk of the replication log, partitions it by shard
    /// range ([`UpdateLog::drain_partitioned`]), and ships each worker its
    /// slice. Returns the number of deltas replicated (0 = log empty).
    ///
    /// # Errors
    ///
    /// [`ClusterError::PartialResult`] naming the workers whose slice
    /// could not be delivered.
    pub fn pump(&mut self) -> Result<usize> {
        let Some(parts) =
            self.log
                .drain_partitioned(self.config.pump_chunk, self.shard_layer, &self.ranges)
        else {
            return Ok(0);
        };
        let total: usize = parts.iter().map(bigraph::UpdateBatch::len).sum();
        let mut missing = Vec::new();
        for (index, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.workers[index].update_batches += 1;
            let update = Message::Update {
                batch_seq: self.workers[index].update_batches,
                deltas: part.deltas().to_vec(),
            };
            match self.request(index, &update, "update replication") {
                Ok(Message::UpdateAck { .. }) => {}
                Ok(other) => return Err(self.unexpected(index, "update replication", &other)),
                Err(_) => missing.push(index),
            }
        }
        if missing.is_empty() {
            Ok(total)
        } else {
            Err(ClusterError::PartialResult {
                missing,
                context: "update replication",
            })
        }
    }

    /// Replicates the whole pending log and blocks until every worker has
    /// published everything it ingested (a cluster-wide barrier; for
    /// tests and orderly teardown, like [`ServingEngine::flush`]).
    ///
    /// [`ServingEngine::flush`]: cne::serving::ServingEngine::flush
    ///
    /// # Errors
    ///
    /// [`ClusterError::PartialResult`] naming unreachable workers.
    pub fn flush(&mut self) -> Result<()> {
        while self.pump()? > 0 {}
        let mut missing = Vec::new();
        for index in 0..self.workers.len() {
            match self.request(index, &Message::Flush, "flush") {
                Ok(Message::FlushAck { .. }) => {}
                Ok(other) => return Err(self.unexpected(index, "flush", &other)),
                Err(_) => missing.push(index),
            }
        }
        if missing.is_empty() {
            Ok(())
        } else {
            Err(ClusterError::PartialResult {
                missing,
                context: "flush",
            })
        }
    }

    // ------------------------------------------------------------ query

    /// Runs a batch query across the cluster and concatenates the
    /// per-worker reports into one [`BatchReport`] **byte-identical** to
    /// `EstimationEngine::estimate_batch(layer, target, candidates,
    /// epsilon, &mut StdRng::seed_from_u64(seed))` on an unsharded engine
    /// holding the same graph state.
    ///
    /// # Errors
    ///
    /// [`ClusterError::PartialResult`] when a shard's slice is missing
    /// (dead worker), [`ClusterError::Remote`] for worker-reported query
    /// errors (invalid target, duplicate candidates, …), and
    /// [`ClusterError::Query`] for coordinator-side assembly failures.
    pub fn estimate_batch(
        &mut self,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        seed: u64,
    ) -> Result<BatchReport> {
        if layer != self.shard_layer {
            return Err(ClusterError::Query(CneError::InvalidParameter {
                name: "layer",
                reason: format!(
                    "cluster is sharded along {:?}; queries must target that layer",
                    self.shard_layer
                ),
            }));
        }
        // Round 1 at the target's owner (validates the full batch).
        let owner = self.owner_of(target);
        let round1_req = Message::Round1Req {
            layer,
            target,
            epsilon,
            eps1_fraction: self.algo.epsilon1_fraction,
            seed,
            candidates: candidates.to_vec(),
        };
        let wire_round1 = match self.request(owner, &round1_req, "round 1") {
            Ok(Message::Round1Resp(r)) => r,
            Ok(Message::Err { code, message }) => {
                return Err(ClusterError::Remote {
                    worker: owner,
                    code,
                    message,
                })
            }
            Ok(other) => return Err(self.unexpected(owner, "round 1", &other)),
            Err(_) => {
                return Err(ClusterError::PartialResult {
                    missing: vec![owner],
                    context: "round 1",
                })
            }
        };

        // Group candidates by owning worker, preserving relative order.
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); self.workers.len()];
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.workers.len()];
        for (at, &w) in candidates.iter().enumerate() {
            let idx = self.owner_of(w);
            groups[idx].push(w);
            positions[idx].push(at);
        }

        // Round 2 at each owner, fanned out concurrently when the host
        // can overlap the per-shard estimate computations — one scoped
        // thread per involved worker, each owning that worker's connection
        // for the exchange. That overlap is where query throughput scales
        // across the process boundary; on a single-core host the threads
        // would only add spawn + context-switch cost, so the fan-out runs
        // serially there. Estimates land at their original index either
        // way.
        let config = &self.config;
        let round2_req = |index: usize| Message::Round2Req {
            layer,
            owner: target,
            round1: wire_round1.clone(),
            candidates: groups[index].clone(),
        };
        let involved = groups.iter().filter(|g| !g.is_empty()).count();
        let overlap =
            involved > 1 && std::thread::available_parallelism().is_ok_and(|p| p.get() > 1);
        let responses: Vec<(usize, Result<Message>)> = if overlap {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .enumerate()
                    .filter(|(index, _)| !groups[*index].is_empty())
                    .map(|(index, worker)| {
                        let req = round2_req(index);
                        let handle = s.spawn(move || exchange(config, worker, &req, "round 2"));
                        (index, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(index, h)| (index, h.join().expect("round-2 fan-out thread")))
                    .collect()
            })
        } else {
            (0..self.workers.len())
                .filter(|&index| !groups[index].is_empty())
                .map(|index| {
                    let req = round2_req(index);
                    (
                        index,
                        exchange(config, &mut self.workers[index], &req, "round 2"),
                    )
                })
                .collect()
        };
        let mut slots: Vec<Option<BatchEstimate>> = vec![None; candidates.len()];
        let mut missing = Vec::new();
        for (index, response) in responses {
            match response {
                Ok(Message::Round2Resp { estimates }) => {
                    if estimates.len() != positions[index].len() {
                        return Err(ClusterError::Protocol {
                            worker: index,
                            detail: format!(
                                "round 2 returned {} estimates for {} candidates",
                                estimates.len(),
                                positions[index].len()
                            ),
                        });
                    }
                    for (&at, &(candidate, bits)) in positions[index].iter().zip(&estimates) {
                        slots[at] = Some(BatchEstimate {
                            candidate,
                            estimate: f64::from_bits(bits),
                        });
                    }
                }
                Ok(Message::Err { code, message }) => {
                    return Err(ClusterError::Remote {
                        worker: index,
                        code,
                        message,
                    })
                }
                Ok(other) => return Err(self.unexpected(index, "round 2", &other)),
                Err(_) => missing.push(index),
            }
        }
        if !missing.is_empty() {
            return Err(ClusterError::PartialResult {
                missing,
                context: "round 2",
            });
        }
        let estimates: Vec<BatchEstimate> = slots
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .expect("every candidate slot filled by its owner");

        // Replay the accounting locally and emit the concatenated report.
        let round1 = round1_from_wire(target, layer, wire_round1).map_err(|detail| {
            ClusterError::Protocol {
                worker: owner,
                detail,
            }
        })?;
        self.algo
            .assemble_report(layer, target, &round1, estimates)
            .map_err(ClusterError::Query)
    }

    // ------------------------------------------------------------ stats

    /// Collects every worker's serving counters and rolls them up. A
    /// worker that cannot be reached is reported unhealthy with `stats:
    /// None` rather than failing the roll-up.
    pub fn stats(&mut self) -> ClusterStats {
        let mut workers = Vec::with_capacity(self.workers.len());
        for index in 0..self.workers.len() {
            let stats = match self.request(index, &Message::StatsReq, "stats") {
                Ok(Message::StatsResp(s)) => Some(s),
                _ => None,
            };
            workers.push(WorkerStatus {
                index,
                shard: self.workers[index].spec.shard_lo..self.workers[index].spec.shard_hi,
                healthy: self.workers[index].healthy,
                stats,
            });
        }
        let answering: Vec<&WireStats> = workers.iter().filter_map(|w| w.stats.as_ref()).collect();
        ClusterStats {
            healthy_workers: answering.len(),
            appended: answering.iter().map(|s| s.appended).sum(),
            published: answering.iter().map(|s| s.published).sum(),
            rejected: answering.iter().map(|s| s.rejected).sum(),
            max_ingest_lag: answering.iter().map(|s| s.ingest_lag).max().unwrap_or(0),
            max_lag_p50: answering.iter().map(|s| s.lag_p50).max().unwrap_or(0),
            max_lag_p95: answering.iter().map(|s| s.lag_p95).max().unwrap_or(0),
            min_epoch: answering.iter().map(|s| s.epoch).min().unwrap_or(0),
            max_epoch: answering.iter().map(|s| s.epoch).max().unwrap_or(0),
            workers,
        }
    }

    /// Kills worker `worker`'s process outright (no shutdown handshake).
    /// For fault-injection tests: the next fan-out touching its shard
    /// reports a typed partial-result error.
    ///
    /// # Errors
    ///
    /// Propagates the kill/wait failure.
    pub fn kill_worker(&mut self, worker: usize) -> io::Result<()> {
        let w = &mut self.workers[worker];
        w.conn = None;
        w.healthy = false;
        if let Some(child) = w.child.as_mut() {
            child.kill()?;
            child.wait()?;
            w.child = None;
        }
        Ok(())
    }

    // ----------------------------------------------------- supervision

    /// One supervision pass: finds workers that are dead (process
    /// exited, or marked unhealthy by an exhausted retry) and rebuilds
    /// each one — respawn via the retained launch closure, re-bootstrap
    /// from the cluster's snapshot, replay the drained-delta tail past
    /// the snapshot's pinned sequence, and flush so the rebuilt worker
    /// has published everything before it is marked healthy again.
    /// Returns the indices that were rebuilt (empty = cluster healthy).
    /// Call it whenever a fan-out reports
    /// [`ClusterError::PartialResult`], or periodically from a serving
    /// loop.
    ///
    /// Deltas still *pending* in the coordinator log are not replayed
    /// here — they reach the rebuilt worker through the normal
    /// [`pump`](Self::pump) like every other worker. The drained tail is
    /// replayed exactly once because the worker restarts from snapshot
    /// state (`AddVertex` is not idempotent, so exactly-once matters).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSnapshotSource`] when a worker is dead but the
    /// cluster was spawned with edge-list bootstrap (nothing to rebuild
    /// from); [`ClusterError::Spawn`] / [`ClusterError::WorkerDown`]
    /// when the rebuild itself fails — the worker stays unhealthy and a
    /// later pass retries.
    pub fn supervise(&mut self) -> Result<Vec<usize>> {
        let mut rebuilt = Vec::new();
        for index in 0..self.workers.len() {
            if self.worker_is_live(index) {
                continue;
            }
            if self.snapshot.is_none() {
                return Err(ClusterError::NoSnapshotSource { worker: index });
            }
            self.respawn(index)?;
            self.bootstrap_from_snapshot(index)?;
            self.replay_tail(index)?;
            match self.request(index, &Message::Flush, "supervision flush")? {
                Message::FlushAck { .. } => {}
                other => return Err(self.unexpected(index, "supervision flush", &other)),
            }
            self.workers[index].healthy = true;
            rebuilt.push(index);
        }
        Ok(rebuilt)
    }

    /// Whether worker `index` looks alive: marked healthy and its
    /// process (if owned) has not exited. The `try_wait` probe catches
    /// crashes the request path has not tripped over yet.
    fn worker_is_live(&mut self, index: usize) -> bool {
        let w = &mut self.workers[index];
        if !w.healthy {
            return false;
        }
        match w.child.as_mut() {
            Some(child) => matches!(child.try_wait(), Ok(None)),
            None => false,
        }
    }

    /// Kills whatever is left of worker `index`'s process and launches a
    /// fresh one on the same socket with the retained closure.
    fn respawn(&mut self, index: usize) -> Result<()> {
        let w = &mut self.workers[index];
        w.conn = None;
        w.healthy = false;
        if let Some(mut child) = w.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&w.spec.socket);
        let child = (self.launch)(&w.spec).map_err(|source| ClusterError::Spawn {
            worker: index,
            source,
        })?;
        w.child = Some(child);
        Ok(())
    }

    /// Replays the drained-delta tail past the snapshot's pinned
    /// sequence to a freshly re-bootstrapped worker (see
    /// [`replay_drained_tail`]).
    fn replay_tail(&mut self, index: usize) -> Result<()> {
        let seq = self
            .snapshot
            .as_ref()
            .expect("callers check for a snapshot source")
            .seq;
        let range = self.ranges[index].clone();
        replay_drained_tail(
            &self.config,
            &self.log,
            self.shard_layer,
            &mut self.workers[index],
            &range,
            seq,
        )
    }

    // ----------------------------------------------------- rebalancing

    /// Runs a full live rebalance to `new_ranges`: every step of the
    /// state machine in order (see [`RebalanceStep`]), with queries and
    /// update pumps still valid between any two steps. On success the
    /// cluster serves the new partition with byte-identical reports; on
    /// failure ([`ClusterError::Rebalance`] with `rolled_back: true`)
    /// the old partition is still serving and a retry may succeed.
    ///
    /// This is [`begin_rebalance`](Self::begin_rebalance) +
    /// [`rebalance_step`](Self::rebalance_step)-until-complete; drive
    /// the steps yourself to interleave traffic.
    ///
    /// # Panics
    ///
    /// Panics if `new_ranges` is not a contiguous cover of `0..u32::MAX`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rebalance`] naming the failed step.
    pub fn rebalance(&mut self, new_ranges: Vec<Range<u32>>) -> Result<()> {
        self.begin_rebalance(new_ranges)?;
        loop {
            if let RebalanceStatus::Complete = self.rebalance_step()? {
                return Ok(());
            }
        }
    }

    /// [`rebalance`](Self::rebalance) to an even split into `n_workers`
    /// ranges over the base graph's shard layer — the split/merge entry
    /// point (2→4, 4→2, …).
    ///
    /// # Errors
    ///
    /// See [`rebalance`](Self::rebalance).
    pub fn rebalance_to(&mut self, n_workers: usize) -> Result<()> {
        let Some(base) = self.base.as_ref() else {
            return Err(rebalance_misuse(
                "cluster was edge-list bootstrapped; only snapshot-spawned \
                 clusters hold the base graph rebalancing cuts shards from"
                    .to_string(),
            ));
        };
        let layer_size = match self.shard_layer {
            Layer::Upper => base.graph.n_upper(),
            Layer::Lower => base.graph.n_lower(),
        };
        self.rebalance(shard_ranges(layer_size, n_workers))
    }

    /// Arms a rebalance to `new_ranges` without running any step: bumps
    /// the topology generation and stages an empty rebalance state at
    /// the `quiesce` step. Drive it with
    /// [`rebalance_step`](Self::rebalance_step).
    ///
    /// # Panics
    ///
    /// Panics if `new_ranges` is not a contiguous cover of `0..u32::MAX`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rebalance`] at step `"begin"` when a rebalance is
    /// already in flight or the cluster was edge-list bootstrapped (no
    /// base graph to cut shard files from). Both leave the cluster
    /// serving exactly as before.
    pub fn begin_rebalance(&mut self, new_ranges: Vec<Range<u32>>) -> Result<()> {
        if let Some(st) = &self.rebalance {
            return Err(rebalance_misuse(format!(
                "a rebalance is already in flight (next step: {})",
                st.step.name()
            )));
        }
        if self.base.is_none() || self.snapshot.is_none() {
            return Err(rebalance_misuse(
                "cluster was edge-list bootstrapped; only snapshot-spawned \
                 clusters hold the base graph rebalancing cuts shards from"
                    .to_string(),
            ));
        }
        assert_contiguous_cover(&new_ranges);
        self.generation += 1;
        self.rebalance = Some(RebalanceState {
            step: RebalanceStep::Quiesce,
            new_ranges,
            generation: self.generation,
            snapshot: None,
            pinned_seq: 0,
            epoch: 0,
            manifest: Vec::new(),
            paths: Vec::new(),
            new_workers: Vec::new(),
            retired: Vec::new(),
        });
        Ok(())
    }

    /// Runs the next step of the in-flight rebalance. Between calls the
    /// cluster is fully serviceable — queries, pumps, and stats all run
    /// against whichever topology is current (the old one until
    /// [`RebalanceStep::CutOver`] commits, the new one after).
    ///
    /// Any armed [`FaultPlan`](crate::FaultPlan) `kill=` directives
    /// scheduled for this step fire at its entry, before the step's own
    /// work — "the worker died just as the coordinator got here".
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rebalance`] naming the failed step, always with
    /// `rolled_back: true`: every fallible action precedes the commit
    /// point, so a failure tears down the staged generation and the old
    /// topology keeps serving with zero divergence. (Post-commit the
    /// remaining work is infallible-or-best-effort; a new worker dying
    /// *after* commit surfaces later as an ordinary
    /// [`ClusterError::PartialResult`] and is rebuilt by
    /// [`supervise`](Self::supervise).)
    pub fn rebalance_step(&mut self) -> Result<RebalanceStatus> {
        let Some(mut st) = self.rebalance.take() else {
            return Err(rebalance_misuse(
                "no rebalance in flight; call begin_rebalance first".to_string(),
            ));
        };
        let step = st.step;
        // Scheduled crashes land at step entry: old workers through the
        // normal kill path, staged new workers directly.
        let faults = Arc::clone(&self.config.faults);
        for target in faults.kills_due(step.name()) {
            match target {
                KillTarget::Old(i) => {
                    if i < self.workers.len() {
                        let _ = self.kill_worker(i);
                    }
                }
                KillTarget::New(i) => {
                    if let Some(w) = st.new_workers.get_mut(i) {
                        w.conn = None;
                        w.healthy = false;
                        if let Some(mut child) = w.child.take() {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                    }
                }
            }
        }
        let result = match step {
            RebalanceStep::Quiesce => self.rb_quiesce(),
            RebalanceStep::Capture => self.rb_capture(&mut st),
            RebalanceStep::Cut => self.rb_cut(&mut st),
            RebalanceStep::Spawn => self.rb_spawn(&mut st),
            RebalanceStep::Bootstrap => self.rb_bootstrap(&mut st),
            RebalanceStep::CutOver => self.rb_cutover(&mut st),
            RebalanceStep::Retire => self.rb_retire(&mut st),
        };
        match result {
            Ok(()) => match step.next() {
                Some(next) => {
                    st.step = next;
                    self.rebalance = Some(st);
                    Ok(RebalanceStatus::InProgress(next))
                }
                None => Ok(RebalanceStatus::Complete),
            },
            Err(source) => {
                self.rollback_rebalance(st);
                Err(ClusterError::Rebalance {
                    step: step.name(),
                    rolled_back: true,
                    source: Box::new(source),
                })
            }
        }
    }

    /// The next step the in-flight rebalance will run, or `None` when
    /// none is in flight.
    #[must_use]
    pub fn rebalance_in_flight(&self) -> Option<RebalanceStep> {
        self.rebalance.as_ref().map(|st| st.step)
    }

    /// The current topology generation (0 until the first
    /// [`begin_rebalance`](Self::begin_rebalance)).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// [`RebalanceStep::Quiesce`]: drain the log and barrier every
    /// worker, so worker state == base state + drained tail.
    fn rb_quiesce(&mut self) -> Result<()> {
        self.flush()
    }

    /// [`RebalanceStep::Capture`]: fold the drained tail into the base
    /// graph and pin the quiet-point snapshot. (An advanced `base.seq`
    /// survives rollback harmlessly: the serving [`SnapshotSource`] is
    /// untouched, and the fold is idempotent because `replay_from` is
    /// strictly-after.)
    fn rb_capture(&mut self, st: &mut RebalanceState) -> Result<()> {
        let base = self.base.as_mut().expect("begin_rebalance checked");
        let tail = self
            .log
            .replay_from(base.seq)
            .expect("snapshot-spawned clusters retain drained deltas");
        if !tail.is_empty() {
            base.graph
                .apply_update_batch(&tail)
                .map_err(|e| ClusterError::Query(CneError::Graph(e)))?;
        }
        // Quiesce drained everything, so the drained watermark is the
        // quiet point: all of it is folded in, none of it is in flight.
        base.seq = self.log.drained();
        st.pinned_seq = base.seq;
        st.snapshot = Some(GraphSnapshot::capture(&base.graph, st.pinned_seq));
        st.epoch = st.snapshot.as_ref().expect("just captured").epoch();
        Ok(())
    }

    /// [`RebalanceStep::Cut`]: write one generation-named shard file per
    /// new range and precompute the manifest bytes. The pinned snapshot
    /// is dropped afterwards — the files are now the staged state.
    fn rb_cut(&mut self, st: &mut RebalanceState) -> Result<()> {
        let snapshot = st.snapshot.as_ref().expect("capture ran");
        st.manifest = shard_manifest(snapshot, self.shard_layer, &st.new_ranges);
        for (index, range) in st.new_ranges.iter().enumerate() {
            let path = self
                .dir
                .join(format!("shard-g{}-{index}.snap", st.generation));
            // Plain writes for the same reason the spawn path uses them:
            // shard files are scratch artifacts, re-derived on demand,
            // and a torn file is caught by section checksums at adoption.
            let mut bytes = snapshot
                .restrict_to_shard(self.shard_layer, range.start, range.end)
                .to_bytes();
            if let Some(keep) = self.config.faults.torn_write(bytes.len()) {
                bytes.truncate(keep);
            }
            std::fs::write(&path, &bytes).map_err(|source| ClusterError::Spawn {
                worker: index,
                source,
            })?;
            st.paths.push(path);
        }
        st.snapshot = None;
        Ok(())
    }

    /// [`RebalanceStep::Spawn`]: launch the new generation's workers on
    /// generation-named sockets (the old generation still owns its own).
    fn rb_spawn(&mut self, st: &mut RebalanceState) -> Result<()> {
        for (index, range) in st.new_ranges.iter().enumerate() {
            let spec = WorkerSpec {
                index,
                socket: self
                    .dir
                    .join(format!("shard-worker-g{}-{index}.sock", st.generation)),
                shard_lo: range.start,
                shard_hi: range.end,
            };
            let _ = std::fs::remove_file(&spec.socket);
            let child = (self.launch)(&spec).map_err(|source| ClusterError::Spawn {
                worker: index,
                source,
            })?;
            st.new_workers.push(Worker {
                spec,
                child: Some(child),
                conn: None,
                healthy: true,
                update_batches: 0,
            });
        }
        Ok(())
    }

    /// [`RebalanceStep::Bootstrap`]: handshake each new worker and ship
    /// its snapshot-bootstrap frame. A torn shard file fails here — the
    /// worker's section checksums reject it and the error rolls the
    /// rebalance back.
    fn rb_bootstrap(&mut self, st: &mut RebalanceState) -> Result<()> {
        for index in 0..st.new_workers.len() {
            let spec = &st.new_workers[index].spec;
            let msg = Message::BootstrapSnapshot {
                epoch: st.epoch,
                shard_layer: self.shard_layer,
                shard_lo: spec.shard_lo,
                shard_hi: spec.shard_hi,
                path: st.paths[index].to_string_lossy().into_owned(),
            };
            match exchange(
                &self.config,
                &mut st.new_workers[index],
                &msg,
                "rebalance bootstrap",
            )? {
                Message::BootstrapAck => {}
                Message::Err { code, message } => {
                    return Err(ClusterError::Remote {
                        worker: index,
                        code,
                        message,
                    })
                }
                other => {
                    return Err(ClusterError::Protocol {
                        worker: index,
                        detail: format!(
                            "unexpected response during rebalance bootstrap: {other:?}"
                        ),
                    })
                }
            }
        }
        Ok(())
    }

    /// [`RebalanceStep::CutOver`]: catch the new workers up past the
    /// pinned sequence and barrier them — then **commit**. Everything
    /// before the marked line can fail (and rolls back); everything
    /// after it is plain state swapping.
    fn rb_cutover(&mut self, st: &mut RebalanceState) -> Result<()> {
        for (index, range) in st.new_ranges.clone().iter().enumerate() {
            replay_drained_tail(
                &self.config,
                &self.log,
                self.shard_layer,
                &mut st.new_workers[index],
                range,
                st.pinned_seq,
            )?;
            match exchange(
                &self.config,
                &mut st.new_workers[index],
                &Message::Flush,
                "rebalance flush",
            )? {
                Message::FlushAck { .. } => {}
                other => {
                    return Err(ClusterError::Protocol {
                        worker: index,
                        detail: format!("unexpected response during rebalance flush: {other:?}"),
                    })
                }
            }
        }
        // ---- commit point: nothing below returns Err. ----
        // Invalidate the manifest first (crash-safe ordering: a manifest
        // must never vouch for files that don't match it), swap the
        // topology, then write the manifest describing the new files.
        let manifest_path = self.dir.join("shards.manifest");
        let _ = std::fs::remove_file(&manifest_path);
        st.retired = std::mem::replace(&mut self.workers, std::mem::take(&mut st.new_workers));
        self.ranges = st.new_ranges.clone();
        self.cuts = self.ranges[1..].iter().map(|r| r.start).collect();
        // `paths` is *moved* into the snapshot source (not copied) so a
        // later rollback — teardown mid-Retire — can never mistake the
        // serving files for staged ones and delete them.
        self.snapshot = Some(SnapshotSource {
            paths: std::mem::take(&mut st.paths),
            seq: st.pinned_seq,
            epoch: st.epoch,
        });
        let _ = std::fs::write(&manifest_path, &st.manifest);
        // The new snapshot source re-pins recovery at the quiet point;
        // history before it can never be replayed again.
        self.log.truncate_history_through(st.pinned_seq);
        Ok(())
    }

    /// [`RebalanceStep::Retire`]: shut down the old generation and sweep
    /// shard files the manifest no longer names. Purely janitorial; the
    /// new topology has been serving since commit.
    fn rb_retire(&mut self, st: &mut RebalanceState) -> Result<()> {
        for worker in &mut st.retired {
            retire_worker(&self.config, worker);
        }
        let keep = self
            .snapshot
            .as_ref()
            .map(|s| s.paths.clone())
            .unwrap_or_default();
        gc_stale_shard_files(&self.dir, &keep);
        Ok(())
    }

    /// Tears down whatever a failed (or abandoned) rebalance staged: the
    /// new generation's processes and sockets, plus any shard files
    /// still listed in `state.paths` — cleared at commit, so everything
    /// listed is provably not the serving snapshot source. The serving
    /// topology is untouched.
    fn rollback_rebalance(&mut self, mut state: RebalanceState) {
        for worker in state.new_workers.iter_mut().chain(state.retired.iter_mut()) {
            worker.conn = None;
            if let Some(mut child) = worker.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            let _ = std::fs::remove_file(&worker.spec.socket);
        }
        for path in &state.paths {
            let _ = std::fs::remove_file(path);
        }
    }

    // ------------------------------------------------------- transport

    /// One request→response exchange with the worker at `index` (see
    /// [`exchange`]).
    fn request(&mut self, index: usize, msg: &Message, context: &'static str) -> Result<Message> {
        exchange(&self.config, &mut self.workers[index], msg, context)
    }

    /// A [`ClusterError::Protocol`] for a response of the wrong kind
    /// (folding worker-reported errors into [`ClusterError::Remote`]).
    fn unexpected(&self, index: usize, context: &str, got: &Message) -> ClusterError {
        if let Message::Err { code, message } = got {
            return ClusterError::Remote {
                worker: index,
                code: *code,
                message: message.clone(),
            };
        }
        ClusterError::Protocol {
            worker: index,
            detail: format!("unexpected response during {context}: {got:?}"),
        }
    }

    /// Orderly teardown: roll back any in-flight rebalance (its staged
    /// workers and files must not outlive the coordinator), then ask
    /// every worker to shut down and reap (or kill) the processes.
    /// Called from `Drop`; safe to call twice.
    fn teardown(&mut self) {
        if let Some(state) = self.rebalance.take() {
            self.rollback_rebalance(state);
        }
        for index in 0..self.workers.len() {
            if self.workers[index].child.is_none() {
                // Already reaped (or never owned): just clear the socket.
                let _ = std::fs::remove_file(&self.workers[index].spec.socket);
                continue;
            }
            retire_worker(&self.config, &mut self.workers[index]);
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.teardown();
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("shard_layer", &self.shard_layer)
            .field("ranges", &self.ranges)
            .field("pending_deltas", &self.log.pending())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_are_contiguous_and_open_ended() {
        let r = shard_ranges(10, 4);
        assert_eq!(r, vec![0..2, 2..5, 5..7, 7..u32::MAX]);
        for pair in r.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(shard_ranges(10, 1), vec![0..u32::MAX]);
        // More workers than vertices: early ranges are empty but valid.
        let tiny = shard_ranges(2, 4);
        assert_eq!(tiny.last().unwrap().end, u32::MAX);
        assert_eq!(tiny.iter().filter(|r| r.is_empty()).count(), 2);
    }

    #[test]
    fn owner_lookup_matches_linear_scan() {
        let ranges = shard_ranges(1000, 7);
        let cuts: Vec<u32> = ranges[1..].iter().map(|r| r.start).collect();
        for v in (0..1100u32).chain([u32::MAX / 2, u32::MAX - 1]) {
            let linear = ranges
                .iter()
                .position(|r| r.contains(&v))
                .expect("ranges cover the id space");
            assert_eq!(owner_index(&cuts, v), linear, "v = {v}");
        }
        // A single open-ended range has no interior cuts: everything is 0.
        assert_eq!(owner_index(&[], 12345), 0);
    }
}

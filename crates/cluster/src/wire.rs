//! The hand-rolled wire protocol between coordinator and shard workers.
//!
//! Everything is **fixed-layout little-endian** — the vendored serde stub
//! has no binary format, and the message set is small enough that an
//! explicit layout doubles as the protocol spec. One frame per message:
//!
//! ```text
//! +------+----------------+------------------+---------------------+
//! | kind | payload length | payload checksum | payload             |
//! | u8   | u32 LE         | u32 LE (FNV-1a)  | `length` bytes      |
//! +------+----------------+------------------+---------------------+
//! ```
//!
//! The checksum (FNV-1a over the payload bytes) is what turns a
//! corrupted frame — a flipped bit on the transport, or an injected
//! `corrupt=K` fault — into a **detected** failure: the receiver rejects
//! the frame before decoding instead of possibly applying a decodable-
//! but-wrong payload, and the sender's reconnect-and-resend retry
//! recovers. Without it, a single flipped vertex-id byte in an `Update`
//! frame would silently diverge a shard.
//!
//! Connections open with a versioned handshake: the coordinator sends
//! [`Message::Hello`] (magic + protocol version) and the worker answers
//! [`Message::HelloAck`] echoing the version and reporting its assigned
//! shard range. Every later exchange is strict request→response on the
//! same connection, so neither side ever needs reordering buffers.
//!
//! # Message kinds
//!
//! | kind | message       | payload layout (all integers LE)                         |
//! |------|---------------|----------------------------------------------------------|
//! | 0x01 | `Hello`       | magic `u32`, version `u16`                               |
//! | 0x02 | `HelloAck`    | magic `u32`, version `u16`, shard_lo `u32`, shard_hi `u32` |
//! | 0x10 | `Bootstrap`   | n_upper `u64`, n_lower `u64`, n_edges `u64`, (upper `u32`, lower `u32`)\* |
//! | 0x11 | `BootstrapAck`| —                                                        |
//! | 0x12 | `BootstrapSnapshot` | epoch `u64`, layer `u8`, shard_lo `u32`, shard_hi `u32`, path_len `u32`, UTF-8 path |
//! | 0x20 | `Update`      | batch_seq `u64`, count `u32`, delta\* (see below)        |
//! | 0x21 | `UpdateAck`   | appended `u64`                                           |
//! | 0x30 | `Flush`       | —                                                        |
//! | 0x31 | `FlushAck`    | published `u64`                                          |
//! | 0x40 | `Round1Req`   | layer `u8`, target `u32`, epsilon `f64`, eps1_fraction `f64`, seed `u64`, count `u32`, candidate `u32`\* |
//! | 0x41 | `Round1Resp`  | epsilon `f64`, flip_probability `f64`, eps2 `f64`, rr_epsilon `f64`, base_seed `u64`, universe `u64`, n_words `u32`, word `u64`\* |
//! | 0x50 | `Round2Req`   | layer `u8`, owner `u32`, the `Round1Resp` fields, count `u32`, candidate `u32`\* |
//! | 0x51 | `Round2Resp`  | count `u32`, (candidate `u32`, estimate-bits `u64`)\*    |
//! | 0x60 | `StatsReq`    | —                                                        |
//! | 0x61 | `StatsResp`   | 8 × `u64` (epoch, appended, published, ingest_lag, rejected, snapshots, lag_p50, lag_p95) |
//! | 0x70 | `Shutdown`    | —                                                        |
//! | 0x71 | `ShutdownAck` | —                                                        |
//! | 0x7F | `Err`         | code `u16`, UTF-8 message (rest of payload)              |
//!
//! A [`GraphDelta`] serializes as tag `u8` (0 = `AddEdge`, 1 =
//! `RemoveEdge`, 2 = `AddVertex`) followed by upper `u32` + lower `u32`
//! for edges, or layer `u8` for vertex additions. Floats travel as their
//! IEEE-754 bit patterns (`f64::to_bits`), so estimates survive the wire
//! **byte-identically** — the whole correctness story of the cluster
//! depends on that.

use bigraph::{GraphDelta, Layer};
use std::io::{self, Read, Write};

/// Frame magic: `"CNE1"` as a little-endian u32.
pub const MAGIC: u32 = 0x314E_4543;
/// Protocol version; bumped on any layout change (2: payload checksum
/// added to the frame header).
pub const VERSION: u16 = 2;
/// Upper bound on a single frame's payload (guards against a corrupt
/// length prefix allocating unbounded memory).
pub const MAX_FRAME_LEN: u32 = 1 << 30;
/// Frame header size: kind `u8` + length `u32` + checksum `u32`.
pub const HEADER_LEN: usize = 9;

/// FNV-1a over the payload bytes — the frame integrity check. Not
/// cryptographic (the peer is trusted); it exists to catch accidental
/// and injected corruption deterministically.
#[must_use]
pub fn frame_checksum(payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in payload {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Error codes carried by [`Message::Err`].
pub mod err_code {
    /// Malformed or out-of-protocol request.
    pub const PROTOCOL: u16 = 1;
    /// The query itself failed (payload carries the `CneError` display).
    pub const QUERY: u16 = 2;
    /// The worker has not been bootstrapped with a shard graph yet.
    pub const NOT_BOOTSTRAPPED: u16 = 3;
}

/// The serving counters a worker reports in [`Message::StatsResp`] —
/// mirrors `cne::serving::ServingStats` field for field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Published epoch (buffer swaps since start).
    pub epoch: u64,
    /// Deltas appended to the worker's log.
    pub appended: u64,
    /// Deltas published (visible or rejected).
    pub published: u64,
    /// `appended - published`.
    pub ingest_lag: u64,
    /// Deltas dropped with a rejected batch.
    pub rejected: u64,
    /// Snapshots pinned since start.
    pub snapshots: u64,
    /// Median per-snapshot lag (log2 bucket lower bound).
    pub lag_p50: u64,
    /// 95th-percentile per-snapshot lag.
    pub lag_p95: u64,
}

/// The round-1 artifact shipped from the target's owner to the
/// coordinator (and verbatim onward in every round-2 request): everything
/// a remote worker needs to run its slice of round 2, and everything the
/// coordinator needs to replay the accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRound1 {
    /// Total query budget ε.
    pub epsilon: f64,
    /// Randomized-response flip probability.
    pub flip_probability: f64,
    /// Round-2 Laplace budget ε₂ (raw value).
    pub eps2: f64,
    /// The ε₁ recorded on the noisy row (its `NoisyNeighborsPacked::epsilon`).
    pub rr_epsilon: f64,
    /// Base seed for the per-candidate user streams.
    pub base_seed: u64,
    /// Bit universe of the packed row (the opposite layer's size).
    pub universe: u64,
    /// The noisy row's raw 64-bit words.
    pub words: Vec<u64>,
}

/// One protocol message. See the [module docs](self) for the layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Handshake request (coordinator → worker).
    Hello,
    /// Handshake response carrying the worker's shard range.
    HelloAck {
        /// First shard-layer vertex this worker owns.
        shard_lo: u32,
        /// One past the last owned vertex (`u32::MAX` = open-ended).
        shard_hi: u32,
    },
    /// Full shard-graph state: global layer sizes + the shard's edges.
    Bootstrap {
        /// Global upper-layer size.
        n_upper: u64,
        /// Global lower-layer size.
        n_lower: u64,
        /// The shard's edges as `(upper, lower)` pairs.
        edges: Vec<(u32, u32)>,
    },
    /// Bootstrap complete; the worker is serving.
    BootstrapAck,
    /// Bootstrap from a snapshot **file** instead of streamed edges: the
    /// worker loads the versioned binary snapshot at `path`
    /// (`bigraph::snapshot`), verifies its graph epoch against `epoch`,
    /// restricts it to `shard_lo..shard_hi` of `shard_layer`, and serves
    /// from the restricted engine. Answered with [`Message::BootstrapAck`]
    /// on success — the coordinator then replays the retained update-log
    /// tail past the snapshot's pinned sequence over ordinary
    /// [`Message::Update`] frames. The file must be reachable on the
    /// worker's filesystem (same host or shared storage); only the path
    /// crosses the socket, which is the point — one snapshot fans out to
    /// N workers without N copies of the edge list in flight.
    BootstrapSnapshot {
        /// Expected graph epoch; a snapshot stamped differently is
        /// rejected (the coordinator's tail replay would not line up).
        epoch: u64,
        /// The layer the cluster shards on.
        shard_layer: Layer,
        /// First shard-layer vertex this worker owns.
        shard_lo: u32,
        /// One past the last owned vertex (`u32::MAX` = open-ended).
        shard_hi: u32,
        /// Snapshot file path, UTF-8.
        path: String,
    },
    /// A partitioned slice of the update stream, in arrival order.
    Update {
        /// Idempotency key: a per-worker counter the coordinator bumps
        /// once per **logical** update exchange, so a resend of the same
        /// frame after a timed-out ack carries the same value. The worker
        /// skips any batch it has already ingested (`batch_seq` ≤ its
        /// high-water mark) and just re-acks — without this, a stalled
        /// ack would make reconnect-and-resend double-apply the batch,
        /// and `AddVertex` is not idempotent. `0` never dedupes (the
        /// counter starts at 1); bootstrap resets the worker's mark.
        batch_seq: u64,
        /// The deltas for this worker's shard.
        deltas: Vec<GraphDelta>,
    },
    /// Update ingested (appended to the worker's log).
    UpdateAck {
        /// The worker log's last allocated sequence number.
        appended: u64,
    },
    /// Block until every ingested delta is published.
    Flush,
    /// Flush complete.
    FlushAck {
        /// Deltas published by the worker.
        published: u64,
    },
    /// Run batch round 1 (validation + target randomized response).
    Round1Req {
        /// Query layer.
        layer: Layer,
        /// The target vertex (owned by this worker).
        target: u32,
        /// Total query budget ε.
        epsilon: f64,
        /// The algorithm's ε₁ split fraction.
        eps1_fraction: f64,
        /// Deterministic query seed (`StdRng::seed_from_u64`).
        seed: u64,
        /// The **full** candidate list, for validation.
        candidates: Vec<u32>,
    },
    /// Round-1 artifact.
    Round1Resp(WireRound1),
    /// Run round 2 for a slice of candidates owned by this worker.
    Round2Req {
        /// Query layer.
        layer: Layer,
        /// The target vertex (for row reconstruction).
        owner: u32,
        /// The round-1 artifact, verbatim from [`Message::Round1Resp`].
        round1: WireRound1,
        /// This worker's candidate slice, in original relative order.
        candidates: Vec<u32>,
    },
    /// Per-candidate estimates, bit-exact.
    Round2Resp {
        /// `(candidate, estimate.to_bits())` pairs, in request order.
        estimates: Vec<(u32, u64)>,
    },
    /// Request serving counters.
    StatsReq,
    /// Serving counters.
    StatsResp(WireStats),
    /// Orderly worker shutdown.
    Shutdown,
    /// Shutdown acknowledged; the worker exits after this frame.
    ShutdownAck,
    /// Request-level failure.
    Err {
        /// One of [`err_code`]'s constants.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

/// Message kind bytes.
mod kind {
    pub const HELLO: u8 = 0x01;
    pub const HELLO_ACK: u8 = 0x02;
    pub const BOOTSTRAP: u8 = 0x10;
    pub const BOOTSTRAP_ACK: u8 = 0x11;
    pub const BOOTSTRAP_SNAPSHOT: u8 = 0x12;
    pub const UPDATE: u8 = 0x20;
    pub const UPDATE_ACK: u8 = 0x21;
    pub const FLUSH: u8 = 0x30;
    pub const FLUSH_ACK: u8 = 0x31;
    pub const ROUND1_REQ: u8 = 0x40;
    pub const ROUND1_RESP: u8 = 0x41;
    pub const ROUND2_REQ: u8 = 0x50;
    pub const ROUND2_RESP: u8 = 0x51;
    pub const STATS_REQ: u8 = 0x60;
    pub const STATS_RESP: u8 = 0x61;
    pub const SHUTDOWN: u8 = 0x70;
    pub const SHUTDOWN_ACK: u8 = 0x71;
    pub const ERR: u8 = 0x7F;
}

// ---------------------------------------------------------------- encode

/// Little-endian append helpers over a byte buffer.
trait PutLe {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_f64(&mut self, v: f64);
}

impl PutLe for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

fn layer_byte(layer: Layer) -> u8 {
    match layer {
        Layer::Upper => 0,
        Layer::Lower => 1,
    }
}

fn put_round1(buf: &mut Vec<u8>, r: &WireRound1) {
    buf.put_f64(r.epsilon);
    buf.put_f64(r.flip_probability);
    buf.put_f64(r.eps2);
    buf.put_f64(r.rr_epsilon);
    buf.put_u64(r.base_seed);
    buf.put_u64(r.universe);
    buf.put_u32(u32::try_from(r.words.len()).expect("row words fit u32"));
    for &w in &r.words {
        buf.put_u64(w);
    }
}

fn put_delta(buf: &mut Vec<u8>, delta: GraphDelta) {
    match delta {
        GraphDelta::AddEdge { upper, lower } => {
            buf.put_u8(0);
            buf.put_u32(upper);
            buf.put_u32(lower);
        }
        GraphDelta::RemoveEdge { upper, lower } => {
            buf.put_u8(1);
            buf.put_u32(upper);
            buf.put_u32(lower);
        }
        GraphDelta::AddVertex { layer } => {
            buf.put_u8(2);
            buf.put_u8(layer_byte(layer));
        }
    }
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Hello => kind::HELLO,
            Message::HelloAck { .. } => kind::HELLO_ACK,
            Message::Bootstrap { .. } => kind::BOOTSTRAP,
            Message::BootstrapAck => kind::BOOTSTRAP_ACK,
            Message::BootstrapSnapshot { .. } => kind::BOOTSTRAP_SNAPSHOT,
            Message::Update { .. } => kind::UPDATE,
            Message::UpdateAck { .. } => kind::UPDATE_ACK,
            Message::Flush => kind::FLUSH,
            Message::FlushAck { .. } => kind::FLUSH_ACK,
            Message::Round1Req { .. } => kind::ROUND1_REQ,
            Message::Round1Resp(_) => kind::ROUND1_RESP,
            Message::Round2Req { .. } => kind::ROUND2_REQ,
            Message::Round2Resp { .. } => kind::ROUND2_RESP,
            Message::StatsReq => kind::STATS_REQ,
            Message::StatsResp(_) => kind::STATS_RESP,
            Message::Shutdown => kind::SHUTDOWN,
            Message::ShutdownAck => kind::SHUTDOWN_ACK,
            Message::Err { .. } => kind::ERR,
        }
    }

    /// Serializes the payload (everything after the 5-byte frame header).
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Hello => {
                buf.put_u32(MAGIC);
                buf.put_u16(VERSION);
            }
            Message::HelloAck { shard_lo, shard_hi } => {
                buf.put_u32(MAGIC);
                buf.put_u16(VERSION);
                buf.put_u32(*shard_lo);
                buf.put_u32(*shard_hi);
            }
            Message::Bootstrap {
                n_upper,
                n_lower,
                edges,
            } => {
                buf.put_u64(*n_upper);
                buf.put_u64(*n_lower);
                buf.put_u64(edges.len() as u64);
                for &(u, l) in edges {
                    buf.put_u32(u);
                    buf.put_u32(l);
                }
            }
            Message::BootstrapSnapshot {
                epoch,
                shard_layer,
                shard_lo,
                shard_hi,
                path,
            } => {
                buf.put_u64(*epoch);
                buf.put_u8(layer_byte(*shard_layer));
                buf.put_u32(*shard_lo);
                buf.put_u32(*shard_hi);
                buf.put_u32(u32::try_from(path.len()).expect("path fits u32"));
                buf.extend_from_slice(path.as_bytes());
            }
            Message::BootstrapAck | Message::Flush | Message::StatsReq => {}
            Message::Shutdown | Message::ShutdownAck => {}
            Message::Update { batch_seq, deltas } => {
                buf.put_u64(*batch_seq);
                buf.put_u32(u32::try_from(deltas.len()).expect("delta count fits u32"));
                for &d in deltas {
                    put_delta(buf, d);
                }
            }
            Message::UpdateAck { appended } => buf.put_u64(*appended),
            Message::FlushAck { published } => buf.put_u64(*published),
            Message::Round1Req {
                layer,
                target,
                epsilon,
                eps1_fraction,
                seed,
                candidates,
            } => {
                buf.put_u8(layer_byte(*layer));
                buf.put_u32(*target);
                buf.put_f64(*epsilon);
                buf.put_f64(*eps1_fraction);
                buf.put_u64(*seed);
                buf.put_u32(u32::try_from(candidates.len()).expect("candidates fit u32"));
                for &c in candidates {
                    buf.put_u32(c);
                }
            }
            Message::Round1Resp(r) => put_round1(buf, r),
            Message::Round2Req {
                layer,
                owner,
                round1,
                candidates,
            } => {
                buf.put_u8(layer_byte(*layer));
                buf.put_u32(*owner);
                put_round1(buf, round1);
                buf.put_u32(u32::try_from(candidates.len()).expect("candidates fit u32"));
                for &c in candidates {
                    buf.put_u32(c);
                }
            }
            Message::Round2Resp { estimates } => {
                buf.put_u32(u32::try_from(estimates.len()).expect("estimates fit u32"));
                for &(c, bits) in estimates {
                    buf.put_u32(c);
                    buf.put_u64(bits);
                }
            }
            Message::StatsResp(s) => {
                for v in [
                    s.epoch,
                    s.appended,
                    s.published,
                    s.ingest_lag,
                    s.rejected,
                    s.snapshots,
                    s.lag_p50,
                    s.lag_p95,
                ] {
                    buf.put_u64(v);
                }
            }
            Message::Err { code, message } => {
                buf.put_u16(*code);
                buf.extend_from_slice(message.as_bytes());
            }
        }
    }

    /// Encodes the full frame (kind byte, length prefix, payload) into a
    /// buffer — the exact bytes [`write_to`](Message::write_to) puts on
    /// the wire, exposed so a transport layer can inspect, count, or
    /// deliberately perturb a frame before sending it (the fault-injection
    /// harness corrupts and drops frames at this seam).
    #[must_use]
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut frame = Vec::with_capacity(64);
        frame.put_u8(self.kind());
        frame.put_u32(0); // length patched below
        frame.put_u32(0); // checksum patched below
        self.encode_payload(&mut frame);
        let len = u32::try_from(frame.len() - HEADER_LEN).expect("frame fits u32");
        frame[1..5].copy_from_slice(&len.to_le_bytes());
        let sum = frame_checksum(&frame[HEADER_LEN..]);
        frame[5..9].copy_from_slice(&sum.to_le_bytes());
        frame
    }

    /// Writes the full frame (header + payload) to `w` in one
    /// `write_all`, so a frame is never interleaved mid-write.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_frame_bytes())?;
        w.flush()
    }

    /// Reads one full frame from `r`, blocking until the payload is
    /// complete (or the reader's timeout fires).
    ///
    /// # Errors
    ///
    /// I/O errors from `r`, plus `InvalidData` for a checksum mismatch,
    /// bad magic, an unsupported version, an unknown kind byte, an
    /// over-long frame, or a payload that does not match its kind's
    /// layout.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Message> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        let kind = header[0];
        let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
        let sum = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(bad_data(format!("frame length {len} exceeds cap")));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        let found = frame_checksum(&payload);
        if found != sum {
            return Err(bad_data(format!(
                "frame checksum mismatch: header says {sum:#010x}, payload hashes to {found:#010x}"
            )));
        }
        decode(kind, &payload)
    }
}

// ---------------------------------------------------------------- decode

fn bad_data(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// A little-endian cursor over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(bad_data("truncated frame payload".into())),
        }
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn layer(&mut self) -> io::Result<Layer> {
        match self.u8()? {
            0 => Ok(Layer::Upper),
            1 => Ok(Layer::Lower),
            b => Err(bad_data(format!("invalid layer byte {b}"))),
        }
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.at..];
        self.at = self.buf.len();
        s
    }

    fn finish(self) -> io::Result<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(bad_data("trailing bytes after frame payload".into()))
        }
    }
}

fn check_handshake(c: &mut Cursor<'_>) -> io::Result<()> {
    let magic = c.u32()?;
    if magic != MAGIC {
        return Err(bad_data(format!("bad magic {magic:#010x}")));
    }
    let version = c.u16()?;
    if version != VERSION {
        return Err(bad_data(format!(
            "protocol version {version} (expected {VERSION})"
        )));
    }
    Ok(())
}

fn take_candidates(c: &mut Cursor<'_>) -> io::Result<Vec<u32>> {
    let n = c.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(c.u32()?);
    }
    Ok(out)
}

fn take_round1(c: &mut Cursor<'_>) -> io::Result<WireRound1> {
    let epsilon = c.f64()?;
    let flip_probability = c.f64()?;
    let eps2 = c.f64()?;
    let rr_epsilon = c.f64()?;
    let base_seed = c.u64()?;
    let universe = c.u64()?;
    let n_words = c.u32()? as usize;
    let mut words = Vec::with_capacity(n_words.min(1 << 24));
    for _ in 0..n_words {
        words.push(c.u64()?);
    }
    Ok(WireRound1 {
        epsilon,
        flip_probability,
        eps2,
        rr_epsilon,
        base_seed,
        universe,
        words,
    })
}

fn take_delta(c: &mut Cursor<'_>) -> io::Result<GraphDelta> {
    match c.u8()? {
        0 => Ok(GraphDelta::AddEdge {
            upper: c.u32()?,
            lower: c.u32()?,
        }),
        1 => Ok(GraphDelta::RemoveEdge {
            upper: c.u32()?,
            lower: c.u32()?,
        }),
        2 => Ok(GraphDelta::AddVertex { layer: c.layer()? }),
        b => Err(bad_data(format!("invalid delta tag {b}"))),
    }
}

fn decode(kind_byte: u8, payload: &[u8]) -> io::Result<Message> {
    let mut c = Cursor::new(payload);
    let msg = match kind_byte {
        kind::HELLO => {
            check_handshake(&mut c)?;
            Message::Hello
        }
        kind::HELLO_ACK => {
            check_handshake(&mut c)?;
            Message::HelloAck {
                shard_lo: c.u32()?,
                shard_hi: c.u32()?,
            }
        }
        kind::BOOTSTRAP => {
            let n_upper = c.u64()?;
            let n_lower = c.u64()?;
            let n_edges = c.u64()? as usize;
            let mut edges = Vec::with_capacity(n_edges.min(1 << 24));
            for _ in 0..n_edges {
                edges.push((c.u32()?, c.u32()?));
            }
            Message::Bootstrap {
                n_upper,
                n_lower,
                edges,
            }
        }
        kind::BOOTSTRAP_ACK => Message::BootstrapAck,
        kind::BOOTSTRAP_SNAPSHOT => {
            let epoch = c.u64()?;
            let shard_layer = c.layer()?;
            let shard_lo = c.u32()?;
            let shard_hi = c.u32()?;
            let path_len = c.u32()? as usize;
            let path = String::from_utf8(c.take(path_len)?.to_vec())
                .map_err(|_| bad_data("snapshot path is not UTF-8".into()))?;
            Message::BootstrapSnapshot {
                epoch,
                shard_layer,
                shard_lo,
                shard_hi,
                path,
            }
        }
        kind::UPDATE => {
            let batch_seq = c.u64()?;
            let n = c.u32()? as usize;
            let mut deltas = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                deltas.push(take_delta(&mut c)?);
            }
            Message::Update { batch_seq, deltas }
        }
        kind::UPDATE_ACK => Message::UpdateAck { appended: c.u64()? },
        kind::FLUSH => Message::Flush,
        kind::FLUSH_ACK => Message::FlushAck {
            published: c.u64()?,
        },
        kind::ROUND1_REQ => Message::Round1Req {
            layer: c.layer()?,
            target: c.u32()?,
            epsilon: c.f64()?,
            eps1_fraction: c.f64()?,
            seed: c.u64()?,
            candidates: take_candidates(&mut c)?,
        },
        kind::ROUND1_RESP => Message::Round1Resp(take_round1(&mut c)?),
        kind::ROUND2_REQ => Message::Round2Req {
            layer: c.layer()?,
            owner: c.u32()?,
            round1: take_round1(&mut c)?,
            candidates: take_candidates(&mut c)?,
        },
        kind::ROUND2_RESP => {
            let n = c.u32()? as usize;
            let mut estimates = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                estimates.push((c.u32()?, c.u64()?));
            }
            Message::Round2Resp { estimates }
        }
        kind::STATS_REQ => Message::StatsReq,
        kind::STATS_RESP => Message::StatsResp(WireStats {
            epoch: c.u64()?,
            appended: c.u64()?,
            published: c.u64()?,
            ingest_lag: c.u64()?,
            rejected: c.u64()?,
            snapshots: c.u64()?,
            lag_p50: c.u64()?,
            lag_p95: c.u64()?,
        }),
        kind::SHUTDOWN => Message::Shutdown,
        kind::SHUTDOWN_ACK => Message::ShutdownAck,
        kind::ERR => {
            let code = c.u16()?;
            let message = String::from_utf8(c.rest().to_vec())
                .map_err(|_| bad_data("error message is not UTF-8".into()))?;
            Message::Err { code, message }
        }
        b => return Err(bad_data(format!("unknown message kind {b:#04x}"))),
    };
    c.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let mut buf = Vec::new();
        msg.write_to(&mut buf).unwrap();
        let decoded = Message::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn every_message_kind_round_trips() {
        round_trip(Message::Hello);
        round_trip(Message::HelloAck {
            shard_lo: 7,
            shard_hi: u32::MAX,
        });
        round_trip(Message::Bootstrap {
            n_upper: 10,
            n_lower: 20,
            edges: vec![(0, 1), (9, 19)],
        });
        round_trip(Message::BootstrapAck);
        round_trip(Message::BootstrapSnapshot {
            epoch: 12,
            shard_layer: Layer::Upper,
            shard_lo: 128,
            shard_hi: u32::MAX,
            path: "/tmp/cluster/epoch-12.snap".into(),
        });
        round_trip(Message::Update {
            batch_seq: 9,
            deltas: vec![
                GraphDelta::AddEdge { upper: 1, lower: 2 },
                GraphDelta::RemoveEdge { upper: 3, lower: 4 },
                GraphDelta::AddVertex {
                    layer: Layer::Lower,
                },
            ],
        });
        round_trip(Message::UpdateAck { appended: 42 });
        round_trip(Message::Flush);
        round_trip(Message::FlushAck { published: 42 });
        let r1 = WireRound1 {
            epsilon: 2.0,
            flip_probability: 0.268_941,
            eps2: 1.0,
            rr_epsilon: 1.0,
            base_seed: 0xDEAD_BEEF,
            universe: 130,
            words: vec![u64::MAX, 0, 0b1011],
        };
        round_trip(Message::Round1Req {
            layer: Layer::Upper,
            target: 0,
            epsilon: 2.0,
            eps1_fraction: 0.5,
            seed: 99,
            candidates: vec![1, 2, 3],
        });
        round_trip(Message::Round1Resp(r1.clone()));
        round_trip(Message::Round2Req {
            layer: Layer::Lower,
            owner: 5,
            round1: r1,
            candidates: vec![8, 9],
        });
        round_trip(Message::Round2Resp {
            estimates: vec![(8, 4.5f64.to_bits()), (9, (-0.25f64).to_bits())],
        });
        round_trip(Message::StatsReq);
        round_trip(Message::StatsResp(WireStats {
            epoch: 1,
            appended: 2,
            published: 3,
            ingest_lag: 4,
            rejected: 5,
            snapshots: 6,
            lag_p50: 0,
            lag_p95: 8,
        }));
        round_trip(Message::Shutdown);
        round_trip(Message::ShutdownAck);
        round_trip(Message::Err {
            code: err_code::QUERY,
            message: "target out of range".into(),
        });
    }

    #[test]
    fn estimates_cross_the_wire_bit_exactly() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1e300, -7.25] {
            let msg = Message::Round2Resp {
                estimates: vec![(0, v.to_bits())],
            };
            let mut buf = Vec::new();
            msg.write_to(&mut buf).unwrap();
            match Message::read_from(&mut buf.as_slice()).unwrap() {
                Message::Round2Resp { estimates } => {
                    assert_eq!(f64::from_bits(estimates[0].1).to_bits(), v.to_bits());
                }
                other => panic!("wrong kind: {other:?}"),
            }
        }
    }

    /// Recomputes a hand-mutated frame's length and checksum so the test
    /// reaches the *decode*-level validation it targets (rather than
    /// tripping the checksum first).
    fn reseal(frame: &mut [u8]) {
        let len = (frame.len() - HEADER_LEN) as u32;
        frame[1..5].copy_from_slice(&len.to_le_bytes());
        let sum = frame_checksum(&frame[HEADER_LEN..]);
        frame[5..9].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn truncated_and_corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        Message::Hello.write_to(&mut buf).unwrap();
        // Truncated payload.
        assert!(Message::read_from(&mut &buf[..buf.len() - 1]).is_err());
        // Unknown kind.
        let mut bad = buf.clone();
        bad[0] = 0x33;
        assert!(Message::read_from(&mut bad.as_slice()).is_err());
        // Bad magic (resealed: the magic check itself must fire).
        let mut bad = buf.clone();
        bad[HEADER_LEN] ^= 0xFF;
        reseal(&mut bad);
        assert!(Message::read_from(&mut bad.as_slice()).is_err());
        // Wrong version (resealed: the version check itself must fire).
        let mut bad = buf;
        bad[HEADER_LEN + 4] ^= 0xFF;
        reseal(&mut bad);
        assert!(Message::read_from(&mut bad.as_slice()).is_err());
        // Over-long length prefix.
        let huge = [kind::HELLO, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0];
        assert!(Message::read_from(&mut huge.as_slice()).is_err());
        // Trailing garbage after a fixed-layout payload.
        let mut trailing = Vec::new();
        Message::UpdateAck { appended: 1 }
            .write_to(&mut trailing)
            .unwrap();
        trailing.push(0);
        reseal(&mut trailing);
        assert!(Message::read_from(&mut trailing.as_slice()).is_err());
    }

    /// The integrity check must catch a flipped payload byte even when
    /// the mutated payload would still decode — e.g. an edge id in an
    /// `Update` whose corruption would otherwise silently diverge a
    /// shard. Every post-header byte flip must be rejected.
    #[test]
    fn checksum_rejects_any_single_flipped_byte() {
        let mut buf = Vec::new();
        Message::Update {
            batch_seq: 7,
            deltas: vec![GraphDelta::AddEdge { upper: 1, lower: 2 }],
        }
        .write_to(&mut buf)
        .unwrap();
        for at in 5..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x04; // flips a vertex-id bit at payload offsets
            let err = Message::read_from(&mut bad.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "offset {at}");
        }
    }
}

//! The shard-worker binary: one process, one serving engine, one shard.
//!
//! Spawned by a [`cluster::Coordinator`] with its socket path and vertex
//! range in the environment (see [`cluster::worker`]); everything else —
//! bootstrap graph, update stream, queries — arrives over the socket.

fn main() {
    let config = cluster::WorkerConfig::from_env().unwrap_or_else(|| {
        eprintln!(
            "shard-worker: set {} (and optionally {} / {}) to run",
            cluster::worker::SOCKET_ENV,
            cluster::worker::SHARD_LO_ENV,
            cluster::worker::SHARD_HI_ENV,
        );
        std::process::exit(2);
    });
    if let Err(e) = cluster::worker::run(&config) {
        eprintln!("shard-worker: {e}");
        std::process::exit(1);
    }
}

//! The shard-worker side: one process, one [`ServingEngine`], one shard.
//!
//! A worker is spawned with a Unix-socket path and a contiguous
//! shard-layer vertex range (see [`crate`] docs for the assignment
//! rules), binds a listener, and serves one coordinator connection at a
//! time in strict request→response order. It starts **empty**: the
//! coordinator's `Bootstrap` message delivers the shard graph (global
//! layer sizes + the shard's edges), after which `Update` frames stream
//! the shard's slice of the delta log into the worker's own
//! [`ServingEngine`] — the same epoch-pinned double-buffered tier a
//! single-process deployment uses, so queries on the worker never wait on
//! a splice either.
//!
//! The fast-restart alternative is `BootstrapSnapshot`: instead of
//! streaming edges over the socket, the coordinator points the worker at a
//! versioned binary snapshot file (`bigraph::snapshot`). The worker loads
//! and validates it, checks the epoch stamp, restricts it to its own
//! shard range, and serves from the restricted engine — warm store
//! included, since the snapshot's packed bitmaps of owned vertices adopt
//! directly. The coordinator then replays its retained update-log tail
//! past the snapshot's pinned sequence over ordinary `Update` frames; the
//! combination is byte-identical to an edge-streamed bootstrap that saw
//! the same deltas.
//!
//! A dropped connection is not fatal: the worker keeps its state and
//! accepts the coordinator's reconnect (that is what makes the
//! coordinator's bounded retry meaningful). `Shutdown` exits the process.

use crate::wire::{err_code, Message, WireRound1, WireStats};
use bigraph::bitset::PackedSet;
use bigraph::BipartiteGraph;
use cne::batch::{batch_round2, BatchRound1, BatchSingleSource};
use cne::serving::{ServingConfig, ServingEngine};
use ldp::budget::PrivacyBudget;
use ldp::noisy_graph::NoisyNeighborsPacked;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Env var carrying the socket path when a binary re-executes itself as a
/// worker (the bench harness does this; the dedicated `shard-worker`
/// binary reads the same variables).
pub const SOCKET_ENV: &str = "CNE_SHARD_WORKER_SOCKET";
/// Env var carrying the shard range's inclusive lower bound.
pub const SHARD_LO_ENV: &str = "CNE_SHARD_WORKER_LO";
/// Env var carrying the shard range's exclusive upper bound.
pub const SHARD_HI_ENV: &str = "CNE_SHARD_WORKER_HI";

/// A worker's spawn-time assignment.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The Unix socket to listen on (an existing file is replaced).
    pub socket: PathBuf,
    /// First shard-layer vertex this worker owns.
    pub shard_lo: u32,
    /// One past the last owned vertex (`u32::MAX` = open-ended, so the
    /// last shard also owns vertices appended after spawn).
    pub shard_hi: u32,
    /// Serving-tier tuning for the worker's engine.
    pub serving: ServingConfig,
}

impl WorkerConfig {
    /// Reads the assignment from [`SOCKET_ENV`] / [`SHARD_LO_ENV`] /
    /// [`SHARD_HI_ENV`]. `None` when the socket variable is unset (the
    /// process is not meant to be a worker).
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let socket = std::env::var_os(SOCKET_ENV)?;
        let parse = |var: &str, default: u32| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Some(Self {
            socket: PathBuf::from(socket),
            shard_lo: parse(SHARD_LO_ENV, 0),
            shard_hi: parse(SHARD_HI_ENV, u32::MAX),
            serving: ServingConfig::default(),
        })
    }
}

/// If the environment says this process is a shard worker, run the worker
/// loop and return `true` once it exits; otherwise return `false`
/// immediately. Call this first thing in `main` of any binary that spawns
/// workers by re-executing itself.
pub fn maybe_run_worker_from_env() -> bool {
    match WorkerConfig::from_env() {
        Some(config) => {
            run(&config).expect("shard worker failed");
            true
        }
        None => false,
    }
}

/// What a finished connection means for the accept loop.
enum ConnExit {
    /// Coordinator went away; keep state and wait for a reconnect.
    Disconnected,
    /// Orderly shutdown was requested; exit the process.
    Shutdown,
}

/// Binds the worker's socket and serves coordinator connections until an
/// orderly `Shutdown`.
///
/// # Errors
///
/// Propagates socket bind/accept failures. Per-request failures are
/// reported to the coordinator as [`Message::Err`] frames instead.
pub fn run(config: &WorkerConfig) -> io::Result<()> {
    // A stale socket file from a previous (killed) worker would make bind
    // fail with AddrInUse; replacing it is what lets a restarted worker
    // come back on the same path.
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)?;
    let mut serving: Option<ServingEngine> = None;
    let mut dedup = UpdateDedup::default();
    loop {
        let (stream, _) = listener.accept()?;
        match serve_connection(stream, &mut serving, &mut dedup, config) {
            ConnExit::Disconnected => {}
            ConnExit::Shutdown => {
                let _ = std::fs::remove_file(&config.socket);
                return Ok(());
            }
        }
    }
}

/// The worker's `Update` idempotency mark, kept across reconnects (that
/// is the point: a reconnect is exactly when the coordinator re-sends a
/// frame whose ack it never saw). Reset on (re)bootstrap, when the
/// coordinator's per-worker counter starts over.
#[derive(Debug, Default)]
struct UpdateDedup {
    /// Highest `batch_seq` already ingested.
    last_batch: u64,
    /// The ack that batch got, replayed verbatim for a duplicate.
    last_appended: u64,
}

/// Serves one coordinator connection in strict request→response order.
fn serve_connection(
    mut stream: UnixStream,
    serving: &mut Option<ServingEngine>,
    dedup: &mut UpdateDedup,
    config: &WorkerConfig,
) -> ConnExit {
    loop {
        let request = match Message::read_from(&mut stream) {
            Ok(msg) => msg,
            // EOF or a torn frame: the coordinator is gone (or restarting);
            // drop the connection but keep every byte of state.
            Err(_) => return ConnExit::Disconnected,
        };
        let shutdown = matches!(request, Message::Shutdown);
        let response = handle(request, serving, dedup, config);
        // Fault injection: an armed `stall` directive (inherited via
        // `CNE_FAULT_PLAN`) holds this response past the coordinator's
        // IO deadline — the stalled-socket chaos leg. Inert otherwise.
        crate::fault::worker_injector().stall_before_response();
        if stream.write_msg(&response).is_err() {
            return ConnExit::Disconnected;
        }
        if shutdown {
            return ConnExit::Shutdown;
        }
    }
}

/// Tiny extension so send sites read naturally.
trait WriteMsg {
    fn write_msg(&mut self, msg: &Message) -> io::Result<()>;
}

impl WriteMsg for UnixStream {
    fn write_msg(&mut self, msg: &Message) -> io::Result<()> {
        msg.write_to(self)
    }
}

fn err(code: u16, message: impl Into<String>) -> Message {
    Message::Err {
        code,
        message: message.into(),
    }
}

/// Computes the response for one request.
fn handle(
    request: Message,
    serving: &mut Option<ServingEngine>,
    dedup: &mut UpdateDedup,
    config: &WorkerConfig,
) -> Message {
    match request {
        Message::Hello => Message::HelloAck {
            shard_lo: config.shard_lo,
            shard_hi: config.shard_hi,
        },
        Message::Bootstrap {
            n_upper,
            n_lower,
            edges,
        } => {
            // Tear down any previous engine first (re-bootstrap replaces
            // state wholesale; the coordinator uses this after a restart).
            if let Some(old) = serving.take() {
                drop(old.into_engine());
            }
            let graph = match BipartiteGraph::from_edges(
                n_upper as usize,
                n_lower as usize,
                edges.iter().map(|&(u, l)| (u, l)),
            ) {
                Ok(g) => g,
                Err(e) => return err(err_code::PROTOCOL, format!("bad shard graph: {e}")),
            };
            *serving = Some(ServingEngine::with_config(graph, config.serving.clone()));
            *dedup = UpdateDedup::default();
            Message::BootstrapAck
        }
        Message::BootstrapSnapshot {
            epoch,
            shard_layer,
            shard_lo,
            shard_hi,
            path,
        } => {
            // The range in the message is the coordinator's view of this
            // worker's assignment; a disagreement means frames are being
            // routed to the wrong worker — refuse rather than serve a
            // shard we were not spawned for.
            if (shard_lo, shard_hi) != (config.shard_lo, config.shard_hi) {
                return err(
                    err_code::PROTOCOL,
                    format!(
                        "snapshot bootstrap for shard {shard_lo}..{shard_hi}, \
                         but this worker owns {}..{}",
                        config.shard_lo, config.shard_hi
                    ),
                );
            }
            let snap = match bigraph::read_snapshot(std::path::Path::new(&path)) {
                Ok(s) => s,
                Err(e) => return err(err_code::PROTOCOL, format!("snapshot {path}: {e}")),
            };
            if snap.epoch() != epoch {
                return err(
                    err_code::PROTOCOL,
                    format!(
                        "snapshot {path} is stamped epoch {}, expected {epoch}",
                        snap.epoch()
                    ),
                );
            }
            let restricted = snap.restrict_to_shard(shard_layer, shard_lo, shard_hi);
            if let Some(old) = serving.take() {
                drop(old.into_engine());
            }
            *serving = Some(ServingEngine::bootstrap_from_snapshot(
                &restricted,
                config.serving.clone(),
            ));
            *dedup = UpdateDedup::default();
            Message::BootstrapAck
        }
        Message::Update { batch_seq, deltas } => match serving {
            Some(engine) => {
                // A batch at or below the high-water mark is a resend of
                // a frame whose ack the coordinator never saw (its read
                // timed out and it reconnected): the deltas are already
                // in, so applying again would diverge — re-ack instead.
                if batch_seq != 0 && batch_seq <= dedup.last_batch {
                    return Message::UpdateAck {
                        appended: dedup.last_appended,
                    };
                }
                let appended = engine.extend(deltas);
                dedup.last_batch = batch_seq;
                dedup.last_appended = appended;
                Message::UpdateAck { appended }
            }
            None => err(err_code::NOT_BOOTSTRAPPED, "update before bootstrap"),
        },
        Message::Flush => match serving {
            Some(engine) => {
                engine.flush();
                Message::FlushAck {
                    published: engine.stats().published,
                }
            }
            None => err(err_code::NOT_BOOTSTRAPPED, "flush before bootstrap"),
        },
        Message::Round1Req {
            layer,
            target,
            epsilon,
            eps1_fraction,
            seed,
            candidates,
        } => {
            let Some(engine) = serving.as_ref() else {
                return err(err_code::NOT_BOOTSTRAPPED, "query before bootstrap");
            };
            let algo = BatchSingleSource {
                epsilon1_fraction: eps1_fraction,
            };
            let snap = engine.snapshot();
            let mut rng = StdRng::seed_from_u64(seed);
            match algo.round1_in(
                snap.engine().env(),
                layer,
                target,
                &candidates,
                epsilon,
                &mut rng,
            ) {
                Ok(r1) => Message::Round1Resp(WireRound1 {
                    epsilon: r1.epsilon,
                    flip_probability: r1.flip_probability,
                    eps2: r1.eps2.value(),
                    rr_epsilon: r1.noisy_target.epsilon,
                    base_seed: r1.base_seed,
                    universe: r1.noisy_target.set().universe() as u64,
                    words: r1.noisy_target.set().as_words().to_vec(),
                }),
                Err(e) => err(err_code::QUERY, e.to_string()),
            }
        }
        Message::Round2Req {
            layer,
            owner,
            round1,
            candidates,
        } => {
            let Some(engine) = serving.as_ref() else {
                return err(err_code::NOT_BOOTSTRAPPED, "query before bootstrap");
            };
            let eps2 = match PrivacyBudget::new(round1.eps2) {
                Ok(b) => b,
                Err(e) => return err(err_code::PROTOCOL, format!("bad eps2: {e}")),
            };
            let rebuilt = BatchRound1 {
                epsilon: round1.epsilon,
                flip_probability: round1.flip_probability,
                eps2,
                base_seed: round1.base_seed,
                noisy_target: NoisyNeighborsPacked::from_parts(
                    owner,
                    layer,
                    round1.rr_epsilon,
                    PackedSet::from_words(round1.words, round1.universe as usize),
                ),
            };
            let snap = engine.snapshot();
            match batch_round2(snap.engine().env(), layer, &candidates, &rebuilt) {
                Ok(estimates) => Message::Round2Resp {
                    estimates: estimates
                        .iter()
                        .map(|e| (e.candidate, e.estimate.to_bits()))
                        .collect(),
                },
                Err(e) => err(err_code::QUERY, e.to_string()),
            }
        }
        Message::StatsReq => match serving {
            Some(engine) => {
                let s = engine.stats();
                Message::StatsResp(WireStats {
                    epoch: s.epoch,
                    appended: s.appended,
                    published: s.published,
                    ingest_lag: s.ingest_lag,
                    rejected: s.rejected,
                    snapshots: s.snapshots,
                    lag_p50: s.lag_p50,
                    lag_p95: s.lag_p95,
                })
            }
            None => Message::StatsResp(WireStats::default()),
        },
        Message::Shutdown => Message::ShutdownAck,
        other => err(
            err_code::PROTOCOL,
            format!("unexpected request on worker: {other:?}"),
        ),
    }
}

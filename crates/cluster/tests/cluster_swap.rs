//! Swap-correctness suite for the multi-process sharded serving tier
//! (ISSUE 8 tentpole): reports concatenated across **real spawned worker
//! processes** must be byte-identical — estimates, budget ledger, and
//! transcript — to a single unsharded engine over the same graph state,
//! for arbitrary contiguous vertex-range partitions into 1/2/4 shards,
//! before and after a replicated update stream. Plus the robustness
//! contract: killing a worker turns the next fan-out into a typed
//! partial-result error within the coordinator's timeout budget, never a
//! hang.
//!
//! The suite runs under the `RAYON_NUM_THREADS=1/4/8` determinism matrix
//! and the `CNE_FORCE_PORTABLE_KERNELS=1` leg in CI — worker processes
//! inherit both variables, so the cross-process comparison also pins
//! thread-count and kernel-dispatch independence across the process
//! boundary.

use bigraph::{BipartiteGraph, GraphDelta, Layer};
use cluster::{ClusterConfig, ClusterError, Coordinator};
use cne::EstimationEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const N_UPPER: usize = 12;
const N_LOWER: usize = 96; // ≥ 64 so some vertices cross the dense threshold
const EPSILON: f64 = 2.0;

/// Same base graph as `cne`'s serving suite: dense enough that several
/// upper vertices take the packed (cache-hitting) dispatch.
fn base_graph() -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..N_UPPER as u32 {
        let degree = 3 + (u * 7) % 40;
        for k in 0..degree {
            edges.push((u, (u * 31 + k * 5) % N_LOWER as u32));
        }
    }
    BipartiteGraph::from_edges(N_UPPER, N_LOWER, edges).unwrap()
}

/// A fresh socket directory per coordinator, so parallel tests never
/// collide on socket paths.
fn socket_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cne-cluster-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_shard-worker"))
}

/// A random contiguous partition of the upper layer into `shards` ranges
/// (cut points drawn from `rng`), honoring the cover contract.
fn random_partition(rng: &mut StdRng, shards: usize) -> Vec<std::ops::Range<u32>> {
    let mut cuts: Vec<u32> = Vec::new();
    while cuts.len() < shards - 1 {
        let c = rng.gen_range(0..=N_UPPER as u32);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    let mut ranges = Vec::with_capacity(shards);
    let mut lo = 0u32;
    for c in cuts {
        ranges.push(lo..c);
        lo = c;
    }
    ranges.push(lo..u32::MAX);
    ranges
}

/// A deterministic mixed update stream: edge churn on both existing and
/// freshly appended vertices, exercising the broadcast (`AddVertex`) and
/// routed (edge) replication paths together.
fn update_stream(seed: u64) -> Vec<GraphDelta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n_upper = N_UPPER as u32;
    let mut n_lower = N_LOWER as u32;
    let mut stream = Vec::new();
    for i in 0..400 {
        match i % 10 {
            0 => {
                stream.push(GraphDelta::AddVertex {
                    layer: Layer::Upper,
                });
                n_upper += 1;
            }
            5 => {
                stream.push(GraphDelta::AddVertex {
                    layer: Layer::Lower,
                });
                n_lower += 1;
            }
            _ => {
                let upper = rng.gen_range(0..n_upper);
                let lower = rng.gen_range(0..n_lower);
                if rng.gen_range(0..4) < 3 {
                    stream.push(GraphDelta::AddEdge { upper, lower });
                } else {
                    stream.push(GraphDelta::RemoveEdge { upper, lower });
                }
            }
        }
    }
    stream
}

/// Full-precision fingerprint comparison of two batch reports: estimate
/// bits, budget ledger, transcript, and the serialized form.
fn assert_reports_identical(sharded: &cne::BatchReport, reference: &cne::BatchReport) {
    let bits = |r: &cne::BatchReport| -> Vec<u64> {
        r.estimates.iter().map(|e| e.estimate.to_bits()).collect()
    };
    assert_eq!(bits(sharded), bits(reference));
    assert_eq!(sharded.budget, reference.budget);
    assert_eq!(sharded.transcript, reference.transcript);
    assert_eq!(
        serde_json::to_string(sharded).unwrap(),
        serde_json::to_string(reference).unwrap()
    );
}

/// The headline contract: for random 1/2/4-shard partitions, reports
/// concatenated across worker processes equal an unsharded engine's byte
/// for byte — at the bootstrap state AND after a replicated update
/// stream with vertex growth.
#[test]
fn sharded_reports_match_unsharded_engine_byte_for_byte() {
    let graph = base_graph();
    let mut partition_rng = StdRng::seed_from_u64(0xC1A5);
    for shards in [1usize, 2, 4] {
        let ranges = random_partition(&mut partition_rng, shards);
        let dir = socket_dir(&format!("swap{shards}"));
        let mut coordinator = Coordinator::spawn_partitioned(
            &graph,
            Layer::Upper,
            ranges.clone(),
            &dir,
            ClusterConfig::default(),
            |spec| cluster::worker_command(&worker_bin(), spec).spawn(),
        )
        .unwrap_or_else(|e| panic!("spawn {shards} shards {ranges:?}: {e}"));

        // Reference: one unsharded engine over the identical state.
        let mut reference = EstimationEngine::from_graph(graph.clone());

        for (target, seed) in [(0u32, 7u64), (3, 8), (9, 9)] {
            let candidates: Vec<u32> = (0..N_UPPER as u32).filter(|&w| w != target).collect();
            let from_cluster = coordinator
                .estimate_batch(Layer::Upper, target, &candidates, EPSILON, seed)
                .unwrap();
            let from_engine = reference
                .estimate_batch(
                    Layer::Upper,
                    target,
                    &candidates,
                    EPSILON,
                    &mut StdRng::seed_from_u64(seed),
                )
                .unwrap();
            assert_reports_identical(&from_cluster, &from_engine);
        }

        // Replicate a mixed update stream (routed edges + broadcast
        // vertex growth) and re-compare on the post-update state.
        let stream = update_stream(41);
        coordinator.extend(stream.iter().copied());
        coordinator.flush().unwrap();
        let batch: bigraph::UpdateBatch = stream.into_iter().collect();
        reference.apply_updates(&batch).unwrap();

        // Candidates include a vertex appended by the stream (owned by
        // the open-ended last range on every partition).
        let grown = reference.graph().n_upper() as u32 - 1;
        for (target, seed) in [(0u32, 17u64), (grown, 23)] {
            let candidates: Vec<u32> = (0..N_UPPER as u32)
                .chain([grown])
                .filter(|&w| w != target)
                .collect();
            let from_cluster = coordinator
                .estimate_batch(Layer::Upper, target, &candidates[..], EPSILON, seed)
                .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let from_engine = reference
                .estimate_batch(Layer::Upper, target, &candidates[..], EPSILON, &mut rng)
                .unwrap();
            assert_reports_identical(&from_cluster, &from_engine);
        }
        // Sanity on the roll-up while everything is still healthy.
        let stats = coordinator.stats();
        assert_eq!(stats.healthy_workers, shards);
        assert_eq!(stats.max_ingest_lag, 0, "flush drained every worker");
        drop(coordinator);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Worker-reported query errors surface as typed remote errors, not
/// protocol failures: validation runs on the shard that owns the target.
#[test]
fn invalid_queries_surface_as_remote_errors() {
    let graph = base_graph();
    let dir = socket_dir("invalid");
    let mut coordinator = Coordinator::spawn_program(
        &graph,
        Layer::Upper,
        2,
        &dir,
        ClusterConfig::default(),
        &worker_bin(),
    )
    .unwrap();
    // Duplicate candidate: rejected by round-1 validation on the owner.
    let err = coordinator
        .estimate_batch(Layer::Upper, 0, &[1, 2, 1], EPSILON, 5)
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::Remote { code: 2, .. }),
        "got {err:?}"
    );
    // Wrong layer: rejected coordinator-side before any fan-out.
    let err = coordinator
        .estimate_batch(Layer::Lower, 0, &[1, 2], EPSILON, 5)
        .unwrap_err();
    assert!(matches!(err, ClusterError::Query(_)), "got {err:?}");
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing a worker must convert the next fan-out touching its shard
/// into [`ClusterError::PartialResult`] naming the dead worker, within
/// the coordinator's (short) timeout budget — never a hang.
#[test]
fn killed_worker_yields_typed_partial_result_within_timeout() {
    let graph = base_graph();
    let dir = socket_dir("kill");
    let config = ClusterConfig {
        retry: cluster::RetryPolicy {
            connect_timeout: Duration::from_millis(400),
            backoff_base: Duration::from_millis(10),
            io_timeout: Duration::from_millis(1500),
            ..cluster::RetryPolicy::baseline()
        },
        ..ClusterConfig::default()
    };
    let mut coordinator =
        Coordinator::spawn_program(&graph, Layer::Upper, 2, &dir, config, &worker_bin()).unwrap();
    let candidates: Vec<u32> = (1..N_UPPER as u32).collect();
    // Healthy first: both shards answer.
    coordinator
        .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, 1)
        .unwrap();

    coordinator.kill_worker(1).unwrap();

    // Target owned by worker 0 (alive) ⇒ round 1 succeeds, round 2 is
    // missing worker 1's slice.
    let start = Instant::now();
    let err = coordinator
        .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, 2)
        .unwrap_err();
    let elapsed = start.elapsed();
    match err {
        ClusterError::PartialResult { missing, context } => {
            assert_eq!(missing, vec![1]);
            assert_eq!(context, "round 2");
        }
        other => panic!("expected PartialResult, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "partial-result error took {elapsed:?}, coordinator hung past its timeouts"
    );

    // Target owned by the dead worker ⇒ round 1 itself reports partial.
    let dead_target = (N_UPPER - 1) as u32;
    let err = coordinator
        .estimate_batch(Layer::Upper, dead_target, &[0, 1], EPSILON, 3)
        .unwrap_err();
    assert!(
        matches!(
            err,
            ClusterError::PartialResult { ref missing, context: "round 1" } if missing == &[1]
        ),
        "got {err:?}"
    );

    // The roll-up reports the dead worker unhealthy instead of failing.
    let stats = coordinator.stats();
    assert_eq!(stats.healthy_workers, 1);
    assert!(!stats.workers[1].healthy);
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The recovery contract: a cluster spawned from a **snapshot** rebuilds
/// a killed worker — respawn, snapshot re-bootstrap, drained-tail replay
/// (non-idempotent `AddVertex` included), flush — and both pre-kill and
/// post-recovery reports stay byte-identical to an unsharded engine over
/// the same stream.
#[test]
fn killed_worker_is_rebuilt_from_snapshot_with_byte_identical_reports() {
    let graph = base_graph();
    let dir = socket_dir("supervise");
    let snapshot = bigraph::snapshot::GraphSnapshot::capture(&graph, 0);
    let mut coordinator = Coordinator::spawn_program_from_snapshot(
        &snapshot,
        Layer::Upper,
        3,
        &dir,
        ClusterConfig::default(),
        &worker_bin(),
    )
    .unwrap();
    let mut reference = EstimationEngine::from_graph(graph.clone());

    // Snapshot bootstrap itself must be invisible to the protocol.
    let candidates: Vec<u32> = (1..N_UPPER as u32).collect();
    let from_cluster = coordinator
        .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, 3)
        .unwrap();
    let from_engine = reference
        .estimate_batch(
            Layer::Upper,
            0,
            &candidates,
            EPSILON,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
    assert_reports_identical(&from_cluster, &from_engine);

    // Replicate and drain a stream prefix, so the rebuild has a real
    // retained tail to replay on top of the sequence-0 snapshot.
    let stream = update_stream(77);
    let (head, rest) = stream.split_at(300);
    coordinator.extend(head.iter().copied());
    coordinator.flush().unwrap();

    // Kill the middle worker; one supervision pass must rebuild exactly
    // it, and a second pass must find nothing to do.
    coordinator.kill_worker(1).unwrap();
    assert_eq!(coordinator.supervise().unwrap(), vec![1]);
    assert!(
        coordinator.supervise().unwrap().is_empty(),
        "healthy cluster has nothing to rebuild"
    );

    // Deltas appended after recovery reach the rebuilt worker through
    // the normal pump, like every other worker.
    coordinator.extend(rest.iter().copied());
    coordinator.flush().unwrap();
    let batch: bigraph::UpdateBatch = stream.iter().copied().collect();
    reference.apply_updates(&batch).unwrap();

    // Target 5 is owned by the rebuilt middle shard (even split of 12
    // into 3: ranges 0..4, 4..8, 8..MAX); `grown` by the open-ended one.
    let grown = reference.graph().n_upper() as u32 - 1;
    for (target, seed) in [(0u32, 31u64), (5, 37), (grown, 41)] {
        let candidates: Vec<u32> = (0..N_UPPER as u32)
            .chain([grown])
            .filter(|&w| w != target)
            .collect();
        let from_cluster = coordinator
            .estimate_batch(Layer::Upper, target, &candidates, EPSILON, seed)
            .unwrap();
        let from_engine = reference
            .estimate_batch(
                Layer::Upper,
                target,
                &candidates,
                EPSILON,
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap();
        assert_reports_identical(&from_cluster, &from_engine);
    }
    let stats = coordinator.stats();
    assert_eq!(stats.healthy_workers, 3);
    assert_eq!(stats.max_ingest_lag, 0);
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cluster restart into the same directory reuses the on-disk shard
/// files (the manifest matches, so no shard is re-derived) and serves
/// byte-identically; a spawn whose parameters differ (another partition
/// width) invalidates the manifest and rewrites instead of adopting
/// wrong-shard files.
#[test]
fn cluster_restart_reuses_shard_files_behind_the_manifest() {
    let graph = base_graph();
    let dir = socket_dir("reuse");
    let snapshot = bigraph::snapshot::GraphSnapshot::capture(&graph, 0);
    let spawn = |dir: &std::path::Path, n: usize| {
        Coordinator::spawn_program_from_snapshot(
            &snapshot,
            Layer::Upper,
            n,
            dir,
            ClusterConfig::default(),
            &worker_bin(),
        )
        .unwrap()
    };
    let shard_mtime = |i: usize| {
        std::fs::metadata(dir.join(format!("shard-{i}.snap")))
            .unwrap()
            .modified()
            .unwrap()
    };
    let candidates: Vec<u32> = (1..N_UPPER as u32).collect();
    let mut first = spawn(&dir, 3);
    let before = first
        .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, 3)
        .unwrap();
    drop(first);
    let stamps: Vec<_> = (0..3).map(shard_mtime).collect();

    // Same parameters: the files are adopted as-is, reports unchanged.
    let mut again = spawn(&dir, 3);
    assert_eq!(
        (0..3).map(shard_mtime).collect::<Vec<_>>(),
        stamps,
        "matching manifest must reuse the shard files, not rewrite them"
    );
    let after = again
        .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, 3)
        .unwrap();
    assert_reports_identical(&before, &after);
    drop(again);

    // A different partition invalidates the manifest: shard files are
    // re-derived for the new cuts and the cluster still answers right.
    let mut repartitioned = spawn(&dir, 2);
    assert_ne!(
        shard_mtime(0),
        stamps[0],
        "a different partition must rewrite the shard files"
    );
    // The 3-worker layout's third file is now unreferenced by the
    // manifest; the respawn must have swept it rather than letting
    // orphans accumulate per layout change.
    assert!(
        !dir.join("shard-2.snap").exists(),
        "a shard file the manifest no longer names must be GC'd"
    );
    let split = repartitioned
        .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, 3)
        .unwrap();
    assert_reports_identical(&before, &split);
    drop(repartitioned);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Edge-bootstrapped clusters retain no snapshot source: supervision of
/// a dead worker reports the typed error instead of silently skipping.
#[test]
fn supervision_without_snapshot_source_is_a_typed_error() {
    let graph = base_graph();
    let dir = socket_dir("nosrc");
    let mut coordinator = Coordinator::spawn_program(
        &graph,
        Layer::Upper,
        2,
        &dir,
        ClusterConfig::default(),
        &worker_bin(),
    )
    .unwrap();
    assert!(coordinator.supervise().unwrap().is_empty());
    coordinator.kill_worker(0).unwrap();
    let err = coordinator.supervise().unwrap_err();
    assert!(
        matches!(err, ClusterError::NoSnapshotSource { worker: 0 }),
        "got {err:?}"
    );
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker that merely loses its connection (not its process) is picked
/// back up by the coordinator's reconnect-and-resend retry: state
/// survives across connections.
#[test]
fn stats_rollup_aggregates_worker_counters() {
    let graph = base_graph();
    let dir = socket_dir("stats");
    let mut coordinator = Coordinator::spawn_program(
        &graph,
        Layer::Upper,
        2,
        &dir,
        ClusterConfig::default(),
        &worker_bin(),
    )
    .unwrap();
    let stream = update_stream(99);
    let n_deltas = stream.len() as u64;
    let broadcasts = stream
        .iter()
        .filter(|d| matches!(d, GraphDelta::AddVertex { .. }))
        .count() as u64;
    coordinator.extend(stream);
    coordinator.flush().unwrap();
    let stats = coordinator.stats();
    assert_eq!(stats.healthy_workers, 2);
    // Edge deltas land on exactly one worker; AddVertex on both.
    assert_eq!(stats.appended, n_deltas + broadcasts);
    assert_eq!(stats.published, stats.appended);
    assert_eq!(stats.max_ingest_lag, 0);
    assert_eq!(stats.rejected, 0);
    assert!(stats.min_epoch >= 1, "every worker published at least once");
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Live shard rebalancing under deterministic fault injection (ISSUE 10
//! tentpole): splitting and merging contiguous vertex ranges without a
//! full respawn must keep reports **byte-identical** to an unsharded
//! engine, with **zero failed queries** on the clean path — before,
//! between, and after every step of the rebalance state machine. Under
//! injected faults (worker kills at any step, torn shard files,
//! corrupted/dropped frames, stalled sockets) the coordinator must never
//! hang past its deadline budget: it either rolls back to the old
//! topology (still serving, zero divergence) or completes via
//! supervision, and recovery is reproducible from the fault plan's
//! printed seed.
//!
//! The clean-path tests pin an inert fault injector and scrub
//! `CNE_FAULT_PLAN` from worker environments, so they hold even when a
//! chaos leg armed the variable globally. The `chaos_` tests arm plans
//! programmatically; `chaos_env_fault_plan_leg` is the CI matrix entry
//! point and reads whatever plan the job exported.

use bigraph::snapshot::GraphSnapshot;
use bigraph::{BipartiteGraph, GraphDelta, Layer};
use cluster::{
    ClusterConfig, ClusterError, Coordinator, FaultInjector, FaultPlan, RebalanceStatus,
    RetryPolicy, FAULT_PLAN_ENV,
};
use cne::EstimationEngine;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const N_UPPER: usize = 12;
const N_LOWER: usize = 96; // ≥ 64 so some vertices cross the dense threshold
const EPSILON: f64 = 2.0;

/// Same base graph as the swap suite: dense enough that several upper
/// vertices take the packed (cache-hitting) dispatch.
fn base_graph() -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..N_UPPER as u32 {
        let degree = 3 + (u * 7) % 40;
        for k in 0..degree {
            edges.push((u, (u * 31 + k * 5) % N_LOWER as u32));
        }
    }
    BipartiteGraph::from_edges(N_UPPER, N_LOWER, edges).unwrap()
}

/// A fresh socket directory per coordinator, so parallel tests never
/// collide on socket paths.
fn socket_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cne-rebalance-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_shard-worker"))
}

/// Test tuning: short enough deadlines that a dead worker is detected in
/// well under a second, generous enough that a loaded CI host never
/// false-positives. Chaos legs rely on these bounds to prove "never
/// hangs".
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(400),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        io_timeout: Duration::from_millis(1500),
        teardown_deadline: Duration::from_secs(2),
    }
}

fn config_with(faults: std::sync::Arc<FaultInjector>) -> ClusterConfig {
    ClusterConfig {
        retry: test_retry(),
        pump_chunk: 64, // small chunks: replication/replay cross frame boundaries
        faults,
    }
}

/// A config whose injector is explicitly inert, immune to any
/// `CNE_FAULT_PLAN` in the test process's environment.
fn inert_config() -> ClusterConfig {
    config_with(FaultInjector::from_plan(FaultPlan::default()))
}

/// Spawns a snapshot-bootstrapped cluster whose workers have
/// `CNE_FAULT_PLAN` scrubbed — fully hermetic regardless of the outer
/// environment.
fn spawn_hermetic(
    snapshot: &GraphSnapshot,
    ranges: Vec<Range<u32>>,
    dir: &std::path::Path,
    config: ClusterConfig,
) -> Coordinator {
    Coordinator::spawn_partitioned_from_snapshot(snapshot, Layer::Upper, ranges, dir, config, {
        let bin = worker_bin();
        move |spec| {
            let mut cmd = cluster::worker_command(&bin, spec);
            cmd.env_remove(FAULT_PLAN_ENV);
            cmd.spawn()
        }
    })
    .unwrap()
}

/// A deterministic mixed update stream: edge churn plus vertex growth on
/// both layers, exercising the routed and broadcast replication paths.
fn update_stream(seed: u64, len: usize, n_upper: &mut u32, n_lower: &mut u32) -> Vec<GraphDelta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::new();
    for i in 0..len {
        match i % 10 {
            0 => {
                stream.push(GraphDelta::AddVertex {
                    layer: Layer::Upper,
                });
                *n_upper += 1;
            }
            5 => {
                stream.push(GraphDelta::AddVertex {
                    layer: Layer::Lower,
                });
                *n_lower += 1;
            }
            _ => {
                let upper = rng.gen_range(0..*n_upper);
                let lower = rng.gen_range(0..*n_lower);
                if rng.gen_range(0..4) < 3 {
                    stream.push(GraphDelta::AddEdge { upper, lower });
                } else {
                    stream.push(GraphDelta::RemoveEdge { upper, lower });
                }
            }
        }
    }
    stream
}

/// Full-precision fingerprint comparison of two batch reports.
fn assert_reports_identical(sharded: &cne::BatchReport, reference: &cne::BatchReport) {
    let bits = |r: &cne::BatchReport| -> Vec<u64> {
        r.estimates.iter().map(|e| e.estimate.to_bits()).collect()
    };
    assert_eq!(bits(sharded), bits(reference));
    assert_eq!(sharded.budget, reference.budget);
    assert_eq!(sharded.transcript, reference.transcript);
    assert_eq!(
        serde_json::to_string(sharded).unwrap(),
        serde_json::to_string(reference).unwrap()
    );
}

/// Queries the cluster and the reference engine with the same inputs and
/// asserts byte-identity. Any `Err` from the cluster counts as a failed
/// query — the clean-path contract is that there are none, ever.
fn assert_query_identical(
    coordinator: &mut Coordinator,
    reference: &mut EstimationEngine,
    seed: u64,
) {
    let n_upper = reference.graph().n_upper() as u32;
    let target = seed as u32 % n_upper;
    let candidates: Vec<u32> = (0..n_upper).filter(|&w| w != target).collect();
    let from_cluster = coordinator
        .estimate_batch(Layer::Upper, target, &candidates, EPSILON, seed)
        .unwrap_or_else(|e| panic!("query (seed {seed}) failed: {e}"));
    let from_engine = reference
        .estimate_batch(
            Layer::Upper,
            target,
            &candidates,
            EPSILON,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
    assert_reports_identical(&from_cluster, &from_engine);
}

/// Feeds `stream` to both sides and barriers the cluster.
fn feed(coordinator: &mut Coordinator, reference: &mut EstimationEngine, stream: Vec<GraphDelta>) {
    coordinator.extend(stream.iter().copied());
    coordinator.flush().unwrap();
    let batch: bigraph::UpdateBatch = stream.into_iter().collect();
    reference.apply_updates(&batch).unwrap();
}

/// The headline clean-path contract: split 2→4 and merge 4→2 (with a
/// shifted cut) **live**, under an update stream, with queries
/// interleaved between every step of both rebalances — every query
/// succeeds and every report is byte-identical to the unsharded engine.
#[test]
fn live_split_and_merge_are_byte_identical_with_zero_failed_queries() {
    let graph = base_graph();
    let dir = socket_dir("clean");
    let snapshot = GraphSnapshot::capture(&graph, 0);
    let mut coordinator = spawn_hermetic(&snapshot, vec![0..6, 6..u32::MAX], &dir, inert_config());
    let mut reference = EstimationEngine::from_graph(graph);
    let (mut n_upper, mut n_lower) = (N_UPPER as u32, N_LOWER as u32);

    assert_query_identical(&mut coordinator, &mut reference, 1);
    feed(
        &mut coordinator,
        &mut reference,
        update_stream(11, 120, &mut n_upper, &mut n_lower),
    );
    assert_query_identical(&mut coordinator, &mut reference, 2);

    // Split 2→4, stepping the machine by hand with live traffic —
    // updates and a query — between every pair of steps.
    coordinator
        .begin_rebalance(vec![0..3, 3..6, 6..9, 9..u32::MAX])
        .unwrap();
    let mut step_seed = 100u64;
    while let Some(step) = coordinator.rebalance_in_flight() {
        feed(
            &mut coordinator,
            &mut reference,
            update_stream(step_seed, 30, &mut n_upper, &mut n_lower),
        );
        assert_query_identical(&mut coordinator, &mut reference, step_seed);
        let status = coordinator
            .rebalance_step()
            .unwrap_or_else(|e| panic!("clean-path step {} failed: {e}", step.name()));
        if status == RebalanceStatus::Complete {
            break;
        }
        step_seed += 1;
    }
    assert_eq!(coordinator.n_workers(), 4);
    assert_eq!(coordinator.generation(), 1);
    assert!(coordinator.rebalance_in_flight().is_none());
    assert_query_identical(&mut coordinator, &mut reference, 3);

    // More churn on the 4-way topology, then merge 4→2 with a *shifted*
    // cut (7, not the original 6) through the one-call driver.
    feed(
        &mut coordinator,
        &mut reference,
        update_stream(13, 120, &mut n_upper, &mut n_lower),
    );
    coordinator.rebalance(vec![0..7, 7..u32::MAX]).unwrap();
    assert_eq!(coordinator.n_workers(), 2);
    assert_eq!(coordinator.generation(), 2);
    assert_query_identical(&mut coordinator, &mut reference, 4);

    // And an even-split driver pass for good measure (2→3 over the
    // grown layer), proving repeated rebalances compose.
    coordinator.rebalance_to(3).unwrap();
    assert_eq!(coordinator.n_workers(), 3);
    assert_query_identical(&mut coordinator, &mut reference, 5);

    // A dead worker *after* everything is an ordinary supervision case:
    // the post-rebalance snapshot source must rebuild it good as new.
    coordinator.kill_worker(0).unwrap();
    assert_eq!(coordinator.supervise().unwrap(), vec![0]);
    assert_query_identical(&mut coordinator, &mut reference, 6);

    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Misuse is typed, not a panic or a hang: rebalancing an edge-list
/// bootstrapped cluster (no base graph) and double-begin both surface
/// [`ClusterError::Rebalance`] at step `"begin"` with `rolled_back:
/// true`, leaving the cluster serving exactly as before.
#[test]
fn rebalance_misuse_is_a_typed_begin_error() {
    let graph = base_graph();

    // Edge-list bootstrap: no snapshot source, no base graph.
    let dir = socket_dir("misuse-edges");
    let mut coordinator = Coordinator::spawn_with(&graph, Layer::Upper, 2, &dir, inert_config(), {
        let bin = worker_bin();
        move |spec| {
            let mut cmd = cluster::worker_command(&bin, spec);
            cmd.env_remove(FAULT_PLAN_ENV);
            cmd.spawn()
        }
    })
    .unwrap();
    let err = coordinator.rebalance_to(4).unwrap_err();
    match err {
        ClusterError::Rebalance {
            step: "begin",
            rolled_back: true,
            ..
        } => {}
        other => panic!("expected typed begin error, got {other:?}"),
    }
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);

    // Double-begin: the second begin is rejected, the first stays armed
    // and still drives to completion.
    let dir = socket_dir("misuse-double");
    let snapshot = GraphSnapshot::capture(&graph, 0);
    let mut coordinator = spawn_hermetic(&snapshot, vec![0..6, 6..u32::MAX], &dir, inert_config());
    coordinator
        .begin_rebalance(vec![0..4, 4..u32::MAX])
        .unwrap();
    let err = coordinator
        .begin_rebalance(vec![0..5, 5..u32::MAX])
        .unwrap_err();
    match err {
        ClusterError::Rebalance {
            step: "begin",
            rolled_back: true,
            ..
        } => {}
        other => panic!("expected typed begin error, got {other:?}"),
    }
    while coordinator.rebalance_step().unwrap() != RebalanceStatus::Complete {}
    assert_eq!(coordinator.ranges(), &[0..4, 4..u32::MAX][..]);
    // Stepping with nothing in flight is the same typed misuse.
    assert!(matches!(
        coordinator.rebalance_step().unwrap_err(),
        ClusterError::Rebalance { step: "begin", .. }
    ));
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A non-contiguous target partition is a programming error, caught by
/// the same cover assertion the spawn paths use.
#[test]
#[should_panic(expected = "contiguous")]
#[allow(clippy::single_range_in_vec_init)]
fn malformed_rebalance_partition_panics() {
    let graph = base_graph();
    let dir = socket_dir("malformed");
    let snapshot = GraphSnapshot::capture(&graph, 0);
    let mut coordinator = spawn_hermetic(&snapshot, Vec::from([0..u32::MAX]), &dir, inert_config());
    // Gap between 5 and 6: not a cover.
    let _ = coordinator.begin_rebalance(vec![0..5, 6..u32::MAX]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Randomized rebalance plans: random contiguous partitions into
    /// 1/2/4 shards, chained (so splits, merges, and shifted cuts all
    /// occur), interleaved with update batches — byte-identity and the
    /// zero-failure contract hold at every stage. Runs under the
    /// `RAYON_NUM_THREADS=1/4/8` and `CNE_FORCE_PORTABLE_KERNELS=1` CI
    /// matrix like the swap suite.
    #[test]
    fn random_rebalance_plans_preserve_byte_identity(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = base_graph();
        let dir = socket_dir(&format!("prop{seed}"));
        let snapshot = GraphSnapshot::capture(&graph, 0);
        let random_partition = |rng: &mut StdRng| {
            let shards = [1usize, 2, 4][rng.gen_range(0..3usize)];
            let mut cuts: Vec<u32> = Vec::new();
            while cuts.len() < shards - 1 {
                let c = rng.gen_range(1..N_UPPER as u32);
                if !cuts.contains(&c) {
                    cuts.push(c);
                }
            }
            cuts.sort_unstable();
            let mut ranges = Vec::with_capacity(shards);
            let mut lo = 0u32;
            for c in cuts {
                ranges.push(lo..c);
                lo = c;
            }
            ranges.push(lo..u32::MAX);
            ranges
        };
        let initial = random_partition(&mut rng);
        let mut coordinator = spawn_hermetic(&snapshot, initial, &dir, inert_config());
        let mut reference = EstimationEngine::from_graph(graph);
        let (mut n_upper, mut n_lower) = (N_UPPER as u32, N_LOWER as u32);
        for round in 0..2u64 {
            feed(
                &mut coordinator,
                &mut reference,
                update_stream(seed ^ round, 60, &mut n_upper, &mut n_lower),
            );
            assert_query_identical(&mut coordinator, &mut reference, seed ^ (round * 31 + 7));
            let next = random_partition(&mut rng);
            coordinator.rebalance(next.clone()).unwrap();
            prop_assert_eq!(coordinator.ranges(), &next[..]);
            assert_query_identical(&mut coordinator, &mut reference, seed ^ (round * 31 + 13));
        }
        drop(coordinator);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// --------------------------------------------------------------- chaos

/// Harness shared by the programmatic chaos legs: spawn 2 workers from a
/// snapshot with `plan` armed coordinator-side, churn, then return
/// everything needed to attempt a rebalance and verify recovery.
fn chaos_setup(
    tag: &str,
    plan: &str,
) -> (
    Coordinator,
    EstimationEngine<'static>,
    PathBuf,
    std::sync::Arc<FaultInjector>,
) {
    let graph = base_graph();
    let dir = socket_dir(tag);
    let snapshot = GraphSnapshot::capture(&graph, 0);
    let faults = FaultInjector::from_plan(FaultPlan::parse(plan).unwrap());
    let mut coordinator = spawn_hermetic(
        &snapshot,
        vec![0..6, 6..u32::MAX],
        &dir,
        config_with(std::sync::Arc::clone(&faults)),
    );
    let mut reference = EstimationEngine::from_graph(graph);
    let (mut n_upper, mut n_lower) = (N_UPPER as u32, N_LOWER as u32);
    feed(
        &mut coordinator,
        &mut reference,
        update_stream(0xC4A05, 100, &mut n_upper, &mut n_lower),
    );
    (coordinator, reference, dir, faults)
}

/// An old worker crashes the instant the rebalance starts quiescing: the
/// step fails, the rebalance rolls back (typed, `rolled_back: true`),
/// supervision rebuilds the dead worker from the *old* snapshot source,
/// and the retried rebalance — the kill directive is one-shot — lands.
/// Byte-identity holds at every stage. Reproduce with
/// `CNE_FAULT_PLAN='seed=101;kill=quiesce:old0'`.
#[test]
fn chaos_kill_old_worker_at_quiesce_rolls_back_then_retry_succeeds() {
    let (mut coordinator, mut reference, dir, _faults) =
        chaos_setup("kill-old", "seed=101;kill=quiesce:old0");
    let started = Instant::now();
    let err = coordinator.rebalance_to(4).unwrap_err();
    match err {
        ClusterError::Rebalance {
            step: "quiesce",
            rolled_back: true,
            ..
        } => {}
        other => panic!("expected rolled-back quiesce failure, got {other:?}"),
    }
    // Bounded: two exchange attempts × (connect retry budget + IO
    // deadline) with margin, never a hang.
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "failure detection must be deadline-bounded, took {:?}",
        started.elapsed()
    );
    // Old topology, one dead worker: supervision rebuilds it, after
    // which the cluster serves byte-identically.
    assert_eq!(coordinator.n_workers(), 2, "old topology retained");
    assert_eq!(coordinator.supervise().unwrap(), vec![0]);
    assert_query_identical(&mut coordinator, &mut reference, 31);
    // One-shot directive: the retry goes clean.
    coordinator.rebalance_to(4).unwrap();
    assert_eq!(coordinator.n_workers(), 4);
    assert_query_identical(&mut coordinator, &mut reference, 32);
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An incoming worker dies right as bootstrap begins: rollback kills the
/// staged generation, the old workers never stopped serving (no
/// supervision needed), and the retry lands. Reproduce with
/// `CNE_FAULT_PLAN='seed=102;kill=bootstrap:new0'`.
#[test]
fn chaos_kill_new_worker_mid_bootstrap_rolls_back_without_downtime() {
    let (mut coordinator, mut reference, dir, _faults) =
        chaos_setup("kill-new", "seed=102;kill=bootstrap:new0");
    let err = coordinator.rebalance_to(4).unwrap_err();
    match err {
        ClusterError::Rebalance {
            step: "bootstrap",
            rolled_back: true,
            ..
        } => {}
        other => panic!("expected rolled-back bootstrap failure, got {other:?}"),
    }
    // The old generation was never touched: queries succeed immediately,
    // and supervision finds nothing to rebuild.
    assert_eq!(coordinator.n_workers(), 2);
    assert_query_identical(&mut coordinator, &mut reference, 41);
    assert!(coordinator.supervise().unwrap().is_empty());
    coordinator.rebalance_to(4).unwrap();
    assert_query_identical(&mut coordinator, &mut reference, 42);
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn shard-file write (crash between write and fsync, modeled as a
/// seed-chosen strict prefix) is caught by the adopting worker's
/// checksum validation at bootstrap — rollback, no divergence, retry
/// lands. Reproduce with `CNE_FAULT_PLAN='seed=104;torn=2'`.
#[test]
fn chaos_torn_shard_file_rolls_back_then_retry_succeeds() {
    let (mut coordinator, mut reference, dir, _faults) = chaos_setup("torn", "seed=104;torn=2");
    let err = coordinator.rebalance_to(4).unwrap_err();
    match err {
        ClusterError::Rebalance {
            step: "bootstrap",
            rolled_back: true,
            ..
        } => {}
        other => panic!("expected rolled-back bootstrap failure, got {other:?}"),
    }
    assert_query_identical(&mut coordinator, &mut reference, 51);
    // Rollback must have deleted the staged generation's files.
    let staged: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("shard-g1-"))
        .collect();
    assert!(
        staged.is_empty(),
        "staged files must be rolled back: {staged:?}"
    );
    coordinator.rebalance_to(4).unwrap();
    assert_query_identical(&mut coordinator, &mut reference, 52);
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted request frame is *detected* (frame checksum) and
/// transparently retried via reconnect-and-resend — the full flow,
/// including a live rebalance, completes with byte-identity intact and
/// zero surfaced errors. Reproduce with
/// `CNE_FAULT_PLAN='seed=103;corrupt=4'`.
#[test]
fn chaos_corrupt_frame_is_detected_and_transparently_retried() {
    let (mut coordinator, mut reference, dir, _faults) =
        chaos_setup("corrupt", "seed=103;corrupt=4");
    assert_query_identical(&mut coordinator, &mut reference, 61);
    coordinator.rebalance_to(4).unwrap();
    assert_query_identical(&mut coordinator, &mut reference, 62);
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A dropped request frame (swallowed before the socket) forces the read
/// to hit the IO deadline; the reconnect-and-resend retry recovers and
/// the flow completes clean. Reproduce with
/// `CNE_FAULT_PLAN='seed=106;drop=3'`.
#[test]
fn chaos_dropped_frame_recovers_at_the_io_deadline() {
    let (mut coordinator, mut reference, dir, _faults) = chaos_setup("drop", "seed=106;drop=3");
    let started = Instant::now();
    assert_query_identical(&mut coordinator, &mut reference, 71);
    coordinator.rebalance_to(4).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "drop recovery must be deadline-bounded, took {:?}",
        started.elapsed()
    );
    assert_query_identical(&mut coordinator, &mut reference, 72);
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker stalls one response past the coordinator's IO deadline (the
/// stalled-socket leg, armed worker-side through the inherited
/// environment): the coordinator times out, reconnects, resends, and the
/// flow completes clean — never a hang. Reproduce with
/// `CNE_FAULT_PLAN='seed=105;stall=3:2500'`.
#[test]
fn chaos_stalled_socket_recovers_within_the_deadline_budget() {
    let graph = base_graph();
    let dir = socket_dir("stall");
    let snapshot = GraphSnapshot::capture(&graph, 0);
    // Coordinator-side inert; the plan reaches only the *workers*, via
    // an explicit per-child env (not the test process's environment).
    let plan = "seed=105;stall=3:2500";
    let mut coordinator = Coordinator::spawn_partitioned_from_snapshot(
        &snapshot,
        Layer::Upper,
        vec![0..6, 6..u32::MAX],
        &dir,
        inert_config(),
        {
            let bin = worker_bin();
            move |spec| {
                let mut cmd = cluster::worker_command(&bin, spec);
                cmd.env(FAULT_PLAN_ENV, plan);
                cmd.spawn()
            }
        },
    )
    .unwrap();
    let mut reference = EstimationEngine::from_graph(graph);
    let (mut n_upper, mut n_lower) = (N_UPPER as u32, N_LOWER as u32);
    let started = Instant::now();
    feed(
        &mut coordinator,
        &mut reference,
        update_stream(0x57A11, 100, &mut n_upper, &mut n_lower),
    );
    assert_query_identical(&mut coordinator, &mut reference, 81);
    coordinator.rebalance_to(4).unwrap();
    assert_query_identical(&mut coordinator, &mut reference, 82);
    // Both workers stall their 3rd response for 2.5s against a 1.5s IO
    // deadline; each recovery costs one deadline + one resend. Anything
    // near a hang blows this budget.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "stall recovery must be deadline-bounded, took {:?}",
        started.elapsed()
    );
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI chaos-matrix entry point: reads `CNE_FAULT_PLAN` from the
/// environment (skips when unset) and drives the full scenario — spawn,
/// churn, rebalance 2→4 with queries between steps, recover, verify.
/// Whatever the leg injects, the contract is the same: no hang past the
/// deadline budget, a typed rolled-back error or clean completion, a
/// recovery path that converges, and byte-identity at the end —
/// reproducible from the plan echoed on stderr.
#[test]
fn chaos_env_fault_plan_leg() {
    let Ok(plan) = std::env::var(FAULT_PLAN_ENV) else {
        eprintln!("chaos_env_fault_plan_leg: {FAULT_PLAN_ENV} unset, skipping");
        return;
    };
    let started = Instant::now();
    let graph = base_graph();
    let dir = socket_dir("env-leg");
    let snapshot = GraphSnapshot::capture(&graph, 0);
    // ClusterConfig::default() arms the env plan coordinator-side and
    // honors the job's CNE_CLUSTER_*_MS deadline overrides; workers
    // inherit the env (and with it the worker-side directives).
    let mut coordinator = Coordinator::spawn_program_from_snapshot(
        &snapshot,
        Layer::Upper,
        2,
        &dir,
        ClusterConfig::default(),
        &worker_bin(),
    )
    .unwrap();
    let mut reference = EstimationEngine::from_graph(graph);
    let (mut n_upper, mut n_lower) = (N_UPPER as u32, N_LOWER as u32);
    feed(
        &mut coordinator,
        &mut reference,
        update_stream(0xE41, 100, &mut n_upper, &mut n_lower),
    );

    // Attempt the rebalance; a fault may abort it mid-flight. The
    // contract on failure: typed, named step, rolled back, old topology
    // still serving (possibly minus a killed worker, which supervision
    // rebuilds). Retry until it lands — every directive is one-shot, so
    // the second attempt at the latest goes clean.
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts <= 3, "rebalance did not converge in 3 attempts");
        match coordinator.rebalance_to(4) {
            Ok(()) => break,
            Err(ClusterError::Rebalance {
                step,
                rolled_back,
                source,
            }) => {
                assert!(
                    rolled_back,
                    "pre-commit failure at `{step}` must roll back ({source})"
                );
                // Rebuild whatever the fault killed, then retry.
                coordinator.supervise().unwrap();
            }
            Err(other) => panic!("expected a typed rebalance error, got {other}"),
        }
    }
    assert_eq!(coordinator.n_workers(), 4);
    assert_query_identical(&mut coordinator, &mut reference, 91);
    // Absolute anti-hang budget for the whole leg, deadline overrides
    // included: generous for CI, fatal for an actual hang.
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "chaos leg must stay inside its deadline budget, took {:?}",
        started.elapsed()
    );
    eprintln!(
        "chaos_env_fault_plan_leg: plan `{plan}` converged in {attempts} attempt(s), {:?}",
        started.elapsed()
    );
    drop(coordinator);
    let _ = std::fs::remove_dir_all(&dir);
}

//! The named dataset catalog.
//!
//! [`Catalog`] maps the paper's dataset codes (`RM`, `AC`, …, `OG`) to
//! concrete, deterministically generated bipartite graphs. The default
//! catalog scales every profile down to a laptop-friendly maximum edge count
//! while preserving the `|U| : |L| : |E|` proportions of Table 2; the
//! full-size profiles remain available through [`Catalog::full_scale`] for
//! users with the memory (and patience) to realise them.

use crate::generator::generate_from_spec;
use crate::spec::{paper_table2, DatasetSpec};
use bigraph::BipartiteGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The 15 dataset codes used throughout the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum DatasetCode {
    /// Rmwiki (User–Article).
    RM,
    /// Collaboration (Author–Paper).
    AC,
    /// Occupation (Person–Occupation).
    OC,
    /// Bag-kos (Document–Word).
    DA,
    /// Bpywiki (User–Article).
    BP,
    /// Tewiktionary (User–Article).
    MT,
    /// Bookcrossing (User–Book).
    BX,
    /// Stackoverflow (User–Post).
    SO,
    /// Team (Athlete–Team).
    TM,
    /// Wiki-en-cat (Article–Category).
    WC,
    /// Movielens (User–Movie).
    ML,
    /// Epinions (User–Product).
    ER,
    /// Netflix (User–Movie).
    NX,
    /// Delicious-ui (User–Url).
    DUI,
    /// Orkut (User–Group).
    OG,
}

impl DatasetCode {
    /// All codes in the order the paper's Table 2 lists them.
    #[must_use]
    pub fn all() -> [DatasetCode; 15] {
        use DatasetCode::*;
        [RM, AC, OC, DA, BP, MT, BX, SO, TM, WC, ML, ER, NX, DUI, OG]
    }

    /// The code string as printed in the paper (e.g. `"RM"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DatasetCode::RM => "RM",
            DatasetCode::AC => "AC",
            DatasetCode::OC => "OC",
            DatasetCode::DA => "DA",
            DatasetCode::BP => "BP",
            DatasetCode::MT => "MT",
            DatasetCode::BX => "BX",
            DatasetCode::SO => "SO",
            DatasetCode::TM => "TM",
            DatasetCode::WC => "WC",
            DatasetCode::ML => "ML",
            DatasetCode::ER => "ER",
            DatasetCode::NX => "NX",
            DatasetCode::DUI => "DUI",
            DatasetCode::OG => "OG",
        }
    }

    /// Parses a code string (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<DatasetCode> {
        DatasetCode::all()
            .into_iter()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }

    /// The eight datasets used in the paper's Fig. 7 ε-sweep.
    #[must_use]
    pub fn epsilon_sweep_set() -> [DatasetCode; 8] {
        use DatasetCode::*;
        [SO, TM, WC, ML, ER, NX, DUI, OG]
    }

    /// The four datasets used in the paper's Figs. 8–11 focused experiments.
    #[must_use]
    pub fn focused_set() -> [DatasetCode; 4] {
        use DatasetCode::*;
        [TM, BX, DUI, OG]
    }
}

impl fmt::Display for DatasetCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A dataset realised from the catalog: the generated graph plus provenance.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The code the graph was generated for.
    pub code: DatasetCode,
    /// The (possibly scaled) profile that was realised.
    pub spec: DatasetSpec,
    /// The generated graph.
    pub graph: BipartiteGraph,
    /// The seed the graph was generated with.
    pub seed: u64,
}

/// A catalog of dataset profiles keyed by [`DatasetCode`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    specs: Vec<DatasetSpec>,
    max_edges: Option<usize>,
}

/// Default edge cap for the scaled catalog: large enough to preserve each
/// dataset's character, small enough for commodity hardware and CI.
pub const DEFAULT_MAX_EDGES: usize = 200_000;

impl Catalog {
    /// The catalog at the paper's original sizes (hundreds of millions of
    /// edges for the largest datasets — generate at your own risk).
    #[must_use]
    pub fn full_scale() -> Self {
        Self {
            specs: paper_table2(),
            max_edges: None,
        }
    }

    /// The default laptop-scale catalog: every profile proportionally scaled
    /// so that no dataset exceeds [`DEFAULT_MAX_EDGES`] edges.
    #[must_use]
    pub fn scaled_default() -> Self {
        Self::scaled(DEFAULT_MAX_EDGES)
    }

    /// A catalog scaled so that no dataset exceeds `max_edges` edges.
    #[must_use]
    pub fn scaled(max_edges: usize) -> Self {
        Self {
            specs: paper_table2()
                .into_iter()
                .map(|s| s.scaled_to_max_edges(max_edges))
                .collect(),
            max_edges: Some(max_edges),
        }
    }

    /// The profile for `code`.
    #[must_use]
    pub fn spec(&self, code: DatasetCode) -> Option<&DatasetSpec> {
        self.specs.iter().find(|s| s.code == code.as_str())
    }

    /// All profiles in Table 2 order.
    #[must_use]
    pub fn specs(&self) -> &[DatasetSpec] {
        &self.specs
    }

    /// The edge cap this catalog was scaled to, if any.
    #[must_use]
    pub fn max_edges(&self) -> Option<usize> {
        self.max_edges
    }

    /// Generates the graph for `code` with a seed derived from `base_seed`
    /// and the code itself (so different datasets get independent streams).
    #[must_use]
    pub fn generate(&self, code: DatasetCode, base_seed: u64) -> Option<GeneratedDataset> {
        let spec = self.spec(code)?.clone();
        let seed = derive_seed(base_seed, code);
        let graph = generate_from_spec(&spec, seed);
        Some(GeneratedDataset {
            code,
            spec,
            graph,
            seed,
        })
    }
}

fn derive_seed(base_seed: u64, code: DatasetCode) -> u64 {
    // Simple splitmix-style mixing of the base seed with the code index so
    // each dataset draws from an independent stream.
    let idx = DatasetCode::all()
        .iter()
        .position(|&c| c == code)
        .expect("code is in all()") as u64;
    let mut z = base_seed ^ (idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_strings() {
        for code in DatasetCode::all() {
            assert_eq!(DatasetCode::parse(code.as_str()), Some(code));
            assert_eq!(
                DatasetCode::parse(&code.as_str().to_lowercase()),
                Some(code)
            );
            assert_eq!(code.to_string(), code.as_str());
        }
        assert_eq!(DatasetCode::parse("nope"), None);
    }

    #[test]
    fn scaled_catalog_respects_cap() {
        let cap = 50_000;
        let cat = Catalog::scaled(cap);
        assert_eq!(cat.max_edges(), Some(cap));
        for spec in cat.specs() {
            assert!(spec.n_edges <= cap, "{} exceeds cap", spec.code);
            assert!(spec.n_upper >= 2 && spec.n_lower >= 2);
        }
    }

    #[test]
    fn full_scale_matches_table2() {
        let cat = Catalog::full_scale();
        assert_eq!(cat.max_edges(), None);
        assert_eq!(cat.specs().len(), 15);
        assert_eq!(cat.spec(DatasetCode::OG).unwrap().n_edges, 327_000_000);
    }

    #[test]
    fn every_code_has_a_spec() {
        let cat = Catalog::scaled_default();
        for code in DatasetCode::all() {
            assert!(cat.spec(code).is_some(), "missing spec for {code}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_code_and_seed() {
        let cat = Catalog::scaled(5_000);
        let a = cat.generate(DatasetCode::RM, 7).unwrap();
        let b = cat.generate(DatasetCode::RM, 7).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.seed, b.seed);
        let c = cat.generate(DatasetCode::RM, 8).unwrap();
        assert_ne!(a.graph, c.graph);
        // Different codes with the same base seed use different streams.
        let d = cat.generate(DatasetCode::AC, 7).unwrap();
        assert_ne!(a.seed, d.seed);
    }

    #[test]
    fn generated_graph_matches_spec_shape() {
        let cat = Catalog::scaled(20_000);
        let ds = cat.generate(DatasetCode::RM, 1).unwrap();
        assert_eq!(ds.graph.n_upper(), ds.spec.n_upper);
        assert_eq!(ds.graph.n_lower(), ds.spec.n_lower);
        assert_eq!(ds.graph.n_edges(), ds.spec.n_edges);
        ds.graph.validate().unwrap();
    }

    #[test]
    fn subsets_are_subsets_of_all() {
        let all = DatasetCode::all();
        for c in DatasetCode::epsilon_sweep_set() {
            assert!(all.contains(&c));
        }
        for c in DatasetCode::focused_set() {
            assert!(all.contains(&c));
        }
    }
}

//! Random bipartite graph generators.
//!
//! Two generators are provided:
//!
//! * [`uniform_gnm`] — `G(n₁, n₂, m)`: `m` distinct edges drawn uniformly at
//!   random from the `n₁ × n₂` possible slots.
//! * [`chung_lu_power_law`] — a Chung–Lu style generator whose expected
//!   degrees follow truncated power laws on both layers, producing the heavy
//!   skew real bipartite networks (and the paper's KONECT datasets) exhibit.
//!
//! Both are deterministic given a seed, so the experiment harness and the
//! benchmarks regenerate identical workloads across runs.

use crate::spec::{DatasetSpec, DegreeModel};
use bigraph::{BipartiteGraph, GraphBuilder, VertexId};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::collections::HashSet;

/// Generates a uniform random bipartite graph with exactly `m` distinct edges
/// (or the maximum possible, if `m` exceeds `n_upper · n_lower`).
pub fn uniform_gnm<R: Rng + ?Sized>(
    n_upper: usize,
    n_lower: usize,
    m: usize,
    rng: &mut R,
) -> BipartiteGraph {
    let capacity = n_upper.saturating_mul(n_lower);
    let target = m.min(capacity);
    let mut builder = GraphBuilder::with_capacity(n_upper, n_lower, target);
    if target == 0 || n_upper == 0 || n_lower == 0 {
        return builder.build();
    }

    // Dense fallback: when asked for most of the possible edges, sample the
    // complement instead to avoid long rejection loops.
    if target * 2 > capacity {
        let mut excluded: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(capacity - target);
        while excluded.len() < capacity - target {
            let u = rng.gen_range(0..n_upper) as VertexId;
            let v = rng.gen_range(0..n_lower) as VertexId;
            excluded.insert((u, v));
        }
        for u in 0..n_upper as VertexId {
            for v in 0..n_lower as VertexId {
                if !excluded.contains(&(u, v)) {
                    builder.add_edge(u, v).expect("in range");
                }
            }
        }
        return builder.build();
    }

    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(target);
    while seen.len() < target {
        let u = rng.gen_range(0..n_upper) as VertexId;
        let v = rng.gen_range(0..n_lower) as VertexId;
        if seen.insert((u, v)) {
            builder.add_edge(u, v).expect("in range");
        }
    }
    builder.build()
}

/// Generates a Chung–Lu style bipartite graph with power-law expected degrees.
///
/// Expected degrees on each layer follow `w_i ∝ i^(-1/(γ-1))` (the standard
/// continuous-approximation weights for a power law with exponent `γ`),
/// rescaled so the expected edge total equals `m`. `m` distinct edges are then
/// drawn by sampling endpoints proportionally to their weights. The realised
/// edge count is exactly `min(m, n₁·n₂)` but per-vertex degrees fluctuate
/// around their expectations, matching how real skewed datasets behave.
pub fn chung_lu_power_law<R: Rng + ?Sized>(
    n_upper: usize,
    n_lower: usize,
    m: usize,
    gamma: f64,
    rng: &mut R,
) -> BipartiteGraph {
    let capacity = n_upper.saturating_mul(n_lower);
    let target = m.min(capacity);
    let mut builder = GraphBuilder::with_capacity(n_upper, n_lower, target);
    if target == 0 || n_upper == 0 || n_lower == 0 {
        return builder.build();
    }

    let weights = |n: usize| -> Vec<f64> {
        let exponent = 1.0 / (gamma - 1.0).max(0.1);
        (0..n).map(|i| ((i + 1) as f64).powf(-exponent)).collect()
    };
    let upper_weights = weights(n_upper);
    let lower_weights = weights(n_lower);
    let upper_dist = WeightedIndex::new(&upper_weights).expect("positive weights");
    let lower_dist = WeightedIndex::new(&lower_weights).expect("positive weights");

    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(target);
    // Cap the number of rejection attempts: for heavily skewed weight vectors
    // the top slots saturate, so fall back to uniform sampling for the tail.
    let max_attempts = target.saturating_mul(50).max(10_000);
    let mut attempts = 0usize;
    while seen.len() < target && attempts < max_attempts {
        attempts += 1;
        let u = upper_dist.sample(rng) as VertexId;
        let v = lower_dist.sample(rng) as VertexId;
        if seen.insert((u, v)) {
            builder.add_edge(u, v).expect("in range");
        }
    }
    while seen.len() < target {
        let u = rng.gen_range(0..n_upper) as VertexId;
        let v = rng.gen_range(0..n_lower) as VertexId;
        if seen.insert((u, v)) {
            builder.add_edge(u, v).expect("in range");
        }
    }
    builder.build()
}

/// Realises a [`DatasetSpec`] as a concrete graph using a deterministic seed.
#[must_use]
pub fn generate_from_spec(spec: &DatasetSpec, seed: u64) -> BipartiteGraph {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    match spec.degree_model {
        DegreeModel::Uniform => uniform_gnm(spec.n_upper, spec.n_lower, spec.n_edges, &mut rng),
        DegreeModel::PowerLaw { .. } => chung_lu_power_law(
            spec.n_upper,
            spec.n_lower,
            spec.n_edges,
            spec.degree_model.gamma().unwrap_or(2.1),
            &mut rng,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{stats, Layer};
    use rand::rngs::StdRng;

    #[test]
    fn gnm_produces_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = uniform_gnm(100, 200, 5_000, &mut rng);
        assert_eq!(g.n_upper(), 100);
        assert_eq!(g.n_lower(), 200);
        assert_eq!(g.n_edges(), 5_000);
        g.validate().unwrap();
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = uniform_gnm(10, 10, 1_000_000, &mut rng);
        assert_eq!(g.n_edges(), 100);
        g.validate().unwrap();
    }

    #[test]
    fn gnm_dense_request_uses_complement_sampling() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = uniform_gnm(30, 30, 800, &mut rng); // 800 of 900 possible
        assert_eq!(g.n_edges(), 800);
        g.validate().unwrap();
    }

    #[test]
    fn gnm_zero_cases() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(uniform_gnm(0, 10, 5, &mut rng).n_edges(), 0);
        assert_eq!(uniform_gnm(10, 0, 5, &mut rng).n_edges(), 0);
        assert_eq!(uniform_gnm(10, 10, 0, &mut rng).n_edges(), 0);
    }

    #[test]
    fn chung_lu_produces_exact_edge_count_and_skew() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = chung_lu_power_law(500, 1_000, 10_000, 2.1, &mut rng);
        assert_eq!(g.n_edges(), 10_000);
        g.validate().unwrap();
        // The power-law generator should give a much heavier maximum degree
        // than a uniform graph with the same size.
        let mut rng2 = StdRng::seed_from_u64(5);
        let uniform = uniform_gnm(500, 1_000, 10_000, &mut rng2);
        assert!(
            g.max_degree(Layer::Upper) > 2 * uniform.max_degree(Layer::Upper),
            "power-law max degree {} should exceed 2x uniform {}",
            g.max_degree(Layer::Upper),
            uniform.max_degree(Layer::Upper)
        );
    }

    #[test]
    fn chung_lu_low_degree_tail_exists() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = chung_lu_power_law(1_000, 1_000, 5_000, 2.1, &mut rng);
        let hist = stats::degree_histogram(&g, Layer::Upper);
        // A skewed graph with avg degree 5 should leave some vertices at
        // degree zero or one.
        assert!(hist[0] + hist.get(1).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn chung_lu_saturated_graph_falls_back_to_uniform_fill() {
        let mut rng = StdRng::seed_from_u64(7);
        // Nearly complete graph forces the fallback path.
        let g = chung_lu_power_law(20, 20, 395, 2.1, &mut rng);
        assert_eq!(g.n_edges(), 395);
        g.validate().unwrap();
    }

    #[test]
    fn generate_from_spec_is_deterministic() {
        let spec = DatasetSpec::new("T", "Test", "A", "B", 200, 300, 2_000);
        let a = generate_from_spec(&spec, 99);
        let b = generate_from_spec(&spec, 99);
        assert_eq!(a, b);
        let c = generate_from_spec(&spec, 100);
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn generate_from_spec_respects_uniform_model() {
        let mut spec = DatasetSpec::new("T", "Test", "A", "B", 100, 100, 500);
        spec.degree_model = DegreeModel::Uniform;
        let g = generate_from_spec(&spec, 7);
        assert_eq!(g.n_edges(), 500);
        g.validate().unwrap();
    }
}

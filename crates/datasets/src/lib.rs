//! # datasets — workload substrate
//!
//! The paper evaluates on 15 real-world bipartite graphs from KONECT
//! (Table 2), ranging from 58 K to 327 M edges. Those datasets are not
//! redistributable with this repository, so this crate provides:
//!
//! * [`spec`] — the Table 2 dataset profiles (codes, layer sizes, edge
//!   counts) and scaled-down synthetic profiles that keep the same
//!   `|U| : |L| : |E|` proportions,
//! * [`generator`] — random bipartite graph generators (uniform `G(n₁,n₂,m)`
//!   and Chung–Lu power-law) used to realise a profile as a concrete graph,
//! * [`catalog`] — a deterministic, seeded catalog mapping dataset codes
//!   (`RM`, `AC`, …, `OG`) to generated graphs,
//! * [`io`] — a KONECT-style edge-list reader/writer, so genuine KONECT
//!   downloads can be dropped in when available.
//!
//! The substitution is documented in `DESIGN.md`: the estimators' error
//! depends only on the opposite-layer size, the query-vertex degrees and ε,
//! all of which the synthetic profiles preserve per dataset.
//!
//! ```
//! use datasets::catalog::{Catalog, DatasetCode};
//!
//! let catalog = Catalog::scaled_default();
//! let rm = catalog.generate(DatasetCode::RM, 42).unwrap();
//! assert!(rm.graph.n_edges() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod generator;
pub mod io;
pub mod spec;

pub use catalog::{Catalog, DatasetCode, GeneratedDataset};
pub use spec::DatasetSpec;

//! KONECT-style edge-list I/O.
//!
//! The KONECT project distributes bipartite graphs as whitespace-separated
//! edge lists (`out.<name>` files) with optional `%` comment lines. This
//! module reads and writes that format so real datasets can be substituted
//! for the synthetic catalog when they are available locally.

use bigraph::{BipartiteGraph, GraphBuilder, GraphError};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads a bipartite edge list from any reader.
///
/// Each non-comment line must contain at least two whitespace-separated
/// integers: the upper vertex id and the lower vertex id (1-based or 0-based;
/// ids are used as given, so a 1-based file simply produces an unused vertex
/// 0). Lines starting with `%` or `#` are skipped, as are blank lines.
/// Remaining columns (weights, timestamps) are ignored.
///
/// # Errors
///
/// Returns [`GraphError::Malformed`] for lines that do not parse, and I/O
/// errors are mapped to [`GraphError::Malformed`] with the underlying message.
pub fn read_edge_list<R: Read>(reader: R) -> Result<BipartiteGraph, GraphError> {
    let mut builder = GraphBuilder::default();
    let buf = BufReader::new(reader);
    for (line_no, line) in buf.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Malformed {
            reason: format!("I/O error at line {}: {e}", line_no + 1),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let u: u32 = parse_field(fields.next(), line_no, "upper id")?;
        let v: u32 = parse_field(fields.next(), line_no, "lower id")?;
        builder.add_edge_growing(u, v);
    }
    Ok(builder.build())
}

/// Reads a bipartite edge list from a file path. See [`read_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError::Malformed`] if the file cannot be opened or parsed.
pub fn read_edge_list_file(path: &Path) -> Result<BipartiteGraph, GraphError> {
    let file = std::fs::File::open(path).map_err(|e| GraphError::Malformed {
        reason: format!("cannot open {}: {e}", path.display()),
    })?;
    read_edge_list(file)
}

/// Writes a graph as a KONECT-style edge list (one `u v` pair per line,
/// preceded by a `%` header describing the layer sizes).
///
/// # Errors
///
/// Returns [`GraphError::Malformed`] wrapping any I/O error.
pub fn write_edge_list<W: Write>(g: &BipartiteGraph, mut writer: W) -> Result<(), GraphError> {
    let io_err = |e: std::io::Error| GraphError::Malformed {
        reason: format!("write error: {e}"),
    };
    writeln!(
        writer,
        "% bip {} {} {}",
        g.n_upper(),
        g.n_lower(),
        g.n_edges()
    )
    .map_err(io_err)?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}").map_err(io_err)?;
    }
    Ok(())
}

/// Writes a graph to a file path. See [`write_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError::Malformed`] if the file cannot be created or written.
pub fn write_edge_list_file(g: &BipartiteGraph, path: &Path) -> Result<(), GraphError> {
    let file = std::fs::File::create(path).map_err(|e| GraphError::Malformed {
        reason: format!("cannot create {}: {e}", path.display()),
    })?;
    write_edge_list(g, file)
}

fn parse_field(field: Option<&str>, line_no: usize, what: &str) -> Result<u32, GraphError> {
    let field = field.ok_or_else(|| GraphError::Malformed {
        reason: format!("line {}: missing {what}", line_no + 1),
    })?;
    field.parse().map_err(|e| GraphError::Malformed {
        reason: format!("line {}: cannot parse {what} `{field}`: {e}", line_no + 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::Layer;

    #[test]
    fn read_simple_edge_list() {
        let text = "% comment line\n# another comment\n0 0\n0 1\n2 3 17 999\n\n1 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n_upper(), 3);
        assert_eq!(g.n_lower(), 4);
        assert_eq!(g.n_edges(), 4);
        assert!(g.has_edge(2, 3));
        g.validate().unwrap();
    }

    #[test]
    fn read_rejects_garbage() {
        let err = read_edge_list("0 zero\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Malformed { .. }));
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Malformed { .. }));
    }

    #[test]
    fn read_empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.n_vertices(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let g = BipartiteGraph::from_edges(3, 5, [(0, 0), (1, 4), (2, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("% bip 3 5 4"));
        let back = read_edge_list(&buf[..]).unwrap();
        // The reader infers layer sizes from the maximum ids, so vertex counts
        // can shrink if trailing vertices are isolated; edges must match.
        let edges_a: Vec<_> = g.edges().collect();
        let edges_b: Vec<_> = back.edges().collect();
        assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bigraph_io_test_{}.txt", std::process::id()));
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (1, 1)]).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path).unwrap();
        assert_eq!(back.n_edges(), 2);
        assert!(back.has_edge(0, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let err =
            read_edge_list_file(Path::new("/nonexistent/definitely/missing.txt")).unwrap_err();
        assert!(matches!(err, GraphError::Malformed { .. }));
    }

    #[test]
    fn one_based_konect_ids_are_tolerated() {
        // KONECT files are commonly 1-based; vertex 0 simply ends up isolated.
        let text = "1 1\n1 2\n2 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n_upper(), 3);
        assert_eq!(g.n_lower(), 3);
        assert_eq!(g.degree(Layer::Upper, 0), 0);
        assert_eq!(g.degree(Layer::Upper, 1), 2);
    }
}

//! Dataset profiles: the paper's Table 2 plus scaled synthetic variants.

use serde::{Deserialize, Serialize};

/// Degree-distribution family used when realising a profile as a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegreeModel {
    /// Every edge slot is equally likely (Erdős–Rényi-style `G(n₁, n₂, m)`).
    Uniform,
    /// Chung–Lu with power-law expected degrees on both layers.
    PowerLaw {
        /// Power-law exponent scaled by 100 (e.g. `215` means γ = 2.15), kept
        /// integral so the type stays `Eq`/hashable and serialises exactly.
        gamma_x100: u32,
    },
}

impl DegreeModel {
    /// The conventional power-law profile used for the synthetic KONECT
    /// stand-ins (γ = 2.1, a typical exponent for web-like bipartite data).
    #[must_use]
    pub fn default_power_law() -> Self {
        DegreeModel::PowerLaw { gamma_x100: 210 }
    }

    /// The exponent as a float (only meaningful for [`DegreeModel::PowerLaw`]).
    #[must_use]
    pub fn gamma(&self) -> Option<f64> {
        match self {
            DegreeModel::Uniform => None,
            DegreeModel::PowerLaw { gamma_x100 } => Some(f64::from(*gamma_x100) / 100.0),
        }
    }
}

/// A dataset profile: the shape parameters a generator needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Short code used throughout the paper's figures (e.g. `"RM"`).
    pub code: String,
    /// Human-readable name (e.g. `"Rmwiki"`).
    pub name: String,
    /// What the upper layer models (e.g. `"User"`).
    pub upper_entity: String,
    /// What the lower layer models (e.g. `"Article"`).
    pub lower_entity: String,
    /// Number of upper vertices, `|U|`.
    pub n_upper: usize,
    /// Number of lower vertices, `|L|`.
    pub n_lower: usize,
    /// Number of edges, `|E|`.
    pub n_edges: usize,
    /// Degree model used when generating a synthetic realisation.
    pub degree_model: DegreeModel,
}

impl DatasetSpec {
    /// Creates a spec with the default power-law degree model.
    #[must_use]
    pub fn new(
        code: &str,
        name: &str,
        upper_entity: &str,
        lower_entity: &str,
        n_upper: usize,
        n_lower: usize,
        n_edges: usize,
    ) -> Self {
        Self {
            code: code.to_string(),
            name: name.to_string(),
            upper_entity: upper_entity.to_string(),
            lower_entity: lower_entity.to_string(),
            n_upper,
            n_lower,
            n_edges,
            degree_model: DegreeModel::default_power_law(),
        }
    }

    /// Average degree of the upper layer, `|E| / |U|`.
    #[must_use]
    pub fn avg_degree_upper(&self) -> f64 {
        if self.n_upper == 0 {
            0.0
        } else {
            self.n_edges as f64 / self.n_upper as f64
        }
    }

    /// Average degree of the lower layer, `|E| / |L|`.
    #[must_use]
    pub fn avg_degree_lower(&self) -> f64 {
        if self.n_lower == 0 {
            0.0
        } else {
            self.n_edges as f64 / self.n_lower as f64
        }
    }

    /// Graph density `|E| / (|U|·|L|)`.
    #[must_use]
    pub fn density(&self) -> f64 {
        let denom = self.n_upper as f64 * self.n_lower as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.n_edges as f64 / denom
        }
    }

    /// Returns a proportionally scaled copy whose edge count does not exceed
    /// `max_edges`. Layer sizes shrink by the same factor (at least 2
    /// vertices per layer are kept so query pairs remain sampleable), and the
    /// edge count is capped at `|U|·|L|` so the result stays realisable.
    #[must_use]
    pub fn scaled_to_max_edges(&self, max_edges: usize) -> Self {
        if self.n_edges <= max_edges {
            return self.clone();
        }
        let factor = max_edges as f64 / self.n_edges as f64;
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(2);
        let n_upper = scale(self.n_upper);
        let n_lower = scale(self.n_lower);
        let n_edges = max_edges.min(n_upper * n_lower);
        Self {
            n_upper,
            n_lower,
            n_edges,
            ..self.clone()
        }
    }
}

/// The 15 dataset profiles of the paper's Table 2, at their original sizes.
#[must_use]
pub fn paper_table2() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::new("RM", "Rmwiki", "User", "Article", 1_200, 8_100, 58_000),
        DatasetSpec::new(
            "AC",
            "Collaboration",
            "Author",
            "Paper",
            16_700,
            22_000,
            58_600,
        ),
        DatasetSpec::new(
            "OC",
            "Occupation",
            "Person",
            "Occupation",
            127_600,
            101_700,
            250_900,
        ),
        DatasetSpec::new("DA", "Bag-kos", "Document", "Word", 3_400, 6_900, 353_200),
        DatasetSpec::new("BP", "Bpywiki", "User", "Article", 1_300, 57_900, 399_700),
        DatasetSpec::new(
            "MT",
            "Tewiktionary",
            "User",
            "Article",
            495,
            121_500,
            529_600,
        ),
        DatasetSpec::new(
            "BX",
            "Bookcrossing",
            "User",
            "Book",
            105_300,
            340_500,
            1_100_000,
        ),
        DatasetSpec::new(
            "SO",
            "Stackoverflow",
            "User",
            "Post",
            545_200,
            96_700,
            1_300_000,
        ),
        DatasetSpec::new("TM", "Team", "Athlete", "Team", 901_200, 34_500, 1_400_000),
        DatasetSpec::new(
            "WC",
            "Wiki-en-cat",
            "Article",
            "Category",
            1_900_000,
            182_900,
            3_800_000,
        ),
        DatasetSpec::new(
            "ML",
            "Movielens",
            "User",
            "Movie",
            69_900,
            10_700,
            10_000_000,
        ),
        DatasetSpec::new(
            "ER", "Epinions", "User", "Product", 120_500, 755_800, 13_700_000,
        ),
        DatasetSpec::new(
            "NX",
            "Netflix",
            "User",
            "Movie",
            480_200,
            17_800,
            100_500_000,
        ),
        DatasetSpec::new(
            "DUI",
            "Delicious-ui",
            "User",
            "Url",
            833_100,
            33_800_000,
            101_800_000,
        ),
        DatasetSpec::new(
            "OG",
            "Orkut",
            "User",
            "Group",
            2_800_000,
            8_700_000,
            327_000_000,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_fifteen_datasets_with_unique_codes() {
        let specs = paper_table2();
        assert_eq!(specs.len(), 15);
        let mut codes: Vec<&str> = specs.iter().map(|s| s.code.as_str()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 15, "dataset codes must be unique");
    }

    #[test]
    fn table2_matches_paper_shapes() {
        let specs = paper_table2();
        let rm = specs.iter().find(|s| s.code == "RM").unwrap();
        assert_eq!(rm.n_upper, 1_200);
        assert_eq!(rm.n_lower, 8_100);
        assert_eq!(rm.n_edges, 58_000);
        let og = specs.iter().find(|s| s.code == "OG").unwrap();
        assert_eq!(og.n_edges, 327_000_000);
    }

    #[test]
    fn averages_and_density() {
        let s = DatasetSpec::new("X", "X", "A", "B", 10, 20, 40);
        assert!((s.avg_degree_upper() - 4.0).abs() < 1e-12);
        assert!((s.avg_degree_lower() - 2.0).abs() < 1e-12);
        assert!((s.density() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn degenerate_spec_has_zero_ratios() {
        let s = DatasetSpec::new("X", "X", "A", "B", 0, 0, 0);
        assert_eq!(s.avg_degree_upper(), 0.0);
        assert_eq!(s.avg_degree_lower(), 0.0);
        assert_eq!(s.density(), 0.0);
    }

    #[test]
    fn scaling_preserves_proportions_and_caps_edges() {
        let s = DatasetSpec::new(
            "NX",
            "Netflix",
            "User",
            "Movie",
            480_200,
            17_800,
            100_500_000,
        );
        let scaled = s.scaled_to_max_edges(1_000_000);
        assert!(scaled.n_edges <= 1_000_000);
        // Ratio |U| / |L| is approximately preserved.
        let orig_ratio = s.n_upper as f64 / s.n_lower as f64;
        let new_ratio = scaled.n_upper as f64 / scaled.n_lower as f64;
        assert!((orig_ratio - new_ratio).abs() / orig_ratio < 0.05);
        // Feasibility: edges never exceed the complete bipartite capacity.
        assert!(scaled.n_edges <= scaled.n_upper * scaled.n_lower);
    }

    #[test]
    fn scaling_is_identity_when_small_enough() {
        let s = DatasetSpec::new("RM", "Rmwiki", "User", "Article", 1_200, 8_100, 58_000);
        assert_eq!(s.scaled_to_max_edges(100_000), s);
    }

    #[test]
    fn scaling_keeps_layers_sampleable() {
        let s = DatasetSpec::new("T", "Tiny", "A", "B", 1_000_000, 3, 5_000_000);
        let scaled = s.scaled_to_max_edges(1_000);
        assert!(scaled.n_upper >= 2);
        assert!(scaled.n_lower >= 2);
    }

    #[test]
    fn degree_model_gamma() {
        assert_eq!(DegreeModel::Uniform.gamma(), None);
        assert_eq!(DegreeModel::default_power_law().gamma(), Some(2.1));
    }

    #[test]
    fn serde_round_trip() {
        let s = DatasetSpec::new("RM", "Rmwiki", "User", "Article", 1, 2, 3);
        let json = serde_json::to_string(&s).unwrap();
        let back: DatasetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

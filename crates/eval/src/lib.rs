//! # eval — experiment harness
//!
//! This crate regenerates the paper's evaluation: every figure and table has a
//! module under [`experiments`] whose `run` function executes the
//! corresponding workload and returns a plain-text [`table::Table`] with the
//! same rows/series the paper reports. The `bench` crate wraps each of these
//! in a Criterion target; the modules can also be driven directly from tests
//! or ad-hoc binaries.
//!
//! Supporting pieces:
//!
//! * [`metrics`] — mean absolute error, mean relative error, empirical L2
//!   loss, bias,
//! * [`runner`] — evaluates a set of algorithms over sampled query pairs with
//!   deterministic seeding and per-pair parallelism,
//! * [`table`] — minimal text table/series rendering.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod metrics;
pub mod runner;
pub mod table;

pub use runner::{
    build_estimator, evaluate_on_pairs, evaluate_on_pairs_with_engine, AlgorithmSelection,
    PairEvaluation, RunSummary,
};
pub use table::Table;

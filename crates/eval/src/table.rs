//! Minimal plain-text tables for experiment output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A titled table with a header row and string cells.
///
/// Experiments return `Table`s so that benches, tests and binaries all print
/// the same rows the paper's figures report, without pulling in a plotting
/// stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Figure 7: effect of epsilon (Stackoverflow)"`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells; every row must have `columns.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of columns — that is
    /// a programming error in the experiment, not a data error.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} does not match column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Looks up a cell by row index and column name.
    #[must_use]
    pub fn cell(&self, row: usize, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row).map(|r| r[col].as_str())
    }

    /// Parses a cell as `f64`.
    #[must_use]
    pub fn cell_f64(&self, row: usize, column: &str) -> Option<f64> {
        self.cell(row, column)?.parse().ok()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths: max of header and cells.
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a float with a fixed number of decimals for table cells.
#[must_use]
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a float in scientific notation for wide-ranging error columns.
#[must_use]
pub fn fmt_sci(value: f64) -> String {
    format!("{value:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("Demo", &["dataset", "mae"]);
        t.push_row(vec!["RM".into(), "1.25".into()]);
        t.push_row(vec!["AC".into(), "0.50".into()]);
        assert_eq!(t.n_rows(), 2);
        let rendered = t.to_string();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("dataset"));
        assert!(rendered.contains("RM"));
        assert!(rendered.lines().count() >= 5);
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new("Demo", &["dataset", "mae"]);
        t.push_row(vec!["RM".into(), "1.25".into()]);
        assert_eq!(t.cell(0, "dataset"), Some("RM"));
        assert_eq!(t.cell_f64(0, "mae"), Some(1.25));
        assert_eq!(t.cell(0, "missing"), None);
        assert_eq!(t.cell(5, "mae"), None);
        assert_eq!(t.cell_f64(0, "dataset"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(2.0, 0), "2");
        assert!(fmt_sci(12345.678).contains('e'));
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Table::new("Demo", &["a"]);
        t.push_row(vec!["x".into()]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}

//! Evaluates algorithms over sampled query pairs.
//!
//! The paper's protocol is: sample 100 same-layer vertex pairs uniformly,
//! run each algorithm once per pair, and report the mean absolute error,
//! the wall-clock time, and the communication cost. [`evaluate_on_pairs`]
//! implements exactly that, parallelised across pairs with deterministic
//! per-pair seeding so results are reproducible regardless of thread count.
//! All runs go through one [`cne::EstimationEngine`] per call, so every pair
//! shares the same warm packed-adjacency cache.

use crate::metrics::{ErrorMetrics, Observation};
use bigraph::sampling::QueryPair;
use bigraph::BipartiteGraph;
use cne::{
    AlgorithmKind, CentralDP, EngineEstimator, EstimationEngine, MultiRDS, MultiRDSBasic,
    MultiRDSStar, MultiRSS, Naive, OneR, Query,
};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// An algorithm choice plus its tunable parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlgorithmSelection {
    /// The biased baseline.
    Naive,
    /// The one-round unbiased estimator.
    OneR,
    /// MultiR-SS with a given ε₁ fraction.
    MultiRSS {
        /// Fraction of ε used for randomized response.
        epsilon1_fraction: f64,
    },
    /// MultiR-DS-Basic with a given ε₁ fraction.
    MultiRDSBasic {
        /// Fraction of ε used for randomized response.
        epsilon1_fraction: f64,
    },
    /// The fully-optimised MultiR-DS.
    MultiRDS,
    /// MultiR-DS* (public degrees).
    MultiRDSStar,
    /// The central-model baseline.
    CentralDP,
}

impl AlgorithmSelection {
    /// The algorithm set of the paper's Fig. 6 (all edge-LDP algorithms plus
    /// the central baseline), with default parameters.
    #[must_use]
    pub fn figure6_set() -> Vec<AlgorithmSelection> {
        vec![
            AlgorithmSelection::Naive,
            AlgorithmSelection::OneR,
            AlgorithmSelection::MultiRSS {
                epsilon1_fraction: 0.5,
            },
            AlgorithmSelection::MultiRDS,
            AlgorithmSelection::MultiRDSStar,
            AlgorithmSelection::CentralDP,
        ]
    }

    /// The algorithm set of the ε-sweep in Fig. 7.
    #[must_use]
    pub fn figure7_set() -> Vec<AlgorithmSelection> {
        vec![
            AlgorithmSelection::Naive,
            AlgorithmSelection::OneR,
            AlgorithmSelection::MultiRSS {
                epsilon1_fraction: 0.5,
            },
            AlgorithmSelection::MultiRDS,
            AlgorithmSelection::CentralDP,
        ]
    }

    /// Which [`AlgorithmKind`] this selection builds.
    #[must_use]
    pub fn kind(&self) -> AlgorithmKind {
        match self {
            AlgorithmSelection::Naive => AlgorithmKind::Naive,
            AlgorithmSelection::OneR => AlgorithmKind::OneR,
            AlgorithmSelection::MultiRSS { .. } => AlgorithmKind::MultiRSS,
            AlgorithmSelection::MultiRDSBasic { .. } => AlgorithmKind::MultiRDSBasic,
            AlgorithmSelection::MultiRDS => AlgorithmKind::MultiRDS,
            AlgorithmSelection::MultiRDSStar => AlgorithmKind::MultiRDSStar,
            AlgorithmSelection::CentralDP => AlgorithmKind::CentralDP,
        }
    }
}

/// Builds a boxed estimator for a selection.
///
/// The estimator is engine-capable: it can run standalone
/// ([`cne::CommonNeighborEstimator::estimate`]) or through an
/// [`EstimationEngine`]'s warm cache — byte-identically.
///
/// # Panics
///
/// Panics if a fraction parameter is outside `(0, 1)` — selections are
/// experiment configuration, so this is a programming error.
#[must_use]
pub fn build_estimator(selection: &AlgorithmSelection) -> Box<dyn EngineEstimator + Send + Sync> {
    match *selection {
        AlgorithmSelection::Naive => Box::new(Naive),
        AlgorithmSelection::OneR => Box::new(OneR::default()),
        AlgorithmSelection::MultiRSS { epsilon1_fraction } => {
            Box::new(MultiRSS::with_fraction(epsilon1_fraction).expect("valid fraction"))
        }
        AlgorithmSelection::MultiRDSBasic { epsilon1_fraction } => {
            Box::new(MultiRDSBasic::with_fraction(epsilon1_fraction).expect("valid fraction"))
        }
        AlgorithmSelection::MultiRDS => Box::new(MultiRDS::default()),
        AlgorithmSelection::MultiRDSStar => Box::new(MultiRDSStar),
        AlgorithmSelection::CentralDP => Box::new(CentralDP),
    }
}

/// The outcome of running one algorithm on one query pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairEvaluation {
    /// The query pair.
    pub u: u32,
    /// The query pair.
    pub w: u32,
    /// The exact common-neighbor count.
    pub truth: f64,
    /// The estimator's output.
    pub estimate: f64,
    /// Bytes exchanged between clients and curator.
    pub communication_bytes: usize,
    /// Wall-clock time of the protocol run.
    pub elapsed: Duration,
}

/// Aggregate results of one algorithm over a set of pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Which algorithm ran.
    pub algorithm: AlgorithmKind,
    /// The privacy budget used.
    pub epsilon: f64,
    /// Per-pair results in pair order.
    pub evaluations: Vec<PairEvaluation>,
    /// Aggregate error metrics.
    pub metrics: ErrorMetrics,
    /// Sum of per-pair wall-clock times.
    pub total_time: Duration,
    /// Mean communication cost per pair, in bytes.
    pub mean_communication_bytes: f64,
}

impl RunSummary {
    /// Mean communication cost per pair in megabytes (Fig. 10's unit).
    #[must_use]
    pub fn mean_communication_megabytes(&self) -> f64 {
        self.mean_communication_bytes / (1024.0 * 1024.0)
    }
}

/// Runs `selection` once per pair and aggregates the results.
///
/// Pairs are fanned out across all cores with `rayon`; each pair uses an
/// independent RNG stream derived from `seed` and the pair index via the
/// same `seed + id → stream` contract the batch engine uses
/// ([`cne::batch::user_stream_seed`]), so results are byte-identical at any
/// thread count.
///
/// # Errors
///
/// Propagates the first estimation error encountered (invalid pair, bad
/// budget, ...).
pub fn evaluate_on_pairs(
    graph: &BipartiteGraph,
    pairs: &[QueryPair],
    selection: &AlgorithmSelection,
    epsilon: f64,
    seed: u64,
) -> cne::Result<RunSummary> {
    // One engine per evaluation run: every pair shares the same lazily
    // warmed packed-adjacency cache (byte-identical to the uncached path).
    let engine = EstimationEngine::new(graph);
    evaluate_on_pairs_with_engine(&engine, pairs, selection, epsilon, seed)
}

/// [`evaluate_on_pairs`] against a caller-owned [`EstimationEngine`] — for
/// long-lived or *streaming* evaluation loops that keep one engine warm
/// across sweeps (and across [`cne::EstimationEngine::apply_updates`]
/// rounds) instead of rebuilding the adjacency cache per call. Results are
/// byte-identical to [`evaluate_on_pairs`] on the same graph and seed.
///
/// # Errors
///
/// Same contract as [`evaluate_on_pairs`].
pub fn evaluate_on_pairs_with_engine(
    engine: &EstimationEngine<'_>,
    pairs: &[QueryPair],
    selection: &AlgorithmSelection,
    epsilon: f64,
    seed: u64,
) -> cne::Result<RunSummary> {
    let estimator = build_estimator(selection);
    let graph = engine.graph();
    let results: Vec<cne::Result<PairEvaluation>> = pairs
        .par_iter()
        .enumerate()
        .map(|(idx, pair)| {
            let mut rng =
                ChaCha12Rng::seed_from_u64(cne::batch::user_stream_seed(seed, idx as u64));
            let query = Query::new(pair.layer, pair.u, pair.w);
            let truth = query.exact_count(graph)? as f64;
            let start = Instant::now();
            let report = engine.estimate_with(estimator.as_ref(), &query, epsilon, &mut rng)?;
            let elapsed = start.elapsed();
            Ok(PairEvaluation {
                u: pair.u,
                w: pair.w,
                truth,
                estimate: report.estimate,
                communication_bytes: report.communication_bytes(),
                elapsed,
            })
        })
        .collect();

    let mut evaluations = Vec::with_capacity(pairs.len());
    for result in results {
        evaluations.push(result?);
    }

    let observations: Vec<Observation> = evaluations
        .iter()
        .map(|e| Observation {
            estimate: e.estimate,
            truth: e.truth,
        })
        .collect();
    let metrics = ErrorMetrics::from_observations(&observations).unwrap_or(ErrorMetrics {
        count: 0,
        mean_absolute_error: 0.0,
        mean_relative_error: 0.0,
        mean_squared_error: 0.0,
        bias: 0.0,
    });
    let total_time = evaluations.iter().map(|e| e.elapsed).sum();
    let mean_communication_bytes = if evaluations.is_empty() {
        0.0
    } else {
        evaluations
            .iter()
            .map(|e| e.communication_bytes as f64)
            .sum::<f64>()
            / evaluations.len() as f64
    };

    Ok(RunSummary {
        algorithm: selection.kind(),
        epsilon,
        evaluations,
        metrics,
        total_time,
        mean_communication_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{sampling, Layer};
    use datasets::{Catalog, DatasetCode};

    fn small_dataset() -> BipartiteGraph {
        // Keep RM at its original Table 2 size: shrinking the opposite layer
        // would erase the one-round vs multi-round gap the tests check.
        Catalog::scaled(60_000)
            .generate(DatasetCode::RM, 3)
            .unwrap()
            .graph
    }

    #[test]
    fn evaluate_produces_one_result_per_pair() {
        let g = small_dataset();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let pairs = sampling::uniform_pairs(&g, Layer::Upper, 12, &mut rng).unwrap();
        let summary = evaluate_on_pairs(&g, &pairs, &AlgorithmSelection::OneR, 2.0, 7).unwrap();
        assert_eq!(summary.evaluations.len(), 12);
        assert_eq!(summary.metrics.count, 12);
        assert_eq!(summary.algorithm, AlgorithmKind::OneR);
        assert!(summary.mean_communication_bytes > 0.0);
        assert!(summary.metrics.mean_absolute_error.is_finite());
    }

    #[test]
    fn engine_variant_matches_and_survives_updates() {
        let g = small_dataset();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let pairs = sampling::uniform_pairs(&g, Layer::Upper, 6, &mut rng).unwrap();
        let fresh = evaluate_on_pairs(&g, &pairs, &AlgorithmSelection::OneR, 2.0, 13).unwrap();
        let engine = EstimationEngine::new(&g);
        let reused =
            evaluate_on_pairs_with_engine(&engine, &pairs, &AlgorithmSelection::OneR, 2.0, 13)
                .unwrap();
        let bits = |s: &RunSummary| -> Vec<u64> {
            s.evaluations.iter().map(|e| e.estimate.to_bits()).collect()
        };
        assert_eq!(bits(&fresh), bits(&reused));

        // After a streaming update, the warm engine equals a cold rebuild.
        let mut live = EstimationEngine::from_graph(g.clone());
        let mut batch = bigraph::UpdateBatch::new();
        batch
            .add_edge(pairs[0].u, 0)
            .remove_edge(pairs[0].w, g.neighbors(Layer::Upper, pairs[0].w)[0]);
        live.apply_updates(&batch).unwrap();
        let warm = evaluate_on_pairs_with_engine(&live, &pairs, &AlgorithmSelection::OneR, 2.0, 13)
            .unwrap();
        let cold =
            evaluate_on_pairs(live.graph(), &pairs, &AlgorithmSelection::OneR, 2.0, 13).unwrap();
        assert_eq!(bits(&warm), bits(&cold));
        assert_ne!(
            bits(&warm),
            bits(&reused),
            "the update moved a queried vertex, so estimates must move"
        );
    }

    #[test]
    fn evaluation_is_deterministic_under_seed() {
        let g = small_dataset();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let pairs = sampling::uniform_pairs(&g, Layer::Upper, 8, &mut rng).unwrap();
        let a = evaluate_on_pairs(&g, &pairs, &AlgorithmSelection::MultiRDS, 2.0, 11).unwrap();
        let b = evaluate_on_pairs(&g, &pairs, &AlgorithmSelection::MultiRDS, 2.0, 11).unwrap();
        let ea: Vec<f64> = a.evaluations.iter().map(|e| e.estimate).collect();
        let eb: Vec<f64> = b.evaluations.iter().map(|e| e.estimate).collect();
        assert_eq!(ea, eb);
        let c = evaluate_on_pairs(&g, &pairs, &AlgorithmSelection::MultiRDS, 2.0, 12).unwrap();
        let ec: Vec<f64> = c.evaluations.iter().map(|e| e.estimate).collect();
        assert_ne!(ea, ec);
    }

    #[test]
    fn evaluation_is_byte_identical_across_thread_counts() {
        // The per-pair streams are keyed by (seed, pair index), never by
        // thread assignment, so forcing different worker counts must not
        // change a single bit of the output.
        let g = small_dataset();
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let pairs = sampling::uniform_pairs(&g, Layer::Upper, 10, &mut rng).unwrap();
        let run = || {
            evaluate_on_pairs(&g, &pairs, &AlgorithmSelection::MultiRDS, 2.0, 9)
                .unwrap()
                .evaluations
                .iter()
                .map(|e| e.estimate.to_bits())
                .collect::<Vec<u64>>()
        };
        // Process-global env mutation: restore on drop so a failing assert
        // cannot leak the override into concurrently running tests. Those
        // tests tolerate a transient worker-count change by the very
        // property under test (results are thread-count-independent).
        //
        // NOTE: this relies on the vendored rayon stub reading
        // RAYON_NUM_THREADS on every call; real rayon latches it at
        // global-pool init, so on a future swap to the real crate this test
        // must move to an explicit `ThreadPoolBuilder`.
        struct RestoreEnv;
        impl Drop for RestoreEnv {
            fn drop(&mut self) {
                std::env::remove_var("RAYON_NUM_THREADS");
            }
        }
        let _restore = RestoreEnv;
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = run();
        std::env::set_var("RAYON_NUM_THREADS", "7");
        let parallel = run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn multi_round_beats_one_round_on_average() {
        let g = small_dataset();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let pairs = sampling::uniform_pairs(&g, Layer::Upper, 30, &mut rng).unwrap();
        let naive = evaluate_on_pairs(&g, &pairs, &AlgorithmSelection::Naive, 2.0, 5).unwrap();
        let oner = evaluate_on_pairs(&g, &pairs, &AlgorithmSelection::OneR, 2.0, 5).unwrap();
        let ss = evaluate_on_pairs(
            &g,
            &pairs,
            &AlgorithmSelection::MultiRSS {
                epsilon1_fraction: 0.5,
            },
            2.0,
            5,
        )
        .unwrap();
        assert!(oner.metrics.mean_absolute_error < naive.metrics.mean_absolute_error);
        assert!(ss.metrics.mean_absolute_error < oner.metrics.mean_absolute_error);
    }

    #[test]
    fn all_selections_build_and_report_their_kind() {
        let g = small_dataset();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let pairs = sampling::uniform_pairs(&g, Layer::Upper, 3, &mut rng).unwrap();
        let selections = [
            AlgorithmSelection::Naive,
            AlgorithmSelection::OneR,
            AlgorithmSelection::MultiRSS {
                epsilon1_fraction: 0.5,
            },
            AlgorithmSelection::MultiRDSBasic {
                epsilon1_fraction: 0.5,
            },
            AlgorithmSelection::MultiRDS,
            AlgorithmSelection::MultiRDSStar,
            AlgorithmSelection::CentralDP,
        ];
        for sel in selections {
            let summary = evaluate_on_pairs(&g, &pairs, &sel, 2.0, 1).unwrap();
            assert_eq!(summary.algorithm, sel.kind());
        }
    }

    #[test]
    fn empty_pairs_yield_empty_summary() {
        let g = small_dataset();
        let summary = evaluate_on_pairs(&g, &[], &AlgorithmSelection::OneR, 2.0, 1).unwrap();
        assert_eq!(summary.evaluations.len(), 0);
        assert_eq!(summary.metrics.count, 0);
        assert_eq!(summary.mean_communication_bytes, 0.0);
    }

    #[test]
    fn figure_sets_are_nonempty() {
        assert!(AlgorithmSelection::figure6_set().len() >= 5);
        assert!(AlgorithmSelection::figure7_set().len() >= 4);
    }
}

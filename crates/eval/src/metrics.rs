//! Error metrics used throughout the evaluation.
//!
//! The paper reports the *mean absolute error* over 100 sampled vertex pairs
//! per configuration; the analysis sections work with the *expected L2 loss*
//! (mean squared error). Both, plus mean relative error and bias, are
//! implemented over `(estimate, truth)` observation pairs.

use serde::{Deserialize, Serialize};

/// One observation: an estimate and the corresponding ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The estimator's output.
    pub estimate: f64,
    /// The exact common-neighbor count.
    pub truth: f64,
}

/// Aggregate error metrics over a set of observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorMetrics {
    /// Number of observations aggregated.
    pub count: usize,
    /// Mean absolute error `E|est − truth|`.
    pub mean_absolute_error: f64,
    /// Mean relative error `E[|est − truth| / max(truth, 1)]`.
    pub mean_relative_error: f64,
    /// Mean squared error (empirical L2 loss).
    pub mean_squared_error: f64,
    /// Mean signed error `E[est − truth]` (≈ 0 for unbiased estimators).
    pub bias: f64,
}

impl ErrorMetrics {
    /// Computes all metrics from a slice of observations.
    ///
    /// Returns `None` for an empty slice — averaging nothing is a caller bug
    /// we want surfaced, not silently zeroed.
    #[must_use]
    pub fn from_observations(observations: &[Observation]) -> Option<Self> {
        if observations.is_empty() {
            return None;
        }
        let n = observations.len() as f64;
        let mut abs = 0.0;
        let mut rel = 0.0;
        let mut sq = 0.0;
        let mut signed = 0.0;
        for o in observations {
            let err = o.estimate - o.truth;
            abs += err.abs();
            rel += err.abs() / o.truth.max(1.0);
            sq += err * err;
            signed += err;
        }
        Some(Self {
            count: observations.len(),
            mean_absolute_error: abs / n,
            mean_relative_error: rel / n,
            mean_squared_error: sq / n,
            bias: signed / n,
        })
    }
}

/// Sample mean of a slice (`None` when empty).
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance of a slice (`None` when empty).
#[must_use]
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pairs: &[(f64, f64)]) -> Vec<Observation> {
        pairs
            .iter()
            .map(|&(estimate, truth)| Observation { estimate, truth })
            .collect()
    }

    #[test]
    fn empty_observations_return_none() {
        assert!(ErrorMetrics::from_observations(&[]).is_none());
        assert!(mean(&[]).is_none());
        assert!(variance(&[]).is_none());
    }

    #[test]
    fn perfect_estimates_have_zero_error() {
        let m = ErrorMetrics::from_observations(&obs(&[(3.0, 3.0), (7.0, 7.0)])).unwrap();
        assert_eq!(m.count, 2);
        assert_eq!(m.mean_absolute_error, 0.0);
        assert_eq!(m.mean_relative_error, 0.0);
        assert_eq!(m.mean_squared_error, 0.0);
        assert_eq!(m.bias, 0.0);
    }

    #[test]
    fn hand_computed_metrics() {
        // errors: +2 and -4 ; truths: 2 and 8
        let m = ErrorMetrics::from_observations(&obs(&[(4.0, 2.0), (4.0, 8.0)])).unwrap();
        assert!((m.mean_absolute_error - 3.0).abs() < 1e-12);
        assert!((m.mean_relative_error - (1.0 + 0.5) / 2.0).abs() < 1e-12);
        assert!((m.mean_squared_error - (4.0 + 16.0) / 2.0).abs() < 1e-12);
        assert!((m.bias - (2.0 - 4.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_guards_small_truths() {
        // truth 0 -> denominator clamps to 1, so the metric stays finite.
        let m = ErrorMetrics::from_observations(&obs(&[(5.0, 0.0)])).unwrap();
        assert!((m.mean_relative_error - 5.0).abs() < 1e-12);
        assert!(m.mean_relative_error.is_finite());
    }

    #[test]
    fn mean_and_variance() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&vals).unwrap() - 2.5).abs() < 1e-12);
        assert!((variance(&vals).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let m = ErrorMetrics::from_observations(&obs(&[(4.0, 2.0)])).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: ErrorMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

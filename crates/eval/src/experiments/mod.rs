//! One module per figure/table of the paper's evaluation section.
//!
//! | Module | Paper artifact | What it reports |
//! |---|---|---|
//! | [`fig02_distribution`] | Fig. 2 | distribution of estimates on an rmwiki-like pair, ε = 1 |
//! | [`fig05_loss_curves`] | Fig. 5 | analytic L2 loss of `f*` vs `ε₁` for α ∈ {0, ½, 1} and the global minimum |
//! | [`table2_datasets`] | Table 2 | statistics of the (synthetic) datasets |
//! | [`table3_theory`] | Table 3 | analytic loss formulas vs empirical losses |
//! | [`fig06_datasets`] | Fig. 6(a)/(b) | mean absolute error and time per dataset at ε = 2 |
//! | [`fig07_epsilon`] | Fig. 7 | effect of ε ∈ [1, 3] on the mean absolute error |
//! | [`fig08_budget`] | Fig. 8 | fixed ε₁ splits vs the optimised allocation |
//! | [`fig09_imbalance`] | Fig. 9 | effect of the degree-imbalance parameter κ |
//! | [`fig10_communication`] | Fig. 10 | communication cost vs ε |
//! | [`fig11_scaling`] | Fig. 11 | effect of the number of vertices (induced subgraphs) |
//!
//! Every module exposes a `Config` with laptop-scale defaults (smaller pair
//! counts than the paper's 100 so the full suite runs in minutes, the same
//! parameters otherwise) and a `run(&Config) -> Vec<Table>` function.

pub mod fig02_distribution;
pub mod fig05_loss_curves;
pub mod fig06_datasets;
pub mod fig07_epsilon;
pub mod fig08_budget;
pub mod fig09_imbalance;
pub mod fig10_communication;
pub mod fig11_scaling;
pub mod table2_datasets;
pub mod table3_theory;

use datasets::Catalog;

/// Shared experiment context: which catalog scale to use and the base seed.
#[derive(Debug, Clone)]
pub struct Context {
    /// The dataset catalog (scaled or full).
    pub catalog: Catalog,
    /// Base seed; every dataset/pair/run derives an independent stream from it.
    pub seed: u64,
    /// Number of query pairs sampled per dataset.
    pub pairs_per_dataset: usize,
}

impl Default for Context {
    fn default() -> Self {
        Self {
            catalog: Catalog::scaled_default(),
            seed: 0xC0FFEE,
            pairs_per_dataset: 100,
        }
    }
}

impl Context {
    /// A reduced context for unit tests and smoke runs: a handful of pairs,
    /// and a catalog cap that keeps the smallest datasets (RM, AC) at their
    /// original Table 2 sizes. The cap matters: shrinking a dataset shrinks
    /// the opposite-layer size `n₁` while keeping average degrees fixed, which
    /// erases the gap between the one-round and multi-round algorithms that
    /// the experiments are designed to exhibit.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            catalog: Catalog::scaled(60_000),
            seed: 7,
            pairs_per_dataset: 8,
        }
    }
}

//! Figure 5: analytic L2 loss of the double-source estimator `f*` against the
//! randomized-response budget `ε₁`, for α ∈ {0, ½, 1} and the global minimum.
//!
//! The paper plots two panels (d_u = 5, d_w = 10 and d_u = 5, d_w = 100, both
//! at ε = 2) to show that no fixed α matches the optimised `f*` on every
//! degree profile. This module evaluates the same closed forms.

use crate::table::{fmt_f64, Table};
use cne::loss::double_source_l2;
use cne::optimizer::optimize_double_source;

/// One panel of Fig. 5: a `(d_u, d_w)` degree profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Panel {
    /// Degree of the first query vertex.
    pub degree_u: f64,
    /// Degree of the second query vertex.
    pub degree_w: f64,
}

/// Configuration of the Fig. 5 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Total budget (the paper uses 2.0).
    pub epsilon: f64,
    /// Degree profiles to plot (the paper uses (5, 10) and (5, 100)).
    pub panels: Vec<Panel>,
    /// Number of ε₁ sample points per curve.
    pub points: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            epsilon: 2.0,
            panels: vec![
                Panel {
                    degree_u: 5.0,
                    degree_w: 10.0,
                },
                Panel {
                    degree_u: 5.0,
                    degree_w: 100.0,
                },
            ],
            points: 19,
        }
    }
}

/// Runs the experiment: one table per panel with the three fixed-α curves and
/// the global minimum.
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    config
        .panels
        .iter()
        .map(|panel| {
            let global = optimize_double_source(panel.degree_u, panel.degree_w, config.epsilon);
            let mut table = Table::new(
                format!(
                    "Figure 5: L2 loss of f* (d_u = {}, d_w = {}, eps = {}); global minimum {:.3} at eps1 = {:.3}, alpha = {:.3}",
                    panel.degree_u, panel.degree_w, config.epsilon, global.loss, global.epsilon1, global.alpha
                ),
                &["eps1", "alpha=1 (f_u)", "alpha=0 (f_w)", "alpha=0.5", "global_min"],
            );
            for i in 1..=config.points {
                let eps1 = config.epsilon * i as f64 / (config.points + 1) as f64;
                let eps2 = config.epsilon - eps1;
                table.push_row(vec![
                    fmt_f64(eps1, 3),
                    fmt_f64(double_source_l2(panel.degree_u, panel.degree_w, 1.0, eps1, eps2), 3),
                    fmt_f64(double_source_l2(panel.degree_u, panel.degree_w, 0.0, eps1, eps2), 3),
                    fmt_f64(double_source_l2(panel.degree_u, panel.degree_w, 0.5, eps1, eps2), 3),
                    fmt_f64(global.loss, 3),
                ]);
            }
            table
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure5_claims() {
        let tables = run(&Config::default());
        assert_eq!(tables.len(), 2);

        // Panel 1 (d_u=5, d_w=10): the balanced average (alpha = 0.5) gets close
        // to the global minimum — within 10 % at its best eps1.
        let t1 = &tables[0];
        let global1: f64 = t1.cell_f64(0, "global_min").unwrap();
        let best_half = (0..t1.n_rows())
            .map(|r| t1.cell_f64(r, "alpha=0.5").unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_half <= global1 * 1.15,
            "best alpha=0.5 {best_half} vs global {global1}"
        );

        // Panel 2 (d_u=5, d_w=100): the single source f_u (alpha = 1) is the
        // better fixed choice and approaches the global minimum (the optimum
        // still shaves a bit off by keeping a small f_w contribution), while
        // alpha=0 (relying on the high-degree vertex) is far worse everywhere.
        let t2 = &tables[1];
        let global2: f64 = t2.cell_f64(0, "global_min").unwrap();
        let best_fu = (0..t2.n_rows())
            .map(|r| t2.cell_f64(r, "alpha=1 (f_u)").unwrap())
            .fold(f64::INFINITY, f64::min);
        let best_fw = (0..t2.n_rows())
            .map(|r| t2.cell_f64(r, "alpha=0 (f_w)").unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(best_fu <= global2 * 1.25);
        assert!(
            best_fw > best_fu * 2.0,
            "f_w {best_fw} should be much worse than f_u {best_fu}"
        );

        // The global minimum lower-bounds every curve at every point.
        for table in &tables {
            let global: f64 = table.cell_f64(0, "global_min").unwrap();
            for r in 0..table.n_rows() {
                for col in ["alpha=1 (f_u)", "alpha=0 (f_w)", "alpha=0.5"] {
                    assert!(table.cell_f64(r, col).unwrap() >= global - 1e-6);
                }
            }
        }
    }

    #[test]
    fn custom_config_row_count() {
        let cfg = Config {
            points: 5,
            panels: vec![Panel {
                degree_u: 3.0,
                degree_w: 3.0,
            }],
            epsilon: 1.0,
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].n_rows(), 5);
    }
}

//! Figure 8: effectiveness of the privacy-budget allocation optimisation.
//!
//! The paper fixes ε = 2 and sweeps the randomized-response share ε₁ of
//! MultiR-DS-Basic from 0.1ε to 0.7ε, comparing each fixed split against the
//! fully-optimised MultiR-DS (drawn as a horizontal line). Expected shape:
//! the best fixed split varies by dataset, and MultiR-DS is close to (or
//! better than) the best fixed split everywhere.

use crate::runner::{evaluate_on_pairs, AlgorithmSelection};
use crate::table::{fmt_f64, Table};
use bigraph::{sampling, Layer};
use datasets::DatasetCode;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Configuration of the Fig. 8 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Shared context (catalog, seed, pairs per dataset).
    pub context: super::Context,
    /// Total privacy budget (the paper uses 2.0).
    pub epsilon: f64,
    /// The ε₁ fractions to sweep (the paper uses 0.1–0.7).
    pub epsilon1_fractions: Vec<f64>,
    /// Datasets to include (the paper uses Team, Bookcrossing, Delicious, Orkut).
    pub datasets: Vec<DatasetCode>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            context: super::Context::default(),
            epsilon: 2.0,
            epsilon1_fractions: vec![0.1, 0.3, 0.5, 0.7],
            datasets: DatasetCode::focused_set().to_vec(),
        }
    }
}

impl Config {
    /// A fast configuration for tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            context: super::Context::smoke(),
            datasets: vec![DatasetCode::TM],
            ..Self::default()
        }
    }
}

/// Runs the experiment: one table per dataset with one row per ε₁ fraction
/// plus a final row for the optimised MultiR-DS.
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    let mut tables = Vec::new();
    for &code in &config.datasets {
        let dataset = config
            .context
            .catalog
            .generate(code, config.context.seed)
            .expect("catalog covers every code");
        let graph = &dataset.graph;
        let mut rng =
            ChaCha12Rng::seed_from_u64(config.context.seed ^ 0x000F_1608 ^ u64::from(code as u8));
        let pairs = sampling::uniform_pairs(
            graph,
            Layer::Upper,
            config.context.pairs_per_dataset,
            &mut rng,
        )
        .expect("layer has at least two vertices");

        let mut table = Table::new(
            format!(
                "Figure 8: budget allocation on {} (eps = {})",
                code, config.epsilon
            ),
            &["allocation", "mean absolute error"],
        );
        for &fraction in &config.epsilon1_fractions {
            let summary = evaluate_on_pairs(
                graph,
                &pairs,
                &AlgorithmSelection::MultiRDSBasic {
                    epsilon1_fraction: fraction,
                },
                config.epsilon,
                config.context.seed,
            )
            .expect("evaluation succeeds");
            table.push_row(vec![
                format!("MultiR-DS-Basic eps1={fraction}*eps"),
                fmt_f64(summary.metrics.mean_absolute_error, 3),
            ]);
        }
        let optimised = evaluate_on_pairs(
            graph,
            &pairs,
            &AlgorithmSelection::MultiRDS,
            config.epsilon,
            config.context.seed,
        )
        .expect("evaluation succeeds");
        table.push_row(vec![
            "MultiR-DS (optimised)".to_string(),
            fmt_f64(optimised.metrics.mean_absolute_error, 3),
        ]);
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimised_allocation_is_near_best_fixed_split() {
        let tables = run(&Config::smoke());
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        let n = t.n_rows();
        assert_eq!(n, 5); // four fixed splits + optimised
        let fixed_best = (0..n - 1)
            .map(|r| t.cell_f64(r, "mean absolute error").unwrap())
            .fold(f64::INFINITY, f64::min);
        let fixed_worst = (0..n - 1)
            .map(|r| t.cell_f64(r, "mean absolute error").unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        let optimised = t.cell_f64(n - 1, "mean absolute error").unwrap();
        // The paper's claim: the optimised allocation is close to (or better
        // than) the best fixed split. With a handful of pairs and the ε₀
        // degree noise, the Monte-Carlo spread is large, so require it to
        // beat the worst fixed split and stay within a constant factor of the
        // best one.
        assert!(
            optimised <= fixed_best * 3.0,
            "optimised {optimised} should be within 3x of the best fixed split {fixed_best}"
        );
        assert!(
            optimised <= fixed_worst,
            "optimised {optimised} should not be worse than the worst fixed split {fixed_worst}"
        );
    }
}

//! Figure 10: communication costs.
//!
//! The paper reports the average message volume (MB) per query pair for each
//! algorithm as ε varies. The costs here are *measured* from the recorded
//! client↔curator transcripts, not computed from formulas. Expected shape:
//! Naive and OneR coincide (both only upload randomized responses), the
//! multiple-round algorithms pay extra for downloads and estimator uploads,
//! and MultiR-DS additionally pays for the degree round.

use crate::runner::{evaluate_on_pairs, AlgorithmSelection};
use crate::table::{fmt_f64, fmt_sci, Table};
use bigraph::{sampling, Layer};
use datasets::DatasetCode;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Configuration of the Fig. 10 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Shared context (catalog, seed, pairs per dataset).
    pub context: super::Context,
    /// Budgets to sweep.
    pub epsilons: Vec<f64>,
    /// Datasets to include.
    pub datasets: Vec<DatasetCode>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            context: super::Context::default(),
            epsilons: vec![1.0, 1.5, 2.0, 2.5, 3.0],
            datasets: DatasetCode::focused_set().to_vec(),
        }
    }
}

impl Config {
    /// A fast configuration for tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            context: super::Context::smoke(),
            epsilons: vec![1.0, 3.0],
            datasets: vec![DatasetCode::TM],
        }
    }
}

/// Runs the experiment: one table per dataset; rows are ε values, columns are
/// algorithms, cells are average megabytes per query pair.
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    let algorithms = [
        AlgorithmSelection::Naive,
        AlgorithmSelection::OneR,
        AlgorithmSelection::MultiRSS {
            epsilon1_fraction: 0.5,
        },
        AlgorithmSelection::MultiRDS,
    ];
    let mut tables = Vec::new();
    for &code in &config.datasets {
        let dataset = config
            .context
            .catalog
            .generate(code, config.context.seed)
            .expect("catalog covers every code");
        let graph = &dataset.graph;
        let mut rng =
            ChaCha12Rng::seed_from_u64(config.context.seed ^ 0x000F_1610 ^ u64::from(code as u8));
        let pairs = sampling::uniform_pairs(
            graph,
            Layer::Upper,
            config.context.pairs_per_dataset,
            &mut rng,
        )
        .expect("layer has at least two vertices");

        let mut table = Table::new(
            format!(
                "Figure 10: communication cost on {} (MB per query pair)",
                code
            ),
            &["epsilon", "Naive", "OneR", "MultiR-SS", "MultiR-DS"],
        );
        for &eps in &config.epsilons {
            let mut row = vec![fmt_f64(eps, 1)];
            for selection in &algorithms {
                let summary = evaluate_on_pairs(graph, &pairs, selection, eps, config.context.seed)
                    .expect("evaluation succeeds");
                row.push(fmt_sci(summary.mean_communication_megabytes()));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn communication_shape_matches_paper() {
        let tables = run(&Config::smoke());
        let t = &tables[0];
        for r in 0..t.n_rows() {
            let naive: f64 = t.cell(r, "Naive").unwrap().parse().unwrap();
            let oner: f64 = t.cell(r, "OneR").unwrap().parse().unwrap();
            let ss: f64 = t.cell(r, "MultiR-SS").unwrap().parse().unwrap();
            let ds: f64 = t.cell(r, "MultiR-DS").unwrap().parse().unwrap();
            // Naive and OneR only differ by sampling noise (same mechanism).
            let rel = (naive - oner).abs() / naive.max(1e-12);
            assert!(rel < 0.25, "Naive {naive} vs OneR {oner} differ by {rel}");
            // MultiR-DS pays for two noisy lists, downloads and the degree
            // round, so it is the most expensive local algorithm.
            assert!(ds > ss, "DS {ds} should exceed SS {ss}");
            assert!(ds > naive, "DS {ds} should exceed Naive {naive}");
            assert!(ss > 0.0 && naive > 0.0);
        }
        // Higher epsilon -> sparser noisy graphs -> smaller uploads for the
        // RR-based algorithms.
        if t.n_rows() >= 2 {
            let first: f64 = t.cell(0, "Naive").unwrap().parse().unwrap();
            let last: f64 = t.cell(t.n_rows() - 1, "Naive").unwrap().parse().unwrap();
            assert!(last < first);
        }
    }
}

//! Figure 11: effect of the number of vertices.
//!
//! The paper runs every algorithm on induced subgraphs containing 20 %–100 %
//! of each dataset's vertices (ε = 2). Expected shape: the errors of Naive
//! and OneR grow with the graph size (their losses depend on n₁), while
//! CentralDP, MultiR-SS and MultiR-DS stay flat (their losses depend only on
//! query degrees and the budget).

use crate::runner::{evaluate_on_pairs, AlgorithmSelection};
use crate::table::{fmt_f64, Table};
use bigraph::{sampling, Layer};
use datasets::DatasetCode;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Configuration of the Fig. 11 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Shared context (catalog, seed, pairs per dataset).
    pub context: super::Context,
    /// Privacy budget (the paper uses 2.0).
    pub epsilon: f64,
    /// Vertex fractions to evaluate (the paper uses 0.2 .. 1.0).
    pub fractions: Vec<f64>,
    /// Datasets to include.
    pub datasets: Vec<DatasetCode>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            context: super::Context::default(),
            epsilon: 2.0,
            fractions: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            datasets: DatasetCode::focused_set().to_vec(),
        }
    }
}

impl Config {
    /// A fast configuration for tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            context: super::Context::smoke(),
            fractions: vec![0.2, 1.0],
            datasets: vec![DatasetCode::RM],
            ..Self::default()
        }
    }
}

/// Runs the experiment: one table per dataset; rows are vertex fractions.
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    let algorithms = [
        AlgorithmSelection::Naive,
        AlgorithmSelection::OneR,
        AlgorithmSelection::MultiRSS {
            epsilon1_fraction: 0.5,
        },
        AlgorithmSelection::MultiRDS,
        AlgorithmSelection::CentralDP,
    ];
    let mut tables = Vec::new();
    for &code in &config.datasets {
        let dataset = config
            .context
            .catalog
            .generate(code, config.context.seed)
            .expect("catalog covers every code");
        let graph = &dataset.graph;
        let mut table = Table::new(
            format!(
                "Figure 11: effect of the number of vertices on {} (eps = {})",
                code, config.epsilon
            ),
            &[
                "fraction",
                "n_vertices",
                "Naive",
                "OneR",
                "MultiR-SS",
                "MultiR-DS",
                "CentralDP",
            ],
        );
        for &fraction in &config.fractions {
            let mut rng = ChaCha12Rng::seed_from_u64(
                config.context.seed ^ 0x000F_1611 ^ u64::from(code as u8) ^ fraction.to_bits(),
            );
            let sub =
                sampling::induced_subgraph(graph, fraction, &mut rng).expect("fraction is valid");
            let subgraph = &sub.graph;
            if subgraph.layer_size(Layer::Upper) < 2 {
                continue;
            }
            let pairs = sampling::uniform_pairs(
                subgraph,
                Layer::Upper,
                config.context.pairs_per_dataset,
                &mut rng,
            )
            .expect("layer has at least two vertices");
            let mut row = vec![fmt_f64(fraction, 1), subgraph.n_vertices().to_string()];
            for selection in &algorithms {
                let summary = evaluate_on_pairs(
                    subgraph,
                    &pairs,
                    selection,
                    config.epsilon,
                    config.context.seed,
                )
                .expect("evaluation succeeds");
                row.push(fmt_f64(summary.metrics.mean_absolute_error, 3));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_errors_grow_with_graph_size_but_multiround_stay_flat() {
        let tables = run(&Config::smoke());
        let t = &tables[0];
        assert_eq!(t.n_rows(), 2);
        let small_naive = t.cell_f64(0, "Naive").unwrap();
        let large_naive = t.cell_f64(1, "Naive").unwrap();
        let small_oner = t.cell_f64(0, "OneR").unwrap();
        let large_oner = t.cell_f64(1, "OneR").unwrap();
        assert!(
            large_naive > small_naive,
            "Naive error should grow with the graph: {small_naive} -> {large_naive}"
        );
        assert!(
            large_oner > small_oner * 0.8,
            "OneR error should not shrink when the graph grows: {small_oner} -> {large_oner}"
        );
        // Multi-round and central errors stay within a constant factor.
        for algo in ["MultiR-SS", "MultiR-DS", "CentralDP"] {
            let small = t.cell_f64(0, algo).unwrap();
            let large = t.cell_f64(1, algo).unwrap();
            assert!(
                large < (small + 1.0) * 5.0,
                "{algo} error should stay roughly flat: {small} -> {large}"
            );
        }
        // Vertex counts grow with the fraction.
        assert!(t.cell_f64(1, "n_vertices").unwrap() > t.cell_f64(0, "n_vertices").unwrap());
    }
}

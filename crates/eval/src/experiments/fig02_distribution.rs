//! Figure 2: the distribution of estimates on an rmwiki-like dataset at ε = 1.
//!
//! The paper runs Naive, OneR, MultiR-SS and MultiR-DS 1000 times on a single
//! query pair with highly imbalanced degrees (556 vs 2) and plots the
//! densities. We reproduce the per-algorithm mean, standard deviation and a
//! coarse histogram; the qualitative claims to check are
//!
//! * Naive's distribution is shifted far to the right of the true count,
//! * OneR is centred on the truth but wide,
//! * MultiR-SS is centred and narrower,
//! * MultiR-DS is centred and the narrowest.

use crate::metrics;
use crate::table::{fmt_f64, Table};
use crate::{build_estimator, AlgorithmSelection};
use bigraph::{sampling, Layer};
use cne::Query;
use datasets::DatasetCode;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Configuration of the Fig. 2 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Shared context (catalog, seed).
    pub context: super::Context,
    /// Privacy budget (the paper uses 1.0).
    pub epsilon: f64,
    /// Number of repeated runs per algorithm (the paper uses 1000).
    pub runs: usize,
    /// Minimum degree imbalance of the chosen query pair.
    pub kappa: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            context: super::Context::default(),
            epsilon: 1.0,
            runs: 1_000,
            kappa: 20.0,
        }
    }
}

impl Config {
    /// A fast configuration for tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            context: super::Context::smoke(),
            runs: 40,
            ..Self::default()
        }
    }
}

/// Runs the experiment and returns one summary table plus one histogram table
/// per algorithm.
///
/// # Panics
///
/// Panics if the RM dataset profile is missing from the catalog (a build
/// configuration error, not a runtime condition).
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    let dataset = config
        .context
        .catalog
        .generate(DatasetCode::RM, config.context.seed)
        .expect("RM profile exists");
    let graph = &dataset.graph;

    // Pick an imbalanced pair, mirroring the paper's (556, 2) example.
    let mut rng = ChaCha12Rng::seed_from_u64(config.context.seed ^ 0x000F_1602);
    let pair = sampling::imbalanced_pairs(graph, Layer::Upper, config.kappa, 1, &mut rng)
        .ok()
        .and_then(|v| v.first().copied())
        .unwrap_or(sampling::QueryPair::new(Layer::Upper, 0, 1));
    let query = Query::new(pair.layer, pair.u, pair.w);
    let truth = query.exact_count(graph).expect("valid query") as f64;
    let du = graph.degree(Layer::Upper, pair.u);
    let dw = graph.degree(Layer::Upper, pair.w);

    let algorithms = [
        AlgorithmSelection::Naive,
        AlgorithmSelection::OneR,
        AlgorithmSelection::MultiRSS {
            epsilon1_fraction: 0.5,
        },
        AlgorithmSelection::MultiRDS,
    ];

    let mut summary = Table::new(
        format!(
            "Figure 2: estimate distribution on {} (deg pair {du}/{dw}, true C2 = {truth}, eps = {})",
            dataset.code, config.epsilon
        ),
        &["algorithm", "mean", "std", "bias", "true_count"],
    );
    let mut tables = Vec::new();

    for selection in algorithms {
        let estimator = build_estimator(&selection);
        let estimates: Vec<f64> = (0..config.runs)
            .map(|i| {
                let mut run_rng =
                    ChaCha12Rng::seed_from_u64(config.context.seed ^ (i as u64) << 16);
                estimator
                    .estimate(graph, &query, config.epsilon, &mut run_rng)
                    .expect("estimation succeeds")
                    .estimate
            })
            .collect();
        let mean = metrics::mean(&estimates).unwrap_or(0.0);
        let std = metrics::variance(&estimates).unwrap_or(0.0).sqrt();
        summary.push_row(vec![
            selection.kind().paper_name().to_string(),
            fmt_f64(mean, 2),
            fmt_f64(std, 2),
            fmt_f64(mean - truth, 2),
            fmt_f64(truth, 0),
        ]);

        tables.push(histogram_table(
            selection.kind().paper_name(),
            &estimates,
            truth,
        ));
    }

    let mut out = vec![summary];
    out.append(&mut tables);
    out
}

/// Builds a coarse 12-bin histogram table of the estimates.
fn histogram_table(name: &str, estimates: &[f64], truth: f64) -> Table {
    let mut table = Table::new(
        format!("Figure 2 histogram: {name}"),
        &["bin_low", "bin_high", "count", "contains_truth"],
    );
    if estimates.is_empty() {
        return table;
    }
    let min = estimates
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min)
        .min(truth);
    let max = estimates
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(truth);
    let bins = 12usize;
    let width = ((max - min) / bins as f64).max(1e-9);
    let mut counts = vec![0usize; bins];
    for &v in estimates {
        let idx = (((v - min) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    for (i, &count) in counts.iter().enumerate() {
        let lo = min + i as f64 * width;
        let hi = lo + width;
        table.push_row(vec![
            fmt_f64(lo, 1),
            fmt_f64(hi, 1),
            count.to_string(),
            (truth >= lo && truth < hi || (i == bins - 1 && truth >= hi)).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reproduces_figure_shape() {
        let tables = run(&Config::smoke());
        // One summary plus four histograms.
        assert_eq!(tables.len(), 5);
        let summary = &tables[0];
        assert_eq!(summary.n_rows(), 4);

        let truth: f64 = summary.cell_f64(0, "true_count").unwrap();
        let naive_mean = summary.cell_f64(0, "mean").unwrap();
        let oner_std = summary.cell_f64(1, "std").unwrap();
        let ss_std = summary.cell_f64(2, "std").unwrap();
        let ds_std = summary.cell_f64(3, "std").unwrap();

        // Naive overestimates; the multi-round estimators are tighter than OneR.
        assert!(naive_mean > truth);
        assert!(ss_std < oner_std);
        assert!(ds_std < oner_std);

        // Histograms cover all runs.
        for hist in &tables[1..] {
            let total: usize = (0..hist.n_rows())
                .map(|r| hist.cell(r, "count").unwrap().parse::<usize>().unwrap())
                .sum();
            assert_eq!(total, Config::smoke().runs);
        }
    }

    #[test]
    fn histogram_handles_constant_estimates() {
        let t = histogram_table("X", &[2.0, 2.0, 2.0], 2.0);
        let total: usize = (0..t.n_rows())
            .map(|r| t.cell(r, "count").unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn histogram_empty_input() {
        let t = histogram_table("X", &[], 1.0);
        assert_eq!(t.n_rows(), 0);
    }
}

//! Table 2: dataset statistics.
//!
//! The paper lists the 15 KONECT datasets with their layer sizes and edge
//! counts. We report both the target profile (the scaled spec) and the
//! statistics of the synthetic graph actually generated from it, so the
//! substitution documented in `DESIGN.md` is auditable.

use crate::table::{fmt_f64, Table};
use bigraph::stats::GraphSummary;
use datasets::DatasetCode;

/// Configuration of the Table 2 reproduction.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Shared context (catalog, seed).
    pub context: super::Context,
    /// Restrict to a subset of datasets (all 15 when empty).
    pub datasets: Vec<DatasetCode>,
}

impl Config {
    /// A fast configuration for tests: the three smallest profiles.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            context: super::Context::smoke(),
            datasets: vec![DatasetCode::RM, DatasetCode::AC, DatasetCode::DA],
        }
    }
}

/// Runs the experiment: one row per dataset.
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    let codes: Vec<DatasetCode> = if config.datasets.is_empty() {
        DatasetCode::all().to_vec()
    } else {
        config.datasets.clone()
    };
    let mut table = Table::new(
        "Table 2: dataset statistics (spec = scaled target, gen = generated graph)",
        &[
            "code",
            "name",
            "upper",
            "lower",
            "spec_|U|",
            "spec_|L|",
            "spec_|E|",
            "gen_|E|",
            "gen_dmax_U",
            "gen_dmax_L",
            "gen_avg_deg_U",
        ],
    );
    for code in codes {
        let ds = config
            .context
            .catalog
            .generate(code, config.context.seed)
            .expect("catalog covers every code");
        let summary = GraphSummary::of(&ds.graph);
        table.push_row(vec![
            code.as_str().to_string(),
            ds.spec.name.clone(),
            ds.spec.upper_entity.clone(),
            ds.spec.lower_entity.clone(),
            ds.spec.n_upper.to_string(),
            ds.spec.n_lower.to_string(),
            ds.spec.n_edges.to_string(),
            summary.n_edges.to_string(),
            summary.max_degree_upper.to_string(),
            summary.max_degree_lower.to_string(),
            fmt_f64(summary.avg_degree_upper, 2),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_match_their_specs() {
        let tables = run(&Config::smoke());
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.n_rows(), 3);
        for r in 0..t.n_rows() {
            let spec_edges: f64 = t.cell_f64(r, "spec_|E|").unwrap();
            let gen_edges: f64 = t.cell_f64(r, "gen_|E|").unwrap();
            assert_eq!(spec_edges, gen_edges, "row {r}");
            assert!(
                t.cell_f64(r, "gen_dmax_U").unwrap() >= t.cell_f64(r, "gen_avg_deg_U").unwrap()
            );
        }
    }

    #[test]
    fn full_table_has_fifteen_rows() {
        // Use the smoke catalog but all codes (still fast: ≤ 5000 edges each).
        let cfg = Config {
            context: super::super::Context::smoke(),
            datasets: vec![],
        };
        let tables = run(&cfg);
        assert_eq!(tables[0].n_rows(), 15);
    }
}

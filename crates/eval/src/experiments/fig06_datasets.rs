//! Figure 6: mean absolute error (a) and computational time (b) of every
//! algorithm across the datasets at ε = 2.

use crate::runner::{evaluate_on_pairs, AlgorithmSelection};
use crate::table::{fmt_f64, Table};
use bigraph::{sampling, Layer};
use datasets::DatasetCode;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Configuration of the Fig. 6 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Shared context (catalog, seed, pairs per dataset).
    pub context: super::Context,
    /// Privacy budget (the paper uses 2.0).
    pub epsilon: f64,
    /// Datasets to include (the paper uses all 15; default mirrors that).
    pub datasets: Vec<DatasetCode>,
    /// Algorithms to evaluate.
    pub algorithms: Vec<AlgorithmSelection>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            context: super::Context::default(),
            epsilon: 2.0,
            datasets: DatasetCode::all().to_vec(),
            algorithms: AlgorithmSelection::figure6_set(),
        }
    }
}

impl Config {
    /// A fast configuration for tests: two small datasets, few pairs.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            context: super::Context::smoke(),
            datasets: vec![DatasetCode::RM, DatasetCode::AC],
            ..Self::default()
        }
    }
}

/// Runs the experiment: one table for mean absolute error (Fig. 6a) and one
/// for wall-clock time in milliseconds (Fig. 6b). Rows are datasets, columns
/// are algorithms.
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    let algo_names: Vec<String> = config
        .algorithms
        .iter()
        .map(|a| a.kind().paper_name().to_string())
        .collect();
    let mut columns: Vec<&str> = vec!["dataset"];
    columns.extend(algo_names.iter().map(String::as_str));

    let mut mae_table = Table::new(
        format!(
            "Figure 6(a): mean absolute error per dataset (eps = {})",
            config.epsilon
        ),
        &columns,
    );
    let mut time_table = Table::new(
        format!(
            "Figure 6(b): total computation time per dataset in ms ({} pairs, eps = {})",
            config.context.pairs_per_dataset, config.epsilon
        ),
        &columns,
    );

    for &code in &config.datasets {
        let dataset = config
            .context
            .catalog
            .generate(code, config.context.seed)
            .expect("catalog covers every code");
        let graph = &dataset.graph;
        let mut rng = ChaCha12Rng::seed_from_u64(config.context.seed ^ u64::from(code as u8));
        let pairs = sampling::uniform_pairs(
            graph,
            Layer::Upper,
            config.context.pairs_per_dataset,
            &mut rng,
        )
        .expect("layer has at least two vertices");

        let mut mae_row = vec![code.as_str().to_string()];
        let mut time_row = vec![code.as_str().to_string()];
        for selection in &config.algorithms {
            let summary = evaluate_on_pairs(
                graph,
                &pairs,
                selection,
                config.epsilon,
                config.context.seed,
            )
            .expect("evaluation succeeds");
            mae_row.push(fmt_f64(summary.metrics.mean_absolute_error, 3));
            time_row.push(fmt_f64(summary.total_time.as_secs_f64() * 1e3, 2));
        }
        mae_table.push_row(mae_row);
        time_table.push_row(time_row);
    }

    vec![mae_table, time_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure6_ordering() {
        let tables = run(&Config::smoke());
        assert_eq!(tables.len(), 2);
        let mae = &tables[0];
        assert_eq!(mae.n_rows(), 2);
        for r in 0..mae.n_rows() {
            let naive = mae.cell_f64(r, "Naive").unwrap();
            let oner = mae.cell_f64(r, "OneR").unwrap();
            let ss = mae.cell_f64(r, "MultiR-SS").unwrap();
            let ds = mae.cell_f64(r, "MultiR-DS").unwrap();
            let central = mae.cell_f64(r, "CentralDP").unwrap();
            // The paper's headline ordering: multi-round algorithms beat the
            // one-round ones, and the central model beats everything local.
            assert!(ss < naive, "row {r}: SS {ss} vs Naive {naive}");
            assert!(ss < oner, "row {r}: SS {ss} vs OneR {oner}");
            assert!(ds < oner, "row {r}: DS {ds} vs OneR {oner}");
            assert!(central <= ss + 1.0, "row {r}: Central {central} vs SS {ss}");
        }
        // Time table has the same shape and positive entries.
        let time = &tables[1];
        assert_eq!(time.n_rows(), 2);
        for r in 0..time.n_rows() {
            for algo in ["Naive", "OneR", "MultiR-SS", "MultiR-DS"] {
                assert!(time.cell_f64(r, algo).unwrap() >= 0.0);
            }
        }
    }
}

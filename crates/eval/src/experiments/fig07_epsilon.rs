//! Figure 7: effect of the privacy budget ε on the mean absolute error.
//!
//! The paper sweeps ε from 1.0 to 3.0 in steps of 0.5 on eight datasets and
//! plots the mean absolute error of Naive, OneR, MultiR-SS, MultiR-DS and
//! CentralDP. Expected shape: every algorithm improves as ε grows, the
//! multi-round algorithms dominate the one-round ones by orders of magnitude,
//! and CentralDP lower-bounds everything.

use crate::runner::{evaluate_on_pairs, AlgorithmSelection};
use crate::table::{fmt_f64, Table};
use bigraph::{sampling, Layer};
use datasets::DatasetCode;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Configuration of the Fig. 7 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Shared context (catalog, seed, pairs per dataset).
    pub context: super::Context,
    /// Budgets to sweep (the paper uses 1.0, 1.5, 2.0, 2.5, 3.0).
    pub epsilons: Vec<f64>,
    /// Datasets to include (the paper uses the eight largest).
    pub datasets: Vec<DatasetCode>,
    /// Algorithms to evaluate.
    pub algorithms: Vec<AlgorithmSelection>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            context: super::Context::default(),
            epsilons: vec![1.0, 1.5, 2.0, 2.5, 3.0],
            datasets: DatasetCode::epsilon_sweep_set().to_vec(),
            algorithms: AlgorithmSelection::figure7_set(),
        }
    }
}

impl Config {
    /// A fast configuration for tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            context: super::Context::smoke(),
            epsilons: vec![1.0, 3.0],
            datasets: vec![DatasetCode::AC],
            ..Self::default()
        }
    }
}

/// Runs the experiment: one table per dataset; rows are ε values, columns are
/// algorithms.
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    let algo_names: Vec<String> = config
        .algorithms
        .iter()
        .map(|a| a.kind().paper_name().to_string())
        .collect();
    let mut columns: Vec<&str> = vec!["epsilon"];
    columns.extend(algo_names.iter().map(String::as_str));

    let mut tables = Vec::new();
    for &code in &config.datasets {
        let dataset = config
            .context
            .catalog
            .generate(code, config.context.seed)
            .expect("catalog covers every code");
        let graph = &dataset.graph;
        let mut rng =
            ChaCha12Rng::seed_from_u64(config.context.seed ^ 0x000F_1607 ^ u64::from(code as u8));
        let pairs = sampling::uniform_pairs(
            graph,
            Layer::Upper,
            config.context.pairs_per_dataset,
            &mut rng,
        )
        .expect("layer has at least two vertices");

        let mut table = Table::new(
            format!(
                "Figure 7: effect of epsilon on mean absolute error ({})",
                code
            ),
            &columns,
        );
        for &eps in &config.epsilons {
            let mut row = vec![fmt_f64(eps, 1)];
            for selection in &config.algorithms {
                let summary = evaluate_on_pairs(graph, &pairs, selection, eps, config.context.seed)
                    .expect("evaluation succeeds");
                row.push(fmt_f64(summary.metrics.mean_absolute_error, 3));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_decreases_with_epsilon_and_multiround_wins() {
        let tables = run(&Config::smoke());
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.n_rows(), 2);

        // Naive and OneR errors shrink as the budget grows.
        for algo in ["Naive", "OneR"] {
            let low = t.cell_f64(0, algo).unwrap();
            let high = t.cell_f64(1, algo).unwrap();
            assert!(
                high < low,
                "{algo}: error at eps=3 ({high}) should be below eps=1 ({low})"
            );
        }
        // At every epsilon the multi-round algorithms beat OneR.
        for r in 0..t.n_rows() {
            let oner = t.cell_f64(r, "OneR").unwrap();
            assert!(t.cell_f64(r, "MultiR-SS").unwrap() < oner);
            assert!(t.cell_f64(r, "MultiR-DS").unwrap() < oner);
        }
    }
}

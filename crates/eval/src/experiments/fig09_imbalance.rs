//! Figure 9: robustness to query pairs with imbalanced degrees.
//!
//! The paper samples pairs whose degree ratio exceeds κ ∈ {10⁰, 10¹, 10², 10³}
//! and compares MultiR-SS, MultiR-DS-Basic and MultiR-DS. Expected shape: the
//! errors of MultiR-SS and MultiR-DS-Basic grow with κ, while MultiR-DS stays
//! roughly flat because it re-weights towards the low-degree vertex.

use crate::runner::{evaluate_on_pairs, AlgorithmSelection};
use crate::table::{fmt_f64, Table};
use bigraph::{sampling, Layer};
use datasets::DatasetCode;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Configuration of the Fig. 9 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Shared context (catalog, seed, pairs per dataset).
    pub context: super::Context,
    /// Privacy budget (the paper uses 2.0).
    pub epsilon: f64,
    /// Degree-imbalance thresholds κ (the paper uses 1, 10, 100, 1000).
    pub kappas: Vec<f64>,
    /// Datasets to include.
    pub datasets: Vec<DatasetCode>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            context: super::Context::default(),
            epsilon: 2.0,
            kappas: vec![1.0, 10.0, 100.0, 1000.0],
            datasets: DatasetCode::focused_set().to_vec(),
        }
    }
}

impl Config {
    /// A fast configuration for tests. Uses the Bookcrossing profile (whose
    /// skewed degrees still contain κ ≥ 100 pairs at smoke scale) and more
    /// pairs than the other smoke configs to keep the comparison stable.
    #[must_use]
    pub fn smoke() -> Self {
        let mut context = super::Context::smoke();
        context.pairs_per_dataset = 20;
        Self {
            context,
            kappas: vec![1.0, 100.0],
            datasets: vec![DatasetCode::BX],
            ..Self::default()
        }
    }
}

/// Runs the experiment: one table per dataset; rows are κ values, columns are
/// the three double/single-source algorithms.
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    let algorithms = [
        AlgorithmSelection::MultiRSS {
            epsilon1_fraction: 0.5,
        },
        AlgorithmSelection::MultiRDSBasic {
            epsilon1_fraction: 0.5,
        },
        AlgorithmSelection::MultiRDS,
    ];
    let mut tables = Vec::new();
    for &code in &config.datasets {
        let dataset = config
            .context
            .catalog
            .generate(code, config.context.seed)
            .expect("catalog covers every code");
        let graph = &dataset.graph;
        let mut table = Table::new(
            format!(
                "Figure 9: effect of degree imbalance kappa on {} (eps = {})",
                code, config.epsilon
            ),
            &[
                "kappa",
                "pairs",
                "MultiR-SS",
                "MultiR-DS-Basic",
                "MultiR-DS",
            ],
        );
        for &kappa in &config.kappas {
            let mut rng = ChaCha12Rng::seed_from_u64(
                config.context.seed ^ 0x000F_1609 ^ u64::from(code as u8) ^ kappa.to_bits(),
            );
            let pairs = sampling::imbalanced_pairs(
                graph,
                Layer::Upper,
                kappa,
                config.context.pairs_per_dataset,
                &mut rng,
            )
            .unwrap_or_default();
            if pairs.is_empty() {
                table.push_row(vec![
                    fmt_f64(kappa, 0),
                    "0".to_string(),
                    "n/a".to_string(),
                    "n/a".to_string(),
                    "n/a".to_string(),
                ]);
                continue;
            }
            let mut row = vec![fmt_f64(kappa, 0), pairs.len().to_string()];
            for selection in &algorithms {
                let summary = evaluate_on_pairs(
                    graph,
                    &pairs,
                    selection,
                    config.epsilon,
                    config.context.seed,
                )
                .expect("evaluation succeeds");
                row.push(fmt_f64(summary.metrics.mean_absolute_error, 3));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ds_is_robust_to_imbalance() {
        let tables = run(&Config::smoke());
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.n_rows(), 2);
        let last = t.n_rows() - 1;
        if t.cell(last, "MultiR-SS") == Some("n/a") {
            // The scaled-down graph had no sufficiently imbalanced pairs; the
            // n/a path is itself exercised in the next test.
            return;
        }
        // The fixed even average suffers when one endpoint has a huge degree;
        // the optimised MultiR-DS re-weights towards the low-degree endpoint
        // and should not be worse than MultiR-DS-Basic at high imbalance.
        let basic_high = t.cell_f64(last, "MultiR-DS-Basic").unwrap();
        let ds_high = t.cell_f64(last, "MultiR-DS").unwrap();
        assert!(
            ds_high <= basic_high * 1.1,
            "MultiR-DS ({ds_high}) should not exceed MultiR-DS-Basic ({basic_high}) under heavy imbalance"
        );
        // And the imbalance has to actually hurt the non-adaptive estimator:
        // its error at kappa = 100 exceeds its error at kappa = 1.
        let basic_low = t.cell_f64(0, "MultiR-DS-Basic").unwrap();
        assert!(
            basic_high > basic_low,
            "MultiR-DS-Basic error should grow with imbalance: {basic_low} -> {basic_high}"
        );
    }

    #[test]
    fn unreachable_kappa_produces_na_rows() {
        let mut cfg = Config::smoke();
        cfg.kappas = vec![1e9];
        let tables = run(&cfg);
        let t = &tables[0];
        assert_eq!(t.cell(0, "MultiR-SS"), Some("n/a"));
    }
}

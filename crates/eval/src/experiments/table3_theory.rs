//! Table 3: the analytic loss summary, validated empirically.
//!
//! The paper's Table 3 lists the expected L2 loss of every algorithm. Beyond
//! printing the closed forms for a set of representative configurations, this
//! module re-estimates each unbiased algorithm's loss empirically (repeated
//! runs on a synthetic pair with the prescribed degrees) and reports the
//! ratio — a direct check that the implementation obeys its own theory.

use crate::metrics;
use crate::table::{fmt_f64, fmt_sci, Table};
use crate::{build_estimator, AlgorithmSelection};
use bigraph::{BipartiteGraph, Layer};
use cne::loss;
use cne::Query;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// One Table 3 configuration: opposite-layer size, query degrees and budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Opposite-layer size `n₁`.
    pub opposite_size: usize,
    /// Degree of `u`.
    pub degree_u: usize,
    /// Degree of `w`.
    pub degree_w: usize,
    /// Overlap (true common-neighbor count).
    pub overlap: usize,
    /// Total budget ε.
    pub epsilon: f64,
}

/// Configuration of the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Scenarios to evaluate.
    pub scenarios: Vec<Scenario>,
    /// Number of repeated runs used for the empirical variance.
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            scenarios: vec![
                Scenario {
                    opposite_size: 2_000,
                    degree_u: 10,
                    degree_w: 20,
                    overlap: 5,
                    epsilon: 2.0,
                },
                Scenario {
                    opposite_size: 2_000,
                    degree_u: 10,
                    degree_w: 200,
                    overlap: 8,
                    epsilon: 2.0,
                },
            ],
            runs: 600,
            seed: 42,
        }
    }
}

impl Config {
    /// A fast configuration for tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            scenarios: vec![Scenario {
                opposite_size: 400,
                degree_u: 8,
                degree_w: 30,
                overlap: 4,
                epsilon: 2.0,
            }],
            runs: 250,
            seed: 42,
        }
    }
}

/// Builds a two-vertex graph realising the prescribed degrees and overlap.
fn scenario_graph(s: &Scenario) -> (BipartiteGraph, Query) {
    assert!(s.overlap <= s.degree_u.min(s.degree_w));
    assert!(s.degree_u + s.degree_w - s.overlap <= s.opposite_size);
    // u gets neighbors [0, degree_u); w gets [degree_u - overlap, degree_u - overlap + degree_w).
    let u_edges = (0..s.degree_u as u32).map(|v| (0u32, v));
    let start_w = (s.degree_u - s.overlap) as u32;
    let w_edges = (start_w..start_w + s.degree_w as u32).map(|v| (1u32, v));
    let g = BipartiteGraph::from_edges(2, s.opposite_size, u_edges.chain(w_edges))
        .expect("scenario edges are in range");
    (g, Query::new(Layer::Upper, 0, 1))
}

/// Runs the experiment: one table of theoretical losses and one table of
/// theory-vs-empirical ratios per scenario.
#[must_use]
pub fn run(config: &Config) -> Vec<Table> {
    let mut theory = Table::new(
        "Table 3: expected L2 losses (closed forms)",
        &[
            "n1",
            "d_u",
            "d_w",
            "eps",
            "Naive(bound)",
            "OneR",
            "MultiR-SS",
            "MultiR-DS",
            "CentralDP",
        ],
    );
    let mut empirical = Table::new(
        "Table 3 validation: empirical variance / theoretical variance (unbiased algorithms)",
        &[
            "n1",
            "d_u",
            "d_w",
            "eps",
            "OneR",
            "MultiR-SS",
            "MultiR-DS-Basic",
        ],
    );

    for s in &config.scenarios {
        let row = loss::LossSummaryRow::evaluate(
            s.opposite_size,
            s.degree_u as f64,
            s.degree_w as f64,
            s.epsilon,
        );
        theory.push_row(vec![
            s.opposite_size.to_string(),
            s.degree_u.to_string(),
            s.degree_w.to_string(),
            fmt_f64(s.epsilon, 1),
            fmt_sci(row.naive),
            fmt_f64(row.one_round, 3),
            fmt_f64(row.multi_r_ss, 3),
            fmt_f64(row.multi_r_ds, 3),
            fmt_f64(row.central, 3),
        ]);

        let (g, query) = scenario_graph(s);
        let truth = query.exact_count(&g).expect("valid query") as f64;
        let half = s.epsilon / 2.0;
        let expectations = [
            (
                AlgorithmSelection::OneR,
                loss::one_round_l2(
                    s.opposite_size,
                    s.degree_u as f64,
                    s.degree_w as f64,
                    s.epsilon,
                ),
            ),
            (
                AlgorithmSelection::MultiRSS {
                    epsilon1_fraction: 0.5,
                },
                loss::single_source_l2(s.degree_u as f64, half, half),
            ),
            (
                AlgorithmSelection::MultiRDSBasic {
                    epsilon1_fraction: 0.5,
                },
                loss::double_source_l2(s.degree_u as f64, s.degree_w as f64, 0.5, half, half),
            ),
        ];
        let mut ratios = Vec::new();
        for (selection, theoretical) in expectations {
            let estimator = build_estimator(&selection);
            let squared_errors: Vec<f64> = (0..config.runs)
                .map(|i| {
                    let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ ((i as u64) << 20));
                    let est = estimator
                        .estimate(&g, &query, s.epsilon, &mut rng)
                        .expect("estimation succeeds")
                        .estimate;
                    (est - truth) * (est - truth)
                })
                .collect();
            let empirical_l2 = metrics::mean(&squared_errors).unwrap_or(0.0);
            ratios.push(empirical_l2 / theoretical);
        }
        empirical.push_row(vec![
            s.opposite_size.to_string(),
            s.degree_u.to_string(),
            s.degree_w.to_string(),
            fmt_f64(s.epsilon, 1),
            fmt_f64(ratios[0], 3),
            fmt_f64(ratios[1], 3),
            fmt_f64(ratios[2], 3),
        ]);
    }

    vec![theory, empirical]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theory_table_preserves_ordering() {
        let tables = run(&Config::smoke());
        let theory = &tables[0];
        assert_eq!(theory.n_rows(), 1);
        let naive: f64 = theory.cell(0, "Naive(bound)").unwrap().parse().unwrap();
        let oner = theory.cell_f64(0, "OneR").unwrap();
        let ss = theory.cell_f64(0, "MultiR-SS").unwrap();
        let ds = theory.cell_f64(0, "MultiR-DS").unwrap();
        let central = theory.cell_f64(0, "CentralDP").unwrap();
        assert!(naive > oner);
        assert!(oner > ss);
        assert!(ss >= ds);
        assert!(ds > central);
    }

    #[test]
    fn empirical_losses_match_theory_within_tolerance() {
        let tables = run(&Config::smoke());
        let empirical = &tables[1];
        for col in ["OneR", "MultiR-SS", "MultiR-DS-Basic"] {
            let ratio = empirical.cell_f64(0, col).unwrap();
            assert!(
                (0.6..=1.4).contains(&ratio),
                "{col}: empirical/theory ratio {ratio} out of tolerance"
            );
        }
    }

    #[test]
    fn scenario_graph_realises_degrees() {
        let s = Scenario {
            opposite_size: 100,
            degree_u: 10,
            degree_w: 30,
            overlap: 7,
            epsilon: 2.0,
        };
        let (g, q) = scenario_graph(&s);
        assert_eq!(g.degree(Layer::Upper, 0), 10);
        assert_eq!(g.degree(Layer::Upper, 1), 30);
        assert_eq!(q.exact_count(&g).unwrap(), 7);
    }
}

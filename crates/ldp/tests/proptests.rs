//! Property-based tests for the LDP substrate.

use ldp::budget::{BudgetAccountant, Composition, PrivacyBudget};
use ldp::laplace::{sample_laplace, LaplaceMechanism};
use ldp::mechanism::Sensitivity;
use ldp::randomized_response::RandomizedResponse;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_epsilon() -> impl Strategy<Value = f64> {
    0.1f64..8.0
}

proptest! {
    /// Flip probability is always in (0, 0.5) and decreasing in epsilon.
    #[test]
    fn flip_probability_in_range(eps in arb_epsilon()) {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let p = rr.flip_probability();
        prop_assert!(p > 0.0 && p < 0.5);
        let rr2 = RandomizedResponse::new(PrivacyBudget::new(eps + 0.5).unwrap());
        prop_assert!(rr2.flip_probability() < p);
        prop_assert!((rr.keep_probability() + p - 1.0).abs() < 1e-12);
    }

    /// The unbiased edge estimator has expectation equal to the true bit for
    /// any epsilon (checked symbolically through the two-outcome expectation).
    #[test]
    fn edge_estimator_unbiased(eps in arb_epsilon()) {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let p = rr.flip_probability();
        let phi1 = rr.unbiased_edge_estimate(true);
        let phi0 = rr.unbiased_edge_estimate(false);
        // true bit = 1
        prop_assert!(((1.0 - p) * phi1 + p * phi0 - 1.0).abs() < 1e-9);
        // true bit = 0
        prop_assert!((p * phi1 + (1.0 - p) * phi0).abs() < 1e-9);
        // variance formula is symmetric and positive
        prop_assert!(rr.edge_estimate_variance() > 0.0);
    }

    /// Perturbed neighbor lists are sorted, deduplicated, and within range.
    #[test]
    fn perturbed_lists_are_well_formed(
        eps in arb_epsilon(),
        seed in any::<u64>(),
        degree in 0usize..30,
        extra in 1usize..100,
    ) {
        let opposite = degree + extra;
        let truth: Vec<u32> = (0..degree as u32).collect();
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = rr.perturb_neighbor_list(&truth, opposite, &mut rng);
        prop_assert!(noisy.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(noisy.iter().all(|&v| (v as usize) < opposite));
    }

    /// Expected noisy-edge formula is bounded by the opposite-layer size and
    /// never smaller than both endpoints' contributions.
    #[test]
    fn expected_noisy_edges_bounds(eps in arb_epsilon(), d in 0usize..200, n in 200usize..2000) {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let e = rr.expected_noisy_edges(d, n);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= n as f64);
    }

    /// Laplace mechanism scale equals sensitivity / epsilon and variance 2b².
    #[test]
    fn laplace_scale_formula(eps in arb_epsilon(), sens in 0.1f64..10.0) {
        let m = LaplaceMechanism::new(
            PrivacyBudget::new(eps).unwrap(),
            Sensitivity::new(sens).unwrap(),
        );
        prop_assert!((m.scale() - sens / eps).abs() < 1e-12);
        prop_assert!((m.noise_variance() - 2.0 * (sens / eps).powi(2)).abs() < 1e-9);
    }

    /// Laplace samples are finite for any positive scale.
    #[test]
    fn laplace_samples_finite(scale in 0.01f64..100.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = sample_laplace(scale, &mut rng);
            prop_assert!(x.is_finite());
        }
    }

    /// Budget splits always sum back to the original budget.
    #[test]
    fn budget_splits_sum(eps in arb_epsilon(), k in 1usize..10, frac in 0.01f64..0.99) {
        let b = PrivacyBudget::new(eps).unwrap();
        let parts = b.split_even(k).unwrap();
        let sum: f64 = parts.iter().map(|p| p.value()).sum();
        prop_assert!((sum - eps).abs() < 1e-9);
        let (a, c) = b.split_fraction(frac).unwrap();
        prop_assert!((a.value() + c.value() - eps).abs() < 1e-9);
        prop_assert!(a.value() > 0.0 && c.value() > 0.0);
    }

    /// An accountant never reports consumption above its allowance, and
    /// rejects charges that would exceed it.
    #[test]
    fn accountant_never_exceeds(
        eps in 0.5f64..4.0,
        charges in prop::collection::vec((0.01f64..2.0, any::<bool>()), 1..12),
    ) {
        let total = PrivacyBudget::new(eps).unwrap();
        let mut acc = BudgetAccountant::new(total);
        for (i, (amount, parallel)) in charges.into_iter().enumerate() {
            let comp = if parallel { Composition::Parallel } else { Composition::Sequential };
            let _ = acc.charge(format!("c{i}"), PrivacyBudget::new(amount).unwrap(), comp);
            prop_assert!(acc.consumed() <= eps * (1.0 + 1e-9) + 1e-9);
        }
        prop_assert!(acc.remaining() >= 0.0);
    }

    /// Sequential-only consumption is exactly the sum of accepted charges.
    #[test]
    fn sequential_consumption_is_additive(
        eps in 2.0f64..10.0,
        amounts in prop::collection::vec(0.01f64..0.5, 1..8),
    ) {
        let total = PrivacyBudget::new(eps).unwrap();
        let mut acc = BudgetAccountant::new(total);
        let mut accepted = 0.0;
        for (i, a) in amounts.into_iter().enumerate() {
            if acc
                .charge(format!("c{i}"), PrivacyBudget::new(a).unwrap(), Composition::Sequential)
                .is_ok()
            {
                accepted += a;
            }
        }
        prop_assert!((acc.consumed() - accepted).abs() < 1e-9);
    }
}

/// Statistical test (not proptest): the empirical flip rate matches p within
/// a tolerance for a couple of representative budgets.
#[test]
fn empirical_flip_rates() {
    for eps in [0.5, 1.0, 2.0] {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let mut rng = StdRng::seed_from_u64(1234 + eps.to_bits() as u64 % 1000);
        let trials = 100_000;
        let flips = (0..trials).filter(|_| rr.perturb_bit(false, &mut rng)).count();
        let rate = flips as f64 / trials as f64;
        assert!(
            (rate - rr.flip_probability()).abs() < 0.01,
            "eps {eps}: rate {rate} vs p {}",
            rr.flip_probability()
        );
    }
}

//! Property-based tests for the LDP substrate.

use bigraph::bitset::PackedSet;
use ldp::budget::{BudgetAccountant, Composition, PrivacyBudget};
use ldp::laplace::{sample_laplace, LaplaceMechanism};
use ldp::mechanism::Sensitivity;
use ldp::randomized_response::{PerturbScratch, RandomizedResponse};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn arb_epsilon() -> impl Strategy<Value = f64> {
    0.1f64..8.0
}

proptest! {
    /// Flip probability is always in (0, 0.5) and decreasing in epsilon.
    #[test]
    fn flip_probability_in_range(eps in arb_epsilon()) {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let p = rr.flip_probability();
        prop_assert!(p > 0.0 && p < 0.5);
        let rr2 = RandomizedResponse::new(PrivacyBudget::new(eps + 0.5).unwrap());
        prop_assert!(rr2.flip_probability() < p);
        prop_assert!((rr.keep_probability() + p - 1.0).abs() < 1e-12);
    }

    /// The unbiased edge estimator has expectation equal to the true bit for
    /// any epsilon (checked symbolically through the two-outcome expectation).
    #[test]
    fn edge_estimator_unbiased(eps in arb_epsilon()) {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let p = rr.flip_probability();
        let phi1 = rr.unbiased_edge_estimate(true);
        let phi0 = rr.unbiased_edge_estimate(false);
        // true bit = 1
        prop_assert!(((1.0 - p) * phi1 + p * phi0 - 1.0).abs() < 1e-9);
        // true bit = 0
        prop_assert!((p * phi1 + (1.0 - p) * phi0).abs() < 1e-9);
        // variance formula is symmetric and positive
        prop_assert!(rr.edge_estimate_variance() > 0.0);
    }

    /// Perturbed neighbor lists are sorted, deduplicated, and within range.
    #[test]
    fn perturbed_lists_are_well_formed(
        eps in arb_epsilon(),
        seed in any::<u64>(),
        degree in 0usize..30,
        extra in 1usize..100,
    ) {
        let opposite = degree + extra;
        let truth: Vec<u32> = (0..degree as u32).collect();
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = rr.perturb_neighbor_list(&truth, opposite, &mut rng);
        prop_assert!(noisy.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(noisy.iter().all(|&v| (v as usize) < opposite));
    }

    /// Expected noisy-edge formula is bounded by the opposite-layer size and
    /// never smaller than both endpoints' contributions.
    #[test]
    fn expected_noisy_edges_bounds(eps in arb_epsilon(), d in 0usize..200, n in 200usize..2000) {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let e = rr.expected_noisy_edges(d, n);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= n as f64);
    }

    /// Laplace mechanism scale equals sensitivity / epsilon and variance 2b².
    #[test]
    fn laplace_scale_formula(eps in arb_epsilon(), sens in 0.1f64..10.0) {
        let m = LaplaceMechanism::new(
            PrivacyBudget::new(eps).unwrap(),
            Sensitivity::new(sens).unwrap(),
        );
        prop_assert!((m.scale() - sens / eps).abs() < 1e-12);
        prop_assert!((m.noise_variance() - 2.0 * (sens / eps).powi(2)).abs() < 1e-9);
    }

    /// Laplace samples are finite for any positive scale.
    #[test]
    fn laplace_samples_finite(scale in 0.01f64..100.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = sample_laplace(scale, &mut rng);
            prop_assert!(x.is_finite());
        }
    }

    /// Budget splits always sum back to the original budget.
    #[test]
    fn budget_splits_sum(eps in arb_epsilon(), k in 1usize..10, frac in 0.01f64..0.99) {
        let b = PrivacyBudget::new(eps).unwrap();
        let parts = b.split_even(k).unwrap();
        let sum: f64 = parts.iter().map(|p| p.value()).sum();
        prop_assert!((sum - eps).abs() < 1e-9);
        let (a, c) = b.split_fraction(frac).unwrap();
        prop_assert!((a.value() + c.value() - eps).abs() < 1e-9);
        prop_assert!(a.value() > 0.0 && c.value() > 0.0);
    }

    /// An accountant never reports consumption above its allowance, and
    /// rejects charges that would exceed it.
    #[test]
    fn accountant_never_exceeds(
        eps in 0.5f64..4.0,
        charges in prop::collection::vec((0.01f64..2.0, any::<bool>()), 1..12),
    ) {
        let total = PrivacyBudget::new(eps).unwrap();
        let mut acc = BudgetAccountant::new(total);
        for (i, (amount, parallel)) in charges.into_iter().enumerate() {
            let comp = if parallel { Composition::Parallel } else { Composition::Sequential };
            let label = ldp::Label::Indexed("c", i as u32, "");
            let _ = acc.charge(label, PrivacyBudget::new(amount).unwrap(), comp);
            prop_assert!(acc.consumed() <= eps * (1.0 + 1e-9) + 1e-9);
        }
        prop_assert!(acc.remaining() >= 0.0);
    }

    /// Sequential-only consumption is exactly the sum of accepted charges.
    #[test]
    fn sequential_consumption_is_additive(
        eps in 2.0f64..10.0,
        amounts in prop::collection::vec(0.01f64..0.5, 1..8),
    ) {
        let total = PrivacyBudget::new(eps).unwrap();
        let mut acc = BudgetAccountant::new(total);
        let mut accepted = 0.0;
        for (i, a) in amounts.into_iter().enumerate() {
            if acc
                .charge(
                    ldp::Label::Indexed("c", i as u32, ""),
                    PrivacyBudget::new(a).unwrap(),
                    Composition::Sequential,
                )
                .is_ok()
            {
                accepted += a;
            }
        }
        prop_assert!((acc.consumed() - accepted).abs() < 1e-9);
    }
}

/// Statistical test (not proptest): the empirical flip rate matches p within
/// a tolerance for a couple of representative budgets.
#[test]
fn empirical_flip_rates() {
    for eps in [0.5, 1.0, 2.0] {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let mut rng = StdRng::seed_from_u64(1234 + eps.to_bits() % 1000);
        let trials = 100_000;
        let flips = (0..trials)
            .filter(|_| rr.perturb_bit(false, &mut rng))
            .count();
        let rate = flips as f64 / trials as f64;
        assert!(
            (rate - rr.flip_probability()).abs() < 0.01,
            "eps {eps}: rate {rate} vs p {}",
            rr.flip_probability()
        );
    }
}

// ---------------------------------------------------------------------------
// Skip-sampled randomized response vs the dense per-bit reference sampler.
// ---------------------------------------------------------------------------

proptest! {
    /// The skip sampler always returns sorted, deduplicated, in-range lists,
    /// for arbitrary budgets, seeds, degrees, and layer sizes.
    #[test]
    fn skip_sampler_output_is_well_formed(
        eps in arb_epsilon(),
        seed in any::<u64>(),
        degree in 0usize..40,
        extra in 1usize..200,
    ) {
        let opposite = degree + extra;
        let truth: Vec<u32> = (0..degree as u32).map(|i| i * 2).collect();
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        // Spread the true neighbors out so flips can land between them.
        let opposite = opposite + degree;
        let noisy = rr.perturb_neighbor_list(&truth, opposite, &mut rng);
        prop_assert!(noisy.windows(2).all(|w| w[0] < w[1]), "sorted + deduplicated");
        prop_assert!(noisy.iter().all(|&v| (v as usize) < opposite), "in range");
    }

    /// With a huge budget the skip sampler reproduces the truth, like the
    /// dense sampler does. The ε values straddle the float-precision
    /// regimes: ε = 25 (p ≈ 1e-11, where `1.0 - p` is still < 1.0), ε = 50
    /// and 700 (p so small that `1.0 - p` rounds to exactly 1.0 — the
    /// `ln_1p` path; a naive `ln(1.0 - p)` collapses every gap to zero and
    /// returns the *complement* of the list here), and ε = 1000 (p
    /// underflows to exactly 0 — the early-return guard).
    #[test]
    fn skip_sampler_identity_at_high_budget(seed in any::<u64>(), degree in 0usize..30) {
        let truth: Vec<u32> = (0..degree as u32).map(|i| i * 3 + 1).collect();
        for eps in [25.0, 50.0, 700.0, 1000.0] {
            let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
            let mut rng = StdRng::seed_from_u64(seed);
            let noisy = rr.perturb_neighbor_list(&truth, 3 * degree + 10, &mut rng);
            prop_assert_eq!(noisy, truth.clone(), "eps {}", eps);
        }
    }
}

// ---------------------------------------------------------------------------
// Packed-native perturbation and the batched draw pipeline.
// ---------------------------------------------------------------------------

/// An arbitrary sorted true-neighbor list inside an arbitrary universe.
fn arb_row() -> impl Strategy<Value = (Vec<u32>, usize)> {
    (0usize..60, 1usize..6000).prop_map(|(degree, extra)| {
        let n = degree + extra;
        let stride = (n / degree.max(1)).max(1) as u32;
        let truth: Vec<u32> = (0..degree as u32)
            .map(|i| i * stride)
            .filter(|&v| (v as usize) < n)
            .collect();
        (truth, n)
    })
}

proptest! {
    /// (a) Packed-native output bits equal the packed legacy-list output for
    /// random lists and budgets — covering the skip (low-ε, table) and
    /// near-dense (high-ε, formula) regimes, with and without a pre-packed
    /// true bitmap — and (b) the batched pipeline consumes the RNG stream
    /// draw-for-draw identically to the retained scalar sampler.
    #[test]
    fn packed_native_equals_legacy_list_and_stream(
        (truth, n) in arb_row(),
        eps in 0.1f64..8.0,
        seed in any::<u64>(),
    ) {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let mut scratch = PerturbScratch::new();
        let true_packed = PackedSet::from_sorted(&truth, n);

        let mut rng_scalar = StdRng::seed_from_u64(seed);
        let mut rng_list = StdRng::seed_from_u64(seed);
        let mut rng_packed = StdRng::seed_from_u64(seed);
        let mut rng_cached = StdRng::seed_from_u64(seed);

        let scalar = rr.perturb_neighbor_list_scalar_reference(&truth, n, &mut rng_scalar);
        let list = rr.perturb_neighbor_list_with(&truth, n, &mut rng_list, &mut scratch);
        let packed = rr.perturb_neighbor_list_packed(&truth, None, n, &mut rng_packed, &mut scratch);
        let cached =
            rr.perturb_neighbor_list_packed(&truth, Some(&true_packed), n, &mut rng_cached, &mut scratch);

        // Identical bits across every representation.
        prop_assert_eq!(&list, &scalar);
        prop_assert_eq!(packed.to_sorted_ids(), scalar.clone());
        prop_assert_eq!(&cached, &packed);
        prop_assert_eq!(packed.len(), scalar.len());

        // Identical RNG stream consumption: the post-call stream positions
        // of all four samplers coincide.
        let next = rng_scalar.next_u64();
        prop_assert_eq!(rng_list.next_u64(), next);
        prop_assert_eq!(rng_packed.next_u64(), next);
        prop_assert_eq!(rng_cached.next_u64(), next);
    }
}

/// The batched pipeline at table-building scale (ε = 1 and 4 over a 100k
/// universe — the bench workload) stays draw-for-draw identical to the
/// scalar reference. Kept out of proptest so the big universes run once.
#[test]
fn batched_pipeline_stream_identity_at_bench_scale() {
    let n = 100_000usize;
    let truth: Vec<u32> = (0..10u32).map(|i| i * 9_999).collect();
    let mut scratch = PerturbScratch::new();
    for eps in [1.0f64, 4.0] {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        for seed in [5u64, 71, 901] {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut rng_c = StdRng::seed_from_u64(seed);
            let scalar = rr.perturb_neighbor_list_scalar_reference(&truth, n, &mut rng_a);
            let list = rr.perturb_neighbor_list_with(&truth, n, &mut rng_b, &mut scratch);
            let packed = rr.perturb_neighbor_list_packed(&truth, None, n, &mut rng_c, &mut scratch);
            assert_eq!(list, scalar, "eps {eps} seed {seed}");
            assert_eq!(packed.to_sorted_ids(), scalar, "eps {eps} seed {seed}");
            let next = rng_a.next_u64();
            assert_eq!(rng_b.next_u64(), next, "list stream eps {eps} seed {seed}");
            assert_eq!(
                rng_c.next_u64(),
                next,
                "packed stream eps {eps} seed {seed}"
            );
        }
    }
}

/// χ² goodness-of-fit at fixed seeds: for both the skip sampler and the dense
/// reference, the aggregate counts of the four bit transitions (1→1, 1→0,
/// 0→1, 0→0) must match the analytic randomized-response probabilities. Both
/// samplers passing the same test against the same analytic law is the
/// distribution-identity check the skip-sampling rewrite is gated on.
#[test]
fn skip_and_dense_samplers_match_rr_law_chi_squared() {
    let n = 400usize;
    let truth: Vec<u32> = (0..25u32).map(|i| i * 7).collect(); // d = 25
    let d = truth.len();
    let runs = 3_000usize;

    for (eps, seed) in [(1.0, 11u64), (4.0, 13u64)] {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
        let p = rr.flip_probability();

        // counts = (kept ones, dropped ones, flipped zeros, silent zeros)
        let tally = |use_skip: bool, seed: u64| -> [f64; 4] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts = [0f64; 4];
            for _ in 0..runs {
                let noisy = if use_skip {
                    rr.perturb_neighbor_list(&truth, n, &mut rng)
                } else {
                    rr.perturb_neighbor_list_dense(&truth, n, &mut rng)
                };
                let kept_ones = noisy
                    .iter()
                    .filter(|v| truth.binary_search(v).is_ok())
                    .count();
                let flipped_zeros = noisy.len() - kept_ones;
                counts[0] += kept_ones as f64;
                counts[1] += (d - kept_ones) as f64;
                counts[2] += flipped_zeros as f64;
                counts[3] += ((n - d) - flipped_zeros) as f64;
            }
            counts
        };

        let expected = [
            runs as f64 * d as f64 * (1.0 - p),
            runs as f64 * d as f64 * p,
            runs as f64 * (n - d) as f64 * p,
            runs as f64 * (n - d) as f64 * (1.0 - p),
        ];
        for (label, counts) in [("skip", tally(true, seed)), ("dense", tally(false, seed))] {
            let chi2: f64 = counts
                .iter()
                .zip(&expected)
                .map(|(obs, exp)| (obs - exp) * (obs - exp) / exp)
                .sum();
            // 2 effective degrees of freedom (ones and zeros each split in
            // two); the 99.9th percentile of χ²(2) is 13.8 — use a little
            // headroom so the fixed-seed test is robust yet still sharp
            // enough to catch a mis-specified sampler immediately.
            assert!(
                chi2 < 20.0,
                "{label} sampler failed chi^2 at eps {eps}: {chi2:.2} (counts {counts:?} expected {expected:?})"
            );
        }
    }
}

/// The skip sampler's mean noisy degree matches the analytic expectation for
/// a sparse-large configuration (the batch-engine workload shape).
#[test]
fn skip_sampler_density_sparse_large() {
    let n = 100_000usize;
    let truth: Vec<u32> = (0..10u32).map(|i| i * 9_999).collect(); // d = 10
    let rr = RandomizedResponse::new(PrivacyBudget::new(4.0).unwrap());
    let mut rng = StdRng::seed_from_u64(7);
    let runs = 200;
    let total: usize = (0..runs)
        .map(|_| rr.perturb_neighbor_list(&truth, n, &mut rng).len())
        .sum();
    let avg = total as f64 / runs as f64;
    let expected = rr.expected_noisy_edges(truth.len(), n);
    // Binomial sd per run is ~42; the mean of 200 runs has se ~3.
    assert!(
        (avg - expected).abs() < 15.0,
        "avg {avg} vs expected {expected}"
    );
}

// ---------------------------------------------------------------------------
// Block Laplace sampling and batched per-user stream setup.
// ---------------------------------------------------------------------------

proptest! {
    /// The bulk sampler is draw-for-draw identical to the scalar inverse-CDF
    /// loop for arbitrary scales, seeds, and block-straddling lengths — and
    /// leaves the generator at the identical stream position.
    #[test]
    fn laplace_block_stream_identity(
        scale in 0.01f64..100.0,
        seed in any::<u64>(),
        n in 0usize..200,
    ) {
        use ldp::laplace::sample_laplace_block;
        let mut scalar_rng = StdRng::seed_from_u64(seed);
        let scalar: Vec<u64> = (0..n)
            .map(|_| sample_laplace(scale, &mut scalar_rng).to_bits())
            .collect();
        let mut block_rng = StdRng::seed_from_u64(seed);
        let mut block = vec![0.0f64; n];
        sample_laplace_block(scale, &mut block_rng, &mut block);
        prop_assert_eq!(scalar, block.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        prop_assert_eq!(scalar_rng.next_u64(), block_rng.next_u64());
    }

    /// Batched per-user stream setup + one keyed draw per stream equals the
    /// per-user scalar path (`seed_from_u64` then `sample_laplace`) exactly.
    #[test]
    fn keyed_laplace_matches_scalar_per_user(
        scale in 0.01f64..100.0,
        base in any::<u64>(),
        n in 1usize..70,
    ) {
        use ldp::laplace::sample_laplace_each;
        let seeds: Vec<u64> = (0..n as u64)
            .map(|v| base ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut streams = Vec::new();
        StdRng::seed_batch_from_u64(&seeds, &mut streams);
        let mut out = vec![0.0f64; n];
        sample_laplace_each(scale, &mut streams, &mut out);
        for (i, &s) in seeds.iter().enumerate() {
            let mut reference = StdRng::seed_from_u64(s);
            prop_assert_eq!(out[i].to_bits(), sample_laplace(scale, &mut reference).to_bits());
            // Stream positions coincide afterwards too.
            prop_assert_eq!(streams[i].next_u64(), reference.next_u64());
        }
    }
}

//! Noisy neighbor sets produced by randomized response.
//!
//! The paper's algorithms never need the full noisy graph — only the noisy
//! neighbor lists of the one or two query vertices. Two representations
//! exist:
//!
//! * [`NoisyNeighborsPacked`] — the **packed-native** form the hot paths
//!   use: the perturbed row lives directly in `u64` words
//!   ([`bigraph::bitset::PackedSet`]), produced by
//!   [`RandomizedResponse::perturb_neighbor_list_packed`] without ever
//!   materializing an id list. Curator-side intersections go straight to
//!   word-parallel popcounts or per-id bit probes.
//! * [`NoisyNeighbors`] — the sorted-id-list form, kept for callers that
//!   genuinely need ids (serialization, transcript-faithful client
//!   simulations, ranking examples). [`NoisyNeighborsPacked::materialize`]
//!   converts the packed form into it.
//!
//! Both forms are generated from the same draw pipeline, consume the RNG
//! identically, and contain exactly the same bit set.
//! [`NoisyGraphView`] ([`NoisyGraphViewPacked`]) bundles the lists of both
//! query vertices so curator-side code can intersect them.

use crate::budget::PrivacyBudget;
use crate::randomized_response::{PerturbScratch, RandomizedResponse};
use bigraph::bitset::{popcount_and, PackedSet};
use bigraph::{BipartiteGraph, Layer, VertexId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The noisy (randomized-response-perturbed) neighbor list of one vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoisyNeighbors {
    /// The vertex whose list was perturbed.
    pub owner: VertexId,
    /// The layer the owner lives on.
    pub owner_layer: Layer,
    /// Number of vertices on the opposite layer (the length of the perturbed row).
    pub opposite_size: usize,
    /// The privacy budget used for the perturbation.
    pub epsilon: f64,
    /// Sorted ids of the noisy neighbors (the "1" entries after perturbation).
    neighbors: Vec<VertexId>,
}

impl NoisyNeighbors {
    /// Applies randomized response to `owner`'s neighbor list in `g`.
    pub fn generate<R: Rng + ?Sized>(
        g: &BipartiteGraph,
        layer: Layer,
        owner: VertexId,
        epsilon: PrivacyBudget,
        rng: &mut R,
    ) -> Self {
        let mut scratch = PerturbScratch::new();
        Self::generate_with(g, layer, owner, epsilon, rng, &mut scratch)
    }

    /// [`NoisyNeighbors::generate`] with a caller-provided perturbation
    /// scratch (see [`RandomizedResponse::perturb_neighbor_list_with`]).
    /// Identical output and RNG consumption; only the intermediate
    /// allocations are reused.
    pub fn generate_with<R: Rng + ?Sized>(
        g: &BipartiteGraph,
        layer: Layer,
        owner: VertexId,
        epsilon: PrivacyBudget,
        rng: &mut R,
        scratch: &mut PerturbScratch,
    ) -> Self {
        let rr = RandomizedResponse::new(epsilon);
        let opposite_size = g.layer_size(layer.opposite());
        let neighbors =
            rr.perturb_neighbor_list_with(g.neighbors(layer, owner), opposite_size, rng, scratch);
        Self {
            owner,
            owner_layer: layer,
            opposite_size,
            epsilon: epsilon.value(),
            neighbors,
        }
    }

    /// Builds a noisy list directly from pre-perturbed data (used by tests and
    /// by protocol code that perturbs in a custom way).
    #[must_use]
    pub fn from_parts(
        owner: VertexId,
        owner_layer: Layer,
        opposite_size: usize,
        epsilon: f64,
        mut neighbors: Vec<VertexId>,
    ) -> Self {
        neighbors.sort_unstable();
        neighbors.dedup();
        Self {
            owner,
            owner_layer,
            opposite_size,
            epsilon,
            neighbors,
        }
    }

    /// The sorted noisy neighbor ids.
    #[must_use]
    pub fn neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// The noisy degree (number of noisy neighbors).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether `v` is a noisy neighbor of the owner. `O(log deg)`.
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        self.neighbors.binary_search(&v).is_ok()
    }

    /// The number of bytes needed to transmit this list to the curator,
    /// counting 4 bytes per reported edge endpoint (the convention used for
    /// the paper's communication-cost experiments).
    #[must_use]
    pub fn message_bytes(&self) -> usize {
        self.neighbors.len() * std::mem::size_of::<VertexId>()
    }

    /// The flip probability the list was generated with.
    #[must_use]
    pub fn flip_probability(&self) -> f64 {
        1.0 / (1.0 + self.epsilon.exp())
    }

    /// Packs the noisy list into a [`PackedSet`] over the opposite layer.
    ///
    /// Noisy lists are dense (expected degree `d + p·n`), so curator-side
    /// code that intersects one list against many others — the batch engine,
    /// the estimator hot loops — packs it once and reuses the bitmap for
    /// `O(1)` membership probes or word-parallel popcount intersections.
    /// Hot paths should generate [`NoisyNeighborsPacked`] directly instead,
    /// which never builds the id list at all.
    #[must_use]
    pub fn packed(&self) -> PackedSet {
        PackedSet::from_sorted(&self.neighbors, self.opposite_size)
    }
}

/// The noisy neighbor row of one vertex in **packed-native** form: the
/// perturbed bits live directly in `u64` words, produced without an id
/// list. The hot-path counterpart of [`NoisyNeighbors`].
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyNeighborsPacked {
    /// The vertex whose list was perturbed.
    pub owner: VertexId,
    /// The layer the owner lives on.
    pub owner_layer: Layer,
    /// The privacy budget used for the perturbation.
    pub epsilon: f64,
    /// The perturbed row over the opposite layer.
    set: PackedSet,
}

impl NoisyNeighborsPacked {
    /// Applies randomized response to `owner`'s neighbor list in `g`,
    /// producing the noisy row directly in packed form.
    ///
    /// `true_packed`, when provided, must be the packed true adjacency of
    /// `owner` (e.g. from the estimation engine's cache): kept true bits
    /// are then OR-ed in word-wise. The output — and the RNG stream
    /// consumed — is identical either way, and identical to generating a
    /// [`NoisyNeighbors`] and packing it.
    pub fn generate_with<R: Rng + ?Sized>(
        g: &BipartiteGraph,
        layer: Layer,
        owner: VertexId,
        epsilon: PrivacyBudget,
        rng: &mut R,
        scratch: &mut PerturbScratch,
        true_packed: Option<&PackedSet>,
    ) -> Self {
        let rr = RandomizedResponse::new(epsilon);
        let opposite_size = g.layer_size(layer.opposite());
        let set = rr.perturb_neighbor_list_packed(
            g.neighbors(layer, owner),
            true_packed,
            opposite_size,
            rng,
            scratch,
        );
        Self {
            owner,
            owner_layer: layer,
            epsilon: epsilon.value(),
            set,
        }
    }

    /// Reassembles a packed noisy row from its transported parts — the
    /// inverse of reading [`NoisyNeighborsPacked::set`],
    /// [`owner`](NoisyNeighborsPacked::owner) and
    /// [`epsilon`](NoisyNeighborsPacked::epsilon) off a row that crossed a
    /// process boundary (the cluster wire protocol ships the raw words).
    /// The caller asserts that `set` really is the output of a
    /// randomized-response round run with budget `epsilon`; accounting
    /// helpers ([`NoisyNeighborsPacked::message_bytes`],
    /// [`flip_probability`](NoisyNeighborsPacked::flip_probability)) then
    /// report exactly what they would have on the originating side.
    #[must_use]
    pub fn from_parts(owner: VertexId, owner_layer: Layer, epsilon: f64, set: PackedSet) -> Self {
        Self {
            owner,
            owner_layer,
            epsilon,
            set,
        }
    }

    /// The packed noisy row.
    #[must_use]
    pub fn set(&self) -> &PackedSet {
        &self.set
    }

    /// Number of vertices on the opposite layer.
    #[must_use]
    pub fn opposite_size(&self) -> usize {
        self.set.universe()
    }

    /// The noisy degree (number of set bits).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.set.len()
    }

    /// Whether `v` is a noisy neighbor of the owner. `O(1)` bit probe.
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        self.set.contains(v)
    }

    /// Bytes to transmit this row as an edge list (same convention as
    /// [`NoisyNeighbors::message_bytes`] — the wire format is the id list
    /// either way; packing is a curator-side representation).
    #[must_use]
    pub fn message_bytes(&self) -> usize {
        self.degree() * std::mem::size_of::<VertexId>()
    }

    /// The flip probability the row was generated with.
    #[must_use]
    pub fn flip_probability(&self) -> f64 {
        1.0 / (1.0 + self.epsilon.exp())
    }

    /// Materializes the sorted-id-list form — the thin wrapper for callers
    /// that genuinely need ids. `O(universe/64 + degree)`.
    #[must_use]
    pub fn materialize(&self) -> NoisyNeighbors {
        NoisyNeighbors {
            owner: self.owner,
            owner_layer: self.owner_layer,
            opposite_size: self.set.universe(),
            epsilon: self.epsilon,
            neighbors: self.set.to_sorted_ids(),
        }
    }
}

/// The curator's view after collecting noisy lists from both query vertices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoisyGraphView {
    /// Noisy neighbor list of the first query vertex `u`.
    pub u: NoisyNeighbors,
    /// Noisy neighbor list of the second query vertex `w`.
    pub w: NoisyNeighbors,
}

impl NoisyGraphView {
    /// Bundles the two noisy lists, checking basic consistency.
    ///
    /// # Panics
    ///
    /// Panics if the two lists disagree on layer or opposite-layer size —
    /// that would indicate a protocol implementation bug, not bad user input.
    #[must_use]
    pub fn new(u: NoisyNeighbors, w: NoisyNeighbors) -> Self {
        assert_eq!(
            u.owner_layer, w.owner_layer,
            "query vertices must share a layer"
        );
        assert_eq!(
            u.opposite_size, w.opposite_size,
            "noisy lists must cover the same opposite layer"
        );
        Self { u, w }
    }

    /// `N1`: the number of common neighbors of `u` and `w` in the noisy graph.
    ///
    /// Adaptive: dense noisy lists (the common case at small ε, where the
    /// expected degree is `≈ p·n`) are packed into bitmaps and intersected
    /// word-parallel with popcount; sparse lists fall back to the sorted
    /// merge. Both strategies count the same set, so the result is identical
    /// either way.
    #[must_use]
    pub fn noisy_intersection_size(&self) -> u64 {
        let n = self.opposite_size();
        let words = n.div_ceil(64);
        // Packing costs two O(degree) passes plus an O(words) popcount loop;
        // it beats the branchy merge once the lists hold a few ids per word.
        if self.u.degree().min(self.w.degree()) >= 4 * words {
            self.u.packed().intersection_size(&self.w.packed())
        } else {
            bigraph::common_neighbors::intersection_size(self.u.neighbors(), self.w.neighbors())
        }
    }

    /// `N2`: the size of the union of the noisy neighbor sets.
    #[must_use]
    pub fn noisy_union_size(&self) -> u64 {
        self.u.degree() as u64 + self.w.degree() as u64 - self.noisy_intersection_size()
    }

    /// `(N1, N2)` in one pass: the intersection is computed once and the
    /// union derived from the degrees. Callers needing both (e.g. the
    /// one-round estimator's closed form) should use this instead of two
    /// separate calls, which would redo the intersection — and, on the dense
    /// packed path, rebuild both bitmaps.
    #[must_use]
    pub fn noisy_counts(&self) -> (u64, u64) {
        let intersection = self.noisy_intersection_size();
        let union = self.u.degree() as u64 + self.w.degree() as u64 - intersection;
        (intersection, union)
    }

    /// Number of vertices on the opposite layer (`n₁` when querying lower
    /// vertices, `n₂` when querying upper vertices).
    #[must_use]
    pub fn opposite_size(&self) -> usize {
        self.u.opposite_size
    }

    /// Total bytes both clients sent to the curator for this view.
    #[must_use]
    pub fn message_bytes(&self) -> usize {
        self.u.message_bytes() + self.w.message_bytes()
    }
}

/// The packed-native curator view: both query vertices' noisy rows as
/// bitmaps, intersected word-parallel — no adaptive dispatch needed, the
/// rows are already packed.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyGraphViewPacked {
    /// Packed noisy row of the first query vertex `u`.
    pub u: NoisyNeighborsPacked,
    /// Packed noisy row of the second query vertex `w`.
    pub w: NoisyNeighborsPacked,
}

impl NoisyGraphViewPacked {
    /// Bundles the two packed rows, checking basic consistency.
    ///
    /// # Panics
    ///
    /// Panics if the rows disagree on layer or opposite-layer size.
    #[must_use]
    pub fn new(u: NoisyNeighborsPacked, w: NoisyNeighborsPacked) -> Self {
        assert_eq!(
            u.owner_layer, w.owner_layer,
            "query vertices must share a layer"
        );
        assert_eq!(
            u.opposite_size(),
            w.opposite_size(),
            "noisy lists must cover the same opposite layer"
        );
        Self { u, w }
    }

    /// `N1`: the noisy common-neighbor count — one `AND` + popcount pass
    /// over the packed words. Identical to
    /// [`NoisyGraphView::noisy_intersection_size`] on the same rows.
    #[must_use]
    pub fn noisy_intersection_size(&self) -> u64 {
        popcount_and(self.u.set().as_words(), self.w.set().as_words())
    }

    /// `(N1, N2)`: intersection and union sizes in one popcount pass.
    #[must_use]
    pub fn noisy_counts(&self) -> (u64, u64) {
        let intersection = self.noisy_intersection_size();
        let union = self.u.degree() as u64 + self.w.degree() as u64 - intersection;
        (intersection, union)
    }

    /// Number of vertices on the opposite layer.
    #[must_use]
    pub fn opposite_size(&self) -> usize {
        self.u.opposite_size()
    }

    /// Total bytes both clients sent to the curator for this view.
    #[must_use]
    pub fn message_bytes(&self) -> usize {
        self.u.message_bytes() + self.w.message_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            3,
            50,
            (0..20u32)
                .map(|v| (0, v))
                .chain((10..30u32).map(|v| (1, v))),
        )
        .unwrap()
    }

    #[test]
    fn generate_produces_sorted_in_range_list() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let eps = PrivacyBudget::new(1.0).unwrap();
        let noisy = NoisyNeighbors::generate(&g, Layer::Upper, 0, eps, &mut rng);
        assert_eq!(noisy.owner, 0);
        assert_eq!(noisy.owner_layer, Layer::Upper);
        assert_eq!(noisy.opposite_size, 50);
        assert!(noisy.neighbors().windows(2).all(|w| w[0] < w[1]));
        assert!(noisy.neighbors().iter().all(|&v| (v as usize) < 50));
        assert_eq!(noisy.message_bytes(), noisy.degree() * 4);
        assert!((noisy.flip_probability() - 1.0 / (1.0 + 1.0f64.exp())).abs() < 1e-12);
    }

    #[test]
    fn packed_generation_matches_list_generation() {
        let g = toy();
        let eps = PrivacyBudget::new(1.0).unwrap();
        let mut scratch = PerturbScratch::new();
        for seed in [1u64, 9, 55] {
            let mut rng_list = StdRng::seed_from_u64(seed);
            let mut rng_packed = StdRng::seed_from_u64(seed);
            let list = NoisyNeighbors::generate(&g, Layer::Upper, 0, eps, &mut rng_list);
            let packed = NoisyNeighborsPacked::generate_with(
                &g,
                Layer::Upper,
                0,
                eps,
                &mut rng_packed,
                &mut scratch,
                None,
            );
            assert_eq!(packed.owner, 0);
            assert_eq!(packed.opposite_size(), 50);
            assert_eq!(packed.degree(), list.degree());
            assert_eq!(packed.message_bytes(), list.message_bytes());
            assert_eq!(packed.set().to_sorted_ids(), list.neighbors());
            // The materialization wrapper reproduces the full list form.
            let materialized = packed.materialize();
            assert_eq!(materialized, list);
            for v in 0..50u32 {
                assert_eq!(packed.contains(v), list.contains(v));
            }
        }
    }

    #[test]
    fn packed_view_counts_match_list_view() {
        let g = toy();
        let eps = PrivacyBudget::new(0.8).unwrap();
        let mut scratch = PerturbScratch::new();
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        let view = NoisyGraphView::new(
            NoisyNeighbors::generate(&g, Layer::Upper, 0, eps, &mut rng_a),
            NoisyNeighbors::generate(&g, Layer::Upper, 1, eps, &mut rng_a),
        );
        let packed = NoisyGraphViewPacked::new(
            NoisyNeighborsPacked::generate_with(
                &g,
                Layer::Upper,
                0,
                eps,
                &mut rng_b,
                &mut scratch,
                None,
            ),
            NoisyNeighborsPacked::generate_with(
                &g,
                Layer::Upper,
                1,
                eps,
                &mut rng_b,
                &mut scratch,
                None,
            ),
        );
        assert_eq!(
            packed.noisy_intersection_size(),
            view.noisy_intersection_size()
        );
        assert_eq!(packed.noisy_counts(), view.noisy_counts());
        assert_eq!(packed.opposite_size(), view.opposite_size());
        assert_eq!(packed.message_bytes(), view.message_bytes());
    }

    #[test]
    fn contains_agrees_with_list() {
        let noisy = NoisyNeighbors::from_parts(0, Layer::Upper, 10, 1.0, vec![3, 1, 7, 3]);
        assert_eq!(noisy.neighbors(), &[1, 3, 7]);
        assert!(noisy.contains(3));
        assert!(!noisy.contains(2));
        assert_eq!(noisy.degree(), 3);
    }

    #[test]
    fn high_epsilon_reproduces_truth() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(5);
        let eps = PrivacyBudget::new(30.0).unwrap();
        let noisy = NoisyNeighbors::generate(&g, Layer::Upper, 1, eps, &mut rng);
        assert_eq!(noisy.neighbors(), g.neighbors(Layer::Upper, 1));
    }

    #[test]
    fn view_intersection_and_union() {
        let u = NoisyNeighbors::from_parts(0, Layer::Upper, 10, 1.0, vec![1, 2, 3, 4]);
        let w = NoisyNeighbors::from_parts(1, Layer::Upper, 10, 1.0, vec![3, 4, 5]);
        let view = NoisyGraphView::new(u, w);
        assert_eq!(view.noisy_intersection_size(), 2);
        assert_eq!(view.noisy_union_size(), 5);
        assert_eq!(view.noisy_counts(), (2, 5));
        assert_eq!(view.opposite_size(), 10);
        assert_eq!(view.message_bytes(), (4 + 3) * 4);
    }

    #[test]
    #[should_panic(expected = "same opposite layer")]
    fn view_rejects_mismatched_sizes() {
        let u = NoisyNeighbors::from_parts(0, Layer::Upper, 10, 1.0, vec![]);
        let w = NoisyNeighbors::from_parts(1, Layer::Upper, 20, 1.0, vec![]);
        let _ = NoisyGraphView::new(u, w);
    }

    #[test]
    #[should_panic(expected = "share a layer")]
    fn view_rejects_mismatched_layers() {
        let u = NoisyNeighbors::from_parts(0, Layer::Upper, 10, 1.0, vec![]);
        let w = NoisyNeighbors::from_parts(1, Layer::Lower, 10, 1.0, vec![]);
        let _ = NoisyGraphView::new(u, w);
    }

    #[test]
    fn dense_lists_take_packed_path_with_identical_result() {
        // Dense enough that degree >= 4 * ceil(n/64): packed branch taken.
        let n = 256usize;
        let a: Vec<u32> = (0..256).filter(|v| v % 3 != 0).collect();
        let b: Vec<u32> = (0..256).filter(|v| v % 2 == 0).collect();
        let merge = bigraph::common_neighbors::intersection_size(&a, &b);
        let u = NoisyNeighbors::from_parts(0, Layer::Upper, n, 1.0, a);
        let w = NoisyNeighbors::from_parts(1, Layer::Upper, n, 1.0, b);
        let view = NoisyGraphView::new(u, w);
        assert!(view.u.degree().min(view.w.degree()) >= 4 * n.div_ceil(64));
        assert_eq!(view.noisy_intersection_size(), merge);
        let (n1, n2) = view.noisy_counts();
        assert_eq!(n1, merge);
        assert_eq!(n2, view.u.degree() as u64 + view.w.degree() as u64 - merge);
    }

    #[test]
    fn serde_round_trip() {
        let u = NoisyNeighbors::from_parts(0, Layer::Upper, 10, 1.0, vec![1, 2]);
        let json = serde_json::to_string(&u).unwrap();
        let back: NoisyNeighbors = serde_json::from_str(&json).unwrap();
        assert_eq!(u, back);
    }
}

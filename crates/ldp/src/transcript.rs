//! Client ↔ curator message transcripts.
//!
//! Every message a protocol exchanges is recorded here with its direction,
//! round number, byte size, and a label. The paper's Fig. 10 reports the
//! communication cost of each algorithm; recording actual message sizes (as
//! opposed to plugging degrees into formulas) lets the experiment harness
//! measure it, and lets tests check the analytic expectations.

use serde::{Deserialize, Serialize};

/// Direction of a message relative to the curator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// From a client (vertex) up to the data curator.
    Upload,
    /// From the data curator down to a client (vertex).
    Download,
}

/// A single recorded message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Protocol round the message belongs to (1-based).
    pub round: u32,
    /// Direction relative to the curator.
    pub direction: Direction,
    /// Short description, e.g. `"noisy-edges(u)"` or `"estimator(f_u)"`.
    pub label: String,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// An append-only log of protocol messages with aggregate accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Transcript {
    messages: Vec<Message>,
}

impl Transcript {
    /// Creates an empty transcript.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message.
    pub fn record(
        &mut self,
        round: u32,
        direction: Direction,
        label: impl Into<String>,
        bytes: usize,
    ) {
        self.messages.push(Message {
            round,
            direction,
            label: label.into(),
            bytes,
        });
    }

    /// All recorded messages in order.
    #[must_use]
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Total bytes across all messages (upload + download).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Total bytes in one direction.
    #[must_use]
    pub fn bytes_in_direction(&self, direction: Direction) -> usize {
        self.messages
            .iter()
            .filter(|m| m.direction == direction)
            .map(|m| m.bytes)
            .sum()
    }

    /// Total bytes exchanged in a given round.
    #[must_use]
    pub fn bytes_in_round(&self, round: u32) -> usize {
        self.messages
            .iter()
            .filter(|m| m.round == round)
            .map(|m| m.bytes)
            .sum()
    }

    /// Number of protocol rounds that exchanged at least one message.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.messages.iter().map(|m| m.round).max().unwrap_or(0)
    }

    /// Total bytes expressed in megabytes (the unit of the paper's Fig. 10).
    #[must_use]
    pub fn total_megabytes(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Merges another transcript into this one (used when a protocol runs
    /// sub-protocols, e.g. MultiR-DS running two single-source estimators).
    pub fn absorb(&mut self, other: Transcript) {
        self.messages.extend(other.messages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_transcript() {
        let t = Transcript::new();
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.messages().len(), 0);
        assert_eq!(t.total_megabytes(), 0.0);
    }

    #[test]
    fn record_and_aggregate() {
        let mut t = Transcript::new();
        t.record(1, Direction::Upload, "noisy-edges(u)", 400);
        t.record(1, Direction::Upload, "noisy-edges(w)", 600);
        t.record(2, Direction::Download, "noisy-edges(w) -> u", 600);
        t.record(2, Direction::Upload, "estimator(f_u)", 8);

        assert_eq!(t.total_bytes(), 1608);
        assert_eq!(t.bytes_in_direction(Direction::Upload), 1008);
        assert_eq!(t.bytes_in_direction(Direction::Download), 600);
        assert_eq!(t.bytes_in_round(1), 1000);
        assert_eq!(t.bytes_in_round(2), 608);
        assert_eq!(t.rounds(), 2);
        assert!((t.total_megabytes() - 1608.0 / (1024.0 * 1024.0)).abs() < 1e-15);
    }

    #[test]
    fn absorb_merges_messages() {
        let mut a = Transcript::new();
        a.record(1, Direction::Upload, "x", 10);
        let mut b = Transcript::new();
        b.record(2, Direction::Download, "y", 20);
        a.absorb(b);
        assert_eq!(a.messages().len(), 2);
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.rounds(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Transcript::new();
        t.record(1, Direction::Upload, "m", 3);
        let json = serde_json::to_string(&t).unwrap();
        let back: Transcript = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}

//! Client ↔ curator message transcripts.
//!
//! Every message a protocol exchanges is recorded here with its direction,
//! round number, byte size, and a label. The paper's Fig. 10 reports the
//! communication cost of each algorithm; recording actual message sizes (as
//! opposed to plugging degrees into formulas) lets the experiment harness
//! measure it, and lets tests check the analytic expectations.
//!
//! # Lean vs detailed recording
//!
//! Everything Fig. 10 (and every aggregate accessor on [`Transcript`]) needs
//! is a handful of counters: bytes and message counts per round and
//! direction. [`TranscriptStats`] keeps exactly those in fixed-size arrays,
//! so recording a message is a few integer adds — no allocation, no growing
//! message log. That is the **lean** mode every hot path
//! ([`Transcript::new`]) runs in.
//!
//! The full per-message log ([`Transcript::messages`]) still exists for
//! tests and debugging, but it is **opt-in**: construct the transcript with
//! [`Transcript::detailed`] and each recorded message is additionally
//! retained as a [`Message`] with its label rendered to a string. Both modes
//! update the same [`TranscriptStats`], so every aggregate accessor returns
//! identical values either way (property-tested in the `cne` crate).
//!
//! Labels are interned as [`Label`] — a static string plus at most one small
//! numeric parameter — so describing a message costs nothing unless a
//! detailed log actually retains it.

use serde::{Deserialize, Serialize};

/// Direction of a message relative to the curator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// From a client (vertex) up to the data curator.
    Upload,
    /// From the data curator down to a client (vertex).
    Download,
}

impl Direction {
    fn index(self) -> usize {
        match self {
            Direction::Upload => 0,
            Direction::Download => 1,
        }
    }
}

/// An interned message or budget-charge label: static text plus at most one
/// small numeric parameter.
///
/// Protocols describe every message they record; with string labels that
/// description allocated on every call, which dominated the warm batch
/// profile once adjacency packing was cached. A `Label` is `Copy` and is
/// only rendered to a string when a detailed log ([`Transcript::detailed`])
/// or ledger actually retains the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// A fixed label, e.g. `"estimator(f_u)"`.
    Static(&'static str),
    /// A parameterized label rendered as `{prefix}{index}{suffix}`, e.g.
    /// `Label::Indexed("noisy-edges(v", 3, ")")` → `"noisy-edges(v3)"`.
    Indexed(&'static str, u32, &'static str),
}

impl Label {
    /// Renders the label to its string form (allocates — detailed mode only).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Label::Static(s) => (*s).to_string(),
            Label::Indexed(prefix, index, suffix) => format!("{prefix}{index}{suffix}"),
        }
    }
}

impl From<&'static str> for Label {
    fn from(s: &'static str) -> Self {
        Label::Static(s)
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Label::Static(s) => f.write_str(s),
            Label::Indexed(prefix, index, suffix) => write!(f, "{prefix}{index}{suffix}"),
        }
    }
}

/// A single recorded message (retained only by detailed transcripts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Protocol round the message belongs to (1-based).
    pub round: u32,
    /// Direction relative to the curator.
    pub direction: Direction,
    /// Short description, e.g. `"noisy-edges(u)"` or `"estimator(f_u)"`.
    pub label: String,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// The highest protocol round [`TranscriptStats`] tracks individually.
///
/// Every protocol in this workspace uses at most 3 rounds; 16 leaves ample
/// headroom while keeping the counters in two fixed 256-byte arrays.
pub const MAX_TRACKED_ROUNDS: usize = 16;

/// Byte and message counters for one (round, direction) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelCounters {
    /// Total payload bytes recorded in the cell.
    pub bytes: u64,
    /// Number of messages recorded in the cell.
    pub messages: u64,
}

const ZERO_CELL: ChannelCounters = ChannelCounters {
    bytes: 0,
    messages: 0,
};

/// Always-on aggregate accounting of a protocol transcript.
///
/// Fixed-size per-round × per-direction counters covering everything the
/// aggregate [`Transcript`] accessors (and the paper's Fig. 10 reporting)
/// need: total/per-round/per-direction bytes, message counts, and the
/// number of rounds. Recording is a few integer adds — no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranscriptStats {
    /// `cells[round - 1][direction]` for rounds `1..=MAX_TRACKED_ROUNDS`.
    cells: [[ChannelCounters; 2]; MAX_TRACKED_ROUNDS],
    /// Highest round recorded so far (0 while empty), tracked incrementally
    /// so [`TranscriptStats::rounds`] is `O(1)` instead of a log scan.
    max_round: u32,
}

impl Default for TranscriptStats {
    fn default() -> Self {
        Self {
            cells: [[ZERO_CELL; 2]; MAX_TRACKED_ROUNDS],
            max_round: 0,
        }
    }
}

impl TranscriptStats {
    /// Creates empty counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `bytes` bytes in `round` going `direction`.
    ///
    /// # Panics
    ///
    /// Panics if `round` is 0 or exceeds [`MAX_TRACKED_ROUNDS`] — rounds are
    /// 1-based, and a round that high indicates a protocol implementation
    /// bug, not bad user input.
    pub fn record(&mut self, round: u32, direction: Direction, bytes: usize) {
        assert!(
            round >= 1 && round as usize <= MAX_TRACKED_ROUNDS,
            "round {round} outside the tracked range 1..={MAX_TRACKED_ROUNDS}"
        );
        let cell = &mut self.cells[round as usize - 1][direction.index()];
        cell.bytes += bytes as u64;
        cell.messages += 1;
        self.max_round = self.max_round.max(round);
    }

    /// Total bytes across all rounds and directions.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.fold(|c| c.bytes) as usize
    }

    /// Total number of recorded messages.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.fold(|c| c.messages) as usize
    }

    /// Total bytes in one direction.
    #[must_use]
    pub fn bytes_in_direction(&self, direction: Direction) -> usize {
        self.tracked_rows()
            .iter()
            .map(|row| row[direction.index()].bytes)
            .sum::<u64>() as usize
    }

    /// The row for `round`, if it is a tracked 1-based round number.
    fn row(&self, round: u32) -> Option<&[ChannelCounters; 2]> {
        if round >= 1 && round as usize <= MAX_TRACKED_ROUNDS {
            Some(&self.cells[round as usize - 1])
        } else {
            None
        }
    }

    /// The rows of every round recorded so far. Clamped, so a
    /// `TranscriptStats` deserialized from corrupted data (an out-of-range
    /// `max_round`) degrades to reading every tracked row instead of
    /// panicking on a slice bound.
    fn tracked_rows(&self) -> &[[ChannelCounters; 2]] {
        &self.cells[..(self.max_round as usize).min(MAX_TRACKED_ROUNDS)]
    }

    /// Total bytes exchanged in a given round (0 for rounds never recorded).
    #[must_use]
    pub fn bytes_in_round(&self, round: u32) -> usize {
        self.row(round)
            .map_or(0, |row| (row[0].bytes + row[1].bytes) as usize)
    }

    /// Number of messages exchanged in a given round.
    #[must_use]
    pub fn messages_in_round(&self, round: u32) -> usize {
        self.row(round)
            .map_or(0, |row| (row[0].messages + row[1].messages) as usize)
    }

    /// Highest round that exchanged at least one message (0 while empty).
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.max_round
    }

    /// The counters of one (round, direction) cell.
    #[must_use]
    pub fn cell(&self, round: u32, direction: Direction) -> ChannelCounters {
        self.row(round)
            .map_or(ZERO_CELL, |row| row[direction.index()])
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &TranscriptStats) {
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            for d in 0..2 {
                mine[d].bytes += theirs[d].bytes;
                mine[d].messages += theirs[d].messages;
            }
        }
        self.max_round = self.max_round.max(other.max_round);
    }

    fn fold(&self, f: impl Fn(&ChannelCounters) -> u64) -> u64 {
        self.tracked_rows()
            .iter()
            .flat_map(|row| row.iter())
            .map(f)
            .sum()
    }
}

/// A protocol message record with aggregate accounting.
///
/// Always maintains [`TranscriptStats`]; retains the per-message log only in
/// detailed mode (see the [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Transcript {
    stats: TranscriptStats,
    detail: Option<Vec<Message>>,
}

impl Transcript {
    /// Creates an empty **lean** transcript: aggregate counters only, no
    /// per-message log, no allocation per recorded message.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty **detailed** transcript that additionally retains
    /// every message (with its label rendered) for inspection.
    #[must_use]
    pub fn detailed() -> Self {
        Self {
            stats: TranscriptStats::default(),
            detail: Some(Vec::new()),
        }
    }

    /// Whether this transcript retains a per-message log.
    #[must_use]
    pub fn is_detailed(&self) -> bool {
        self.detail.is_some()
    }

    /// Records a message.
    ///
    /// # Panics
    ///
    /// Panics for rounds outside `1..=`[`MAX_TRACKED_ROUNDS`] (see
    /// [`TranscriptStats::record`]).
    pub fn record(
        &mut self,
        round: u32,
        direction: Direction,
        label: impl Into<Label>,
        bytes: usize,
    ) {
        self.stats.record(round, direction, bytes);
        if let Some(log) = &mut self.detail {
            log.push(Message {
                round,
                direction,
                label: label.into().render(),
                bytes,
            });
        }
    }

    /// The always-on aggregate counters.
    #[must_use]
    pub fn stats(&self) -> &TranscriptStats {
        &self.stats
    }

    /// The retained messages, in order. Empty for lean transcripts — use
    /// [`Transcript::message_count`] for the (always correct) count.
    #[must_use]
    pub fn messages(&self) -> &[Message] {
        self.detail.as_deref().unwrap_or(&[])
    }

    /// Number of recorded messages (maintained in both modes).
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.stats.message_count()
    }

    /// Total bytes across all messages (upload + download).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.stats.total_bytes()
    }

    /// Total bytes in one direction.
    #[must_use]
    pub fn bytes_in_direction(&self, direction: Direction) -> usize {
        self.stats.bytes_in_direction(direction)
    }

    /// Total bytes exchanged in a given round.
    #[must_use]
    pub fn bytes_in_round(&self, round: u32) -> usize {
        self.stats.bytes_in_round(round)
    }

    /// Number of protocol rounds that exchanged at least one message.
    /// `O(1)` — the maximum is tracked incrementally while recording.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.stats.rounds()
    }

    /// Total bytes expressed in megabytes (the unit of the paper's Fig. 10).
    #[must_use]
    pub fn total_megabytes(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Merges another transcript into this one by draining it (used when a
    /// protocol runs sub-protocols, e.g. MultiR-DS running two single-source
    /// estimators): `other` is left empty but keeps its mode, and its
    /// message log (if both sides are detailed) is moved, not cloned.
    ///
    /// Mode mixing keeps the detailed invariant (`messages()` always agrees
    /// with the aggregate counters) rather than the mode: a detailed
    /// transcript absorbing a *non-empty lean* one has no messages to take
    /// over, so it downgrades itself to lean instead of retaining a log
    /// that disagrees with its stats; a lean transcript absorbing a
    /// detailed one drops (clears) the other's log.
    pub fn absorb(&mut self, other: &mut Transcript) {
        if self.detail.is_some() && other.detail.is_none() && other.stats.message_count() > 0 {
            self.detail = None;
        }
        self.stats.merge(&other.stats);
        other.stats = TranscriptStats::default();
        if let Some(theirs) = &mut other.detail {
            if let Some(mine) = &mut self.detail {
                mine.append(theirs);
            } else {
                theirs.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_transcript() {
        let t = Transcript::new();
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.messages().len(), 0);
        assert_eq!(t.message_count(), 0);
        assert_eq!(t.total_megabytes(), 0.0);
        assert!(!t.is_detailed());
        assert!(Transcript::detailed().is_detailed());
    }

    #[test]
    fn record_and_aggregate() {
        let mut t = Transcript::new();
        t.record(1, Direction::Upload, "noisy-edges(u)", 400);
        t.record(1, Direction::Upload, "noisy-edges(w)", 600);
        t.record(2, Direction::Download, "noisy-edges(w) -> u", 600);
        t.record(2, Direction::Upload, "estimator(f_u)", 8);

        assert_eq!(t.total_bytes(), 1608);
        assert_eq!(t.bytes_in_direction(Direction::Upload), 1008);
        assert_eq!(t.bytes_in_direction(Direction::Download), 600);
        assert_eq!(t.bytes_in_round(1), 1000);
        assert_eq!(t.bytes_in_round(2), 608);
        assert_eq!(t.bytes_in_round(7), 0);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.message_count(), 4);
        assert!((t.total_megabytes() - 1608.0 / (1024.0 * 1024.0)).abs() < 1e-15);
        // Lean mode retains no per-message log.
        assert!(t.messages().is_empty());
    }

    #[test]
    fn detailed_mode_retains_rendered_messages() {
        let mut t = Transcript::detailed();
        t.record(
            1,
            Direction::Upload,
            Label::Indexed("noisy-edges(v", 0, ")"),
            40,
        );
        t.record(2, Direction::Upload, "estimator(f_u)", 8);
        assert_eq!(t.messages().len(), 2);
        assert_eq!(t.messages()[0].label, "noisy-edges(v0)");
        assert_eq!(t.messages()[1].label, "estimator(f_u)");
        // Aggregates agree with the retained log.
        assert_eq!(
            t.total_bytes(),
            t.messages().iter().map(|m| m.bytes).sum::<usize>()
        );
        assert_eq!(t.message_count(), t.messages().len());
        assert_eq!(t.rounds(), 2);
    }

    #[test]
    fn stats_cells_and_per_round_messages() {
        let mut t = Transcript::new();
        t.record(1, Direction::Upload, "a", 10);
        t.record(1, Direction::Download, "b", 20);
        t.record(3, Direction::Upload, "c", 5);
        let s = t.stats();
        assert_eq!(s.cell(1, Direction::Upload).bytes, 10);
        assert_eq!(s.cell(1, Direction::Download).messages, 1);
        assert_eq!(s.cell(2, Direction::Upload), super::ZERO_CELL);
        assert_eq!(s.cell(99, Direction::Upload).bytes, 0);
        assert_eq!(s.messages_in_round(1), 2);
        assert_eq!(s.messages_in_round(2), 0);
        assert_eq!(s.messages_in_round(3), 1);
        assert_eq!(s.rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "outside the tracked range")]
    fn round_zero_rejected() {
        let mut t = Transcript::new();
        t.record(0, Direction::Upload, "x", 1);
    }

    #[test]
    fn absorb_drains_the_other_transcript() {
        let mut a = Transcript::detailed();
        a.record(1, Direction::Upload, "x", 10);
        let mut b = Transcript::detailed();
        b.record(2, Direction::Download, "y", 20);
        a.absorb(&mut b);
        assert_eq!(a.messages().len(), 2);
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.rounds(), 2);
        // b is drained but keeps its mode.
        assert_eq!(b.total_bytes(), 0);
        assert_eq!(b.rounds(), 0);
        assert!(b.messages().is_empty());
        assert!(b.is_detailed());
    }

    #[test]
    fn absorb_lean_sides_merge_counters() {
        let mut a = Transcript::new();
        a.record(1, Direction::Upload, "x", 10);
        let mut b = Transcript::new();
        b.record(2, Direction::Download, "y", 20);
        a.absorb(&mut b);
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.rounds(), 2);
        assert_eq!(a.message_count(), 2);
        assert_eq!(b.total_bytes(), 0);
        // Lean absorbing detailed drops (clears) the other's log rather
        // than cloning it.
        let mut c = Transcript::new();
        let mut d = Transcript::detailed();
        d.record(1, Direction::Upload, "z", 7);
        c.absorb(&mut d);
        assert_eq!(c.total_bytes(), 7);
        assert!(d.messages().is_empty());
    }

    #[test]
    fn detailed_absorbing_nonempty_lean_downgrades_to_lean() {
        // The absorbed side's messages were never retained, so keeping the
        // detailed log would leave messages() disagreeing with the stats;
        // the invariant wins over the mode.
        let mut a = Transcript::detailed();
        a.record(1, Direction::Upload, "x", 10);
        let mut b = Transcript::new();
        b.record(2, Direction::Download, "y", 20);
        a.absorb(&mut b);
        assert!(!a.is_detailed());
        assert!(a.messages().is_empty());
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.message_count(), 2);
        // Absorbing an *empty* lean transcript keeps the detailed log.
        let mut c = Transcript::detailed();
        c.record(1, Direction::Upload, "x", 10);
        let mut empty = Transcript::new();
        c.absorb(&mut empty);
        assert!(c.is_detailed());
        assert_eq!(c.messages().len(), 1);
    }

    #[test]
    fn label_rendering() {
        assert_eq!(Label::Static("rr").render(), "rr");
        assert_eq!(Label::Indexed("round", 2, ":rr").render(), "round2:rr");
        assert_eq!(Label::from("x").to_string(), "x");
        assert_eq!(
            Label::Indexed("round2:laplace(f_w", 17, ")").to_string(),
            "round2:laplace(f_w17)"
        );
    }

    #[test]
    fn corrupted_max_round_degrades_instead_of_panicking() {
        // A hand-edited or corrupted saved transcript can carry an
        // out-of-range max_round; accessors must clamp, not slice-panic.
        let mut t = Transcript::new();
        t.record(2, Direction::Upload, "m", 5);
        let clean = serde_json::to_string(&t).unwrap();
        let json = clean.replace(
            "\"max_round\":2",
            &format!("\"max_round\":{}", MAX_TRACKED_ROUNDS + 83),
        );
        assert_ne!(json, clean, "corruption must actually apply");
        let back: Transcript = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_bytes(), 5);
        assert_eq!(back.message_count(), 1);
        assert_eq!(back.bytes_in_direction(Direction::Upload), 5);
        assert_eq!(back.bytes_in_round(2), 5);
        assert_eq!(back.bytes_in_round(99), 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Transcript::new();
        t.record(1, Direction::Upload, "m", 3);
        let json = serde_json::to_string(&t).unwrap();
        let back: Transcript = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);

        let mut d = Transcript::detailed();
        d.record(
            2,
            Direction::Download,
            Label::Indexed("noisy-edges(v", 1, ")"),
            9,
        );
        let json = serde_json::to_string(&d).unwrap();
        let back: Transcript = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.messages()[0].label, "noisy-edges(v1)");
    }
}

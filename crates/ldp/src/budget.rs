//! Privacy budgets and composition accounting.
//!
//! Edge LDP composes in two ways that the paper relies on:
//!
//! * **Sequential composition** — running mechanisms `M₁, …, M_k` with budgets
//!   `ε₁, …, ε_k` on the *same* data satisfies `(Σᵢ εᵢ)`-edge LDP. The
//!   multi-round algorithms split `ε` into per-round budgets this way.
//! * **Parallel composition** — running mechanisms on *disjoint* parts of the
//!   data (e.g. each vertex reporting its own degree) satisfies
//!   `maxᵢ εᵢ`-edge LDP.
//!
//! [`PrivacyBudget`] is a validated positive budget, and [`BudgetAccountant`]
//! tracks how much of a total budget each round of a protocol has consumed so
//! that implementations cannot silently exceed their allowance.

use crate::error::{LdpError, Result};
use crate::transcript::Label;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated, strictly positive, finite privacy budget `ε`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct PrivacyBudget(f64);

impl PrivacyBudget {
    /// Creates a budget, validating that it is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`LdpError::InvalidBudget`] for non-positive, NaN or infinite
    /// values.
    pub fn new(epsilon: f64) -> Result<Self> {
        if epsilon.is_finite() && epsilon > 0.0 {
            Ok(Self(epsilon))
        } else {
            Err(LdpError::InvalidBudget { value: epsilon })
        }
    }

    /// The raw `ε` value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Splits the budget into `k` equal parts (sequential composition).
    ///
    /// # Errors
    ///
    /// Returns [`LdpError::InvalidParameter`] if `k == 0`.
    pub fn split_even(self, k: usize) -> Result<Vec<PrivacyBudget>> {
        if k == 0 {
            return Err(LdpError::InvalidParameter {
                name: "k",
                reason: "cannot split a budget into zero parts".into(),
            });
        }
        let part = self.0 / k as f64;
        Ok(vec![PrivacyBudget(part); k])
    }

    /// Splits the budget into two parts `(fraction·ε, (1-fraction)·ε)`.
    ///
    /// # Errors
    ///
    /// Returns [`LdpError::InvalidParameter`] unless `0 < fraction < 1`.
    pub fn split_fraction(self, fraction: f64) -> Result<(PrivacyBudget, PrivacyBudget)> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(LdpError::InvalidParameter {
                name: "fraction",
                reason: format!("must be strictly between 0 and 1, got {fraction}"),
            });
        }
        Ok((
            PrivacyBudget(self.0 * fraction),
            PrivacyBudget(self.0 * (1.0 - fraction)),
        ))
    }

    /// The sequential composition of two budgets: `ε₁ + ε₂`.
    #[must_use]
    pub fn sequential(self, other: PrivacyBudget) -> PrivacyBudget {
        PrivacyBudget(self.0 + other.0)
    }

    /// The parallel composition of two budgets: `max(ε₁, ε₂)`.
    #[must_use]
    pub fn parallel(self, other: PrivacyBudget) -> PrivacyBudget {
        PrivacyBudget(self.0.max(other.0))
    }

    /// Subtracts `other`, failing if the remainder would be non-positive.
    ///
    /// # Errors
    ///
    /// Returns [`LdpError::BudgetExceeded`] when `other >= self`.
    pub fn minus(self, other: PrivacyBudget) -> Result<PrivacyBudget> {
        let rem = self.0 - other.0;
        if rem > 0.0 {
            Ok(PrivacyBudget(rem))
        } else {
            Err(LdpError::BudgetExceeded {
                available: self.0,
                requested: other.0,
            })
        }
    }
}

impl fmt::Display for PrivacyBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// How two consecutive charges against a [`BudgetAccountant`] compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Composition {
    /// Charges add up (mechanisms observe overlapping data).
    Sequential,
    /// Charges take the maximum (mechanisms observe disjoint data).
    Parallel,
}

/// A single recorded charge against a budget accountant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetCharge {
    /// A short label describing the round ("rr", "laplace-degree", ...).
    pub label: String,
    /// Budget consumed by the round.
    pub epsilon: f64,
    /// How this charge composes with the charges before it.
    pub composition: Composition,
}

/// Tracks privacy-budget consumption across the rounds of a protocol.
///
/// The accountant is created with a total allowance; every round charges its
/// consumption with [`BudgetAccountant::charge`]. Attempting to exceed the
/// allowance is an error, which turns silent privacy overruns into test
/// failures.
///
/// Consumption is tracked **incrementally** (a committed sum plus the
/// running maximum of the open parallel group), so [`consumed`] is `O(1)`
/// and charging allocates nothing. The per-charge ledger
/// ([`BudgetAccountant::charges`]) is retained by default
/// ([`BudgetAccountant::new`]) but can be turned off for hot paths with
/// [`BudgetAccountant::lean`], where every charge is pure arithmetic —
/// the label (an interned [`Label`]) is never rendered. Both modes compute
/// identical consumption, in the identical floating-point order.
///
/// [`consumed`]: BudgetAccountant::consumed
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetAccountant {
    total: PrivacyBudget,
    charges: Vec<BudgetCharge>,
    detailed: bool,
    /// Sum of all closed sequential groups.
    committed: f64,
    /// Running maximum of the currently open parallel group.
    group: f64,
}

impl BudgetAccountant {
    /// Creates an accountant with a total allowance of `total` that retains
    /// the full per-charge ledger.
    #[must_use]
    pub fn new(total: PrivacyBudget) -> Self {
        Self {
            total,
            charges: Vec::new(),
            detailed: true,
            committed: 0.0,
            group: 0.0,
        }
    }

    /// Creates a **lean** accountant: consumption totals only, no retained
    /// ledger, no allocation per charge. Used by the estimation hot paths.
    #[must_use]
    pub fn lean(total: PrivacyBudget) -> Self {
        Self {
            detailed: false,
            ..Self::new(total)
        }
    }

    /// Whether this accountant retains the per-charge ledger.
    #[must_use]
    pub fn is_detailed(&self) -> bool {
        self.detailed
    }

    /// The total allowance.
    #[must_use]
    pub fn total(&self) -> PrivacyBudget {
        self.total
    }

    /// The overall budget consumed so far, honouring each charge's composition
    /// rule: sequential charges add, parallel charges take the running maximum
    /// of the parallel group they extend. `O(1)`.
    #[must_use]
    pub fn consumed(&self) -> f64 {
        self.committed + self.group
    }

    /// Remaining budget (total − consumed), never negative.
    #[must_use]
    pub fn remaining(&self) -> f64 {
        (self.total.value() - self.consumed()).max(0.0)
    }

    /// Records a charge of `epsilon` composing as `composition`.
    ///
    /// # Errors
    ///
    /// * [`LdpError::InvalidBudget`] if `epsilon` is not positive and finite.
    /// * [`LdpError::BudgetExceeded`] if the charge would push consumption
    ///   above the total allowance (beyond a small floating-point tolerance).
    ///   A rejected charge leaves the accountant untouched.
    pub fn charge(
        &mut self,
        label: impl Into<Label>,
        epsilon: PrivacyBudget,
        composition: Composition,
    ) -> Result<()> {
        let (committed, group) = match composition {
            Composition::Sequential => (self.committed + self.group, epsilon.value()),
            Composition::Parallel => (self.committed, self.group.max(epsilon.value())),
        };
        const TOL: f64 = 1e-9;
        if committed + group > self.total.value() * (1.0 + TOL) + TOL {
            return Err(LdpError::BudgetExceeded {
                available: self.remaining(),
                requested: epsilon.value(),
            });
        }
        self.committed = committed;
        self.group = group;
        if self.detailed {
            self.charges.push(BudgetCharge {
                label: label.into().render(),
                epsilon: epsilon.value(),
                composition,
            });
        }
        Ok(())
    }

    /// The recorded charges, in order. Empty for lean accountants — the
    /// consumption totals are maintained either way.
    #[must_use]
    pub fn charges(&self) -> &[BudgetCharge] {
        &self.charges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(PrivacyBudget::new(1.0).is_ok());
        assert!(PrivacyBudget::new(0.0).is_err());
        assert!(PrivacyBudget::new(-2.0).is_err());
        assert!(PrivacyBudget::new(f64::NAN).is_err());
        assert!(PrivacyBudget::new(f64::INFINITY).is_err());
    }

    #[test]
    fn split_even_sums_back() {
        let eps = PrivacyBudget::new(2.0).unwrap();
        let parts = eps.split_even(4).unwrap();
        assert_eq!(parts.len(), 4);
        let sum: f64 = parts.iter().map(|p| p.value()).sum();
        assert!((sum - 2.0).abs() < 1e-12);
        assert!(eps.split_even(0).is_err());
    }

    #[test]
    fn split_fraction_bounds() {
        let eps = PrivacyBudget::new(2.0).unwrap();
        let (a, b) = eps.split_fraction(0.25).unwrap();
        assert!((a.value() - 0.5).abs() < 1e-12);
        assert!((b.value() - 1.5).abs() < 1e-12);
        assert!(eps.split_fraction(0.0).is_err());
        assert!(eps.split_fraction(1.0).is_err());
        assert!(eps.split_fraction(f64::NAN).is_err());
    }

    #[test]
    fn composition_rules() {
        let a = PrivacyBudget::new(1.0).unwrap();
        let b = PrivacyBudget::new(0.5).unwrap();
        assert!((a.sequential(b).value() - 1.5).abs() < 1e-12);
        assert!((a.parallel(b).value() - 1.0).abs() < 1e-12);
        assert!((a.minus(b).unwrap().value() - 0.5).abs() < 1e-12);
        assert!(b.minus(a).is_err());
    }

    #[test]
    fn accountant_sequential_overrun_detected() {
        let total = PrivacyBudget::new(1.0).unwrap();
        let mut acc = BudgetAccountant::new(total);
        let half = PrivacyBudget::new(0.5).unwrap();
        acc.charge("round1", half, Composition::Sequential).unwrap();
        acc.charge("round2", half, Composition::Sequential).unwrap();
        assert!((acc.consumed() - 1.0).abs() < 1e-9);
        assert!(acc.remaining() < 1e-9);
        let err = acc
            .charge(
                "round3",
                PrivacyBudget::new(0.1).unwrap(),
                Composition::Sequential,
            )
            .unwrap_err();
        assert!(matches!(err, LdpError::BudgetExceeded { .. }));
        // The failed charge must not be recorded.
        assert_eq!(acc.charges().len(), 2);
    }

    #[test]
    fn accountant_parallel_takes_max() {
        let total = PrivacyBudget::new(1.0).unwrap();
        let mut acc = BudgetAccountant::new(total);
        let e = PrivacyBudget::new(0.8).unwrap();
        // Degree reports from many vertices: disjoint data -> parallel.
        acc.charge("deg-u", e, Composition::Sequential).unwrap();
        acc.charge("deg-w", e, Composition::Parallel).unwrap();
        acc.charge(
            "deg-x",
            PrivacyBudget::new(0.3).unwrap(),
            Composition::Parallel,
        )
        .unwrap();
        assert!((acc.consumed() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn accountant_mixed_composition() {
        // ε0 (parallel degree round) + ε1 (RR) + ε2 (parallel Laplace round)
        let total = PrivacyBudget::new(2.0).unwrap();
        let mut acc = BudgetAccountant::new(total);
        let e0 = PrivacyBudget::new(0.1).unwrap();
        acc.charge("deg-u", e0, Composition::Sequential).unwrap();
        acc.charge("deg-w", e0, Composition::Parallel).unwrap();
        let e1 = PrivacyBudget::new(0.9).unwrap();
        acc.charge("rr", e1, Composition::Sequential).unwrap();
        let e2 = PrivacyBudget::new(1.0).unwrap();
        acc.charge("laplace-fu", e2, Composition::Sequential)
            .unwrap();
        acc.charge("laplace-fw", e2, Composition::Parallel).unwrap();
        assert!((acc.consumed() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lean_accountant_matches_detailed_totals_without_ledger() {
        let total = PrivacyBudget::new(2.0).unwrap();
        let mut detailed = BudgetAccountant::new(total);
        let mut lean = BudgetAccountant::lean(total);
        assert!(detailed.is_detailed());
        assert!(!lean.is_detailed());
        let steps = [
            ("a", 0.3, Composition::Sequential),
            ("b", 0.5, Composition::Parallel),
            ("c", 0.9, Composition::Sequential),
            ("d", 0.2, Composition::Parallel),
        ];
        for (label, eps, comp) in steps {
            let eps = PrivacyBudget::new(eps).unwrap();
            detailed.charge(label, eps, comp).unwrap();
            lean.charge(label, eps, comp).unwrap();
            // Bit-identical, not just approximately equal: both modes apply
            // the same float operations in the same order.
            assert_eq!(detailed.consumed().to_bits(), lean.consumed().to_bits());
        }
        assert_eq!(detailed.charges().len(), 4);
        assert!(lean.charges().is_empty());
        // Overruns are rejected identically, leaving both untouched.
        let big = PrivacyBudget::new(3.0).unwrap();
        assert!(detailed.charge("x", big, Composition::Sequential).is_err());
        assert!(lean.charge("x", big, Composition::Sequential).is_err());
        assert_eq!(detailed.consumed().to_bits(), lean.consumed().to_bits());
        assert_eq!(detailed.charges().len(), 4);
    }

    #[test]
    fn interned_labels_render_in_the_ledger() {
        use crate::transcript::Label;
        let total = PrivacyBudget::new(2.0).unwrap();
        let mut acc = BudgetAccountant::new(total);
        acc.charge(
            Label::Indexed("round", 2, ":rr"),
            PrivacyBudget::new(1.0).unwrap(),
            Composition::Sequential,
        )
        .unwrap();
        assert_eq!(acc.charges()[0].label, "round2:rr");
    }

    #[test]
    fn display_format() {
        assert_eq!(PrivacyBudget::new(1.5).unwrap().to_string(), "ε=1.5");
    }

    #[test]
    fn serde_round_trip() {
        let total = PrivacyBudget::new(2.0).unwrap();
        let mut acc = BudgetAccountant::new(total);
        acc.charge(
            "rr",
            PrivacyBudget::new(1.0).unwrap(),
            Composition::Sequential,
        )
        .unwrap();
        let json = serde_json::to_string(&acc).unwrap();
        let back: BudgetAccountant = serde_json::from_str(&json).unwrap();
        assert_eq!(acc, back);
    }
}

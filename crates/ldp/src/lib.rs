//! # ldp — local differential privacy substrate
//!
//! This crate implements the privacy mechanisms that the common-neighborhood
//! estimators in the `cne` crate are composed from:
//!
//! * [`budget`] — privacy-budget arithmetic with sequential / parallel
//!   composition accounting,
//! * [`randomized_response`] — Warner's randomized response over bits and
//!   neighbor lists (the paper's noisy-graph construction),
//! * [`laplace`] — the Laplace mechanism with explicit global sensitivity,
//! * [`noisy_graph`] — the per-query-vertex noisy neighbor sets produced by
//!   randomized response, with membership queries, bit-packed views, and
//!   size accounting,
//! * [`transcript`] — byte-level communication-cost accounting for the
//!   messages exchanged between clients (vertices) and the data curator,
//!   used by the paper's Fig. 10 experiment.
//!
//! # Lean vs detailed accounting
//!
//! Both the message transcript and the budget ledger come in two modes.
//! The **lean** mode (the default on every estimation hot path) maintains
//! only fixed-size aggregate counters — per-round × per-direction bytes and
//! message counts ([`transcript::TranscriptStats`]) and `O(1)` incremental
//! budget-consumption totals — so recording a message or charging the
//! budget performs zero heap allocations; labels are interned
//! [`transcript::Label`] values that are never rendered. The **detailed**
//! mode ([`Transcript::detailed`], [`budget::BudgetAccountant::new`])
//! additionally retains every [`transcript::Message`] and
//! [`budget::BudgetCharge`] with rendered labels for tests and debugging.
//! Every aggregate accessor returns identical values in either mode
//! (property-tested against random protocol runs in the `cne` crate).
//!
//! # Performance: the packed-native perturbation pipeline
//!
//! The hot path of every estimator is randomized-response perturbation of
//! a neighbor row. It is implemented with **geometric skip sampling**:
//! rather than drawing one Bernoulli(`p`) per candidate slot (`O(n)` work
//! and RNG draws for an opposite layer of size `n`), the sampler jumps
//! straight between flips with geometric-gap draws — expected `O(d + p·n)`
//! work and `O(p·(n + d) + 2)` draws for a vertex of degree `d`, while
//! producing an output *identically distributed* to the per-bit scan
//! (χ²-property-tested against the retained dense reference,
//! [`RandomizedResponse::perturb_neighbor_list_dense`]).
//!
//! The gaps are evaluated through a **batched draw pipeline**
//! (uniform draws pulled in guaranteed-consumed blocks, gaps resolved by
//! exact two-tier threshold tables — branchless compares plus a bounded
//! binary search — with only a `(1−p)^288` tail paying a `ln`), and the
//! noisy row is written **directly into packed `u64` words** by
//! [`RandomizedResponse::perturb_neighbor_list_packed`] /
//! [`noisy_graph::NoisyNeighborsPacked`]: kept true neighbors OR in
//! word-wise from a cached bitmap, flipped zeros set bits as their ranks
//! are translated — no sorted id list, no merge pass.
//!
//! **Draw-sequence compatibility contract:** every pipeline variant —
//! batched or scalar, list-producing or packed-native, with or without the
//! threshold tables — consumes the RNG stream *identically, draw for
//! draw*, and produces the same bit set. The retained scalar sampler
//! ([`RandomizedResponse::perturb_neighbor_list_scalar_reference`]) is the
//! ground truth this is property-tested against; the contract is what lets
//! engines swap representations without moving a single downstream
//! estimate. Callers that genuinely need ids (serialization, wire-format
//! simulation) use the list APIs or
//! [`noisy_graph::NoisyNeighborsPacked::materialize`]; everything on the
//! curator's intersection path should stay in packed form — intersections
//! are word-parallel `AND` + popcount loops and membership probes are
//! single bit tests. See `BENCH_micro.json` at the workspace root for the
//! recorded baselines.
//!
//! # Determinism contract
//!
//! All mechanisms are generic over `rand::Rng`, so experiments are fully
//! deterministic under a seeded RNG. Parallel engines (the `cne` batch
//! protocol, the `eval` runner) derive one independent stream per
//! participating user as `mix(seed, vertex id)` (`cne::batch::user_stream_seed`);
//! streams never depend on thread scheduling, so seeded runs are
//! **byte-identical at any core count**.
//!
//! ```
//! use ldp::budget::PrivacyBudget;
//! use ldp::randomized_response::RandomizedResponse;
//! use rand::SeedableRng;
//!
//! let eps = PrivacyBudget::new(2.0).unwrap();
//! let rr = RandomizedResponse::new(eps);
//! // Flip probability p = 1 / (1 + e^eps)
//! assert!((rr.flip_probability() - 1.0 / (1.0 + 2.0f64.exp())).abs() < 1e-12);
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let noisy = rr.perturb_bit(true, &mut rng);
//! let _ = noisy; // either true or false, with P(flip) = p
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod degree;
pub mod error;
pub mod laplace;
pub mod mechanism;
pub mod noisy_graph;
pub mod randomized_response;
pub mod transcript;

pub use budget::PrivacyBudget;
pub use error::{LdpError, Result};
pub use laplace::LaplaceMechanism;
pub use mechanism::Sensitivity;
pub use noisy_graph::{NoisyNeighbors, NoisyNeighborsPacked};
pub use randomized_response::{PerturbScratch, RandomizedResponse};
pub use transcript::{Direction, Label, Transcript, TranscriptStats};

//! Locally differentially private degree estimation.
//!
//! Degrees are the simplest graph statistic released under edge LDP: the
//! global sensitivity of a degree is 1 (one flipped bit in the neighbor list
//! changes it by one), so `deg + Lap(1/ε)` suffices. MultiR-DS uses this in
//! its first round; the helpers here are also useful on their own (degree
//! distributions are a standard LDP graph-analytics task) and are shared by
//! the `cne::similarity` estimators.

use crate::budget::PrivacyBudget;
use crate::laplace::LaplaceMechanism;
use crate::mechanism::Sensitivity;
use bigraph::{BipartiteGraph, Layer, VertexId};
use rand::Rng;

/// Releases the degree of one vertex under `ε`-edge LDP.
pub fn noisy_degree<R: Rng + ?Sized>(
    g: &BipartiteGraph,
    layer: Layer,
    vertex: VertexId,
    epsilon: PrivacyBudget,
    rng: &mut R,
) -> f64 {
    let mechanism = LaplaceMechanism::new(epsilon, Sensitivity::one());
    mechanism.perturb(g.degree(layer, vertex) as f64, rng)
}

/// Releases the degrees of every vertex on `layer`.
///
/// Each vertex perturbs only its own neighbor list, so the releases compose in
/// parallel and the whole vector satisfies `ε`-edge LDP.
pub fn noisy_degree_vector<R: Rng + ?Sized>(
    g: &BipartiteGraph,
    layer: Layer,
    epsilon: PrivacyBudget,
    rng: &mut R,
) -> Vec<f64> {
    let mechanism = LaplaceMechanism::new(epsilon, Sensitivity::one());
    // Bulk-sample the noise (one uniform refill per block instead of one
    // generator call per vertex), then shift by the true degrees. Identical
    // stream consumption and arithmetic to perturbing per vertex.
    let n = g.layer_size(layer);
    let mut out = vec![0.0f64; n];
    mechanism.sample_noise_block(rng, &mut out);
    for (v, noisy) in out.iter_mut().enumerate() {
        *noisy += g.degree(layer, v as VertexId) as f64;
    }
    out
}

/// The average of a noisy degree vector, clamped to be at least `floor`.
///
/// Averaging `n` independent `Lap(1/ε)` noises shrinks their standard
/// deviation by `√n`, so the layer average is far more accurate than any
/// individual degree — which is why MultiR-DS uses it to correct non-positive
/// per-vertex estimates.
#[must_use]
pub fn average_noisy_degree(noisy_degrees: &[f64], floor: f64) -> f64 {
    if noisy_degrees.is_empty() {
        return floor;
    }
    let avg = noisy_degrees.iter().sum::<f64>() / noisy_degrees.len() as f64;
    avg.max(floor)
}

/// A non-negative integer degree estimate obtained by post-processing a noisy
/// degree (rounding and clamping never hurt privacy).
#[must_use]
pub fn post_process_degree(noisy: f64, max_degree: usize) -> usize {
    if !noisy.is_finite() || noisy <= 0.0 {
        0
    } else {
        (noisy.round() as usize).min(max_degree)
    }
}

/// Estimates the degree histogram of `layer` under `ε`-edge LDP by rounding
/// the noisy degree vector. Bins above `max_degree` are clamped into the last
/// bin. The result is a crude but private summary suitable for choosing
/// experiment parameters without touching raw data.
pub fn noisy_degree_histogram<R: Rng + ?Sized>(
    g: &BipartiteGraph,
    layer: Layer,
    epsilon: PrivacyBudget,
    max_degree: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut hist = vec![0usize; max_degree + 1];
    for noisy in noisy_degree_vector(g, layer, epsilon, rng) {
        let d = post_process_degree(noisy, max_degree);
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> BipartiteGraph {
        // upper degrees: 4, 2, 0
        BipartiteGraph::from_edges(3, 6, [(0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 5)]).unwrap()
    }

    #[test]
    fn noisy_degree_is_unbiased() {
        let g = toy();
        let eps = PrivacyBudget::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let runs = 50_000;
        let mean: f64 = (0..runs)
            .map(|_| noisy_degree(&g, Layer::Upper, 0, eps, &mut rng))
            .sum::<f64>()
            / runs as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn degree_vector_covers_layer() {
        let g = toy();
        let eps = PrivacyBudget::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let v = noisy_degree_vector(&g, Layer::Upper, eps, &mut rng);
        assert_eq!(v.len(), 3);
        let l = noisy_degree_vector(&g, Layer::Lower, eps, &mut rng);
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn average_noisy_degree_concentrates() {
        let g = toy();
        let eps = PrivacyBudget::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // True average upper degree = 2. With only 3 vertices the average is
        // noisy, so average over repeated releases to test concentration.
        let runs = 5_000;
        let mean: f64 = (0..runs)
            .map(|_| {
                let v = noisy_degree_vector(&g, Layer::Upper, eps, &mut rng);
                average_noisy_degree(&v, 0.0)
            })
            .sum::<f64>()
            / runs as f64;
        // Clamping negative averages at the floor introduces a small upward
        // bias on this tiny 3-vertex layer, so the tolerance is generous.
        assert!((mean - 2.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn average_floor_and_empty() {
        assert_eq!(average_noisy_degree(&[], 1.0), 1.0);
        assert_eq!(average_noisy_degree(&[-5.0, -3.0], 1.0), 1.0);
        assert!((average_noisy_degree(&[2.0, 4.0], 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn post_processing_clamps() {
        assert_eq!(post_process_degree(-3.2, 10), 0);
        assert_eq!(post_process_degree(f64::NAN, 10), 0);
        assert_eq!(post_process_degree(4.4, 10), 4);
        assert_eq!(post_process_degree(4.6, 10), 5);
        assert_eq!(post_process_degree(99.0, 10), 10);
    }

    #[test]
    fn histogram_sums_to_layer_size() {
        let g = toy();
        let eps = PrivacyBudget::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let hist = noisy_degree_histogram(&g, Layer::Upper, eps, 8, &mut rng);
        assert_eq!(hist.len(), 9);
        assert_eq!(hist.iter().sum::<usize>(), 3);
    }

    #[test]
    fn histogram_high_budget_recovers_truth() {
        let g = toy();
        let eps = PrivacyBudget::new(50.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let hist = noisy_degree_histogram(&g, Layer::Upper, eps, 6, &mut rng);
        assert_eq!(hist[4], 1);
        assert_eq!(hist[2], 1);
        assert_eq!(hist[0], 1);
    }
}

//! Warner's randomized response (RR) over bits and neighbor lists.
//!
//! Each bit `x ∈ {0, 1}` of a neighbor list is flipped independently with
//! probability `p = 1 / (1 + e^ε)` and kept with probability `e^ε / (1 + e^ε)`.
//! Applying RR to a whole neighbor list satisfies ε-edge LDP because two lists
//! differing in one bit produce any given output with probability ratio at
//! most `e^ε`.
//!
//! The module also provides the *unbiased edge estimator*
//! `φ(i,j) = (A'[i,j] − p) / (1 − 2p)` from Section 3.1 of the paper, together
//! with its variance, which the `cne` estimators build on.
//!
//! # The perturbation pipeline
//!
//! Noisy lists are produced by **geometric skip sampling** (gaps between
//! successive flips drawn from the geometric distribution — expected
//! `O(d + p·n)` work instead of the dense `O(n)` scan), evaluated through a
//! **batched draw pipeline**:
//!
//! * uniform draws are pulled from the RNG in blocks sized so that the
//!   scalar sampler would certainly have consumed every draw in the block
//!   (the block length is bounded by `remaining / max_gap_advance`, so a
//!   block can never overshoot the skip range) — RNG stream consumption is
//!   **exactly** the scalar sampler's, draw for draw;
//! * gaps resolve against exact threshold tables — a `GapTable` of 32
//!   small-gap thresholds extended to 288 by `GapTables`, fronted by a
//!   mantissa-prefix direct-lookup tier that maps almost every draw to its
//!   gap with one shift and one load (buckets containing a step boundary
//!   fall back to a partition-point search); only the rare tail
//!   (`(1−p)^288` of draws) pays the `ln` formula. Every threshold sits
//!   exactly on a step boundary of the reference formula, so resolved gaps
//!   are **bit-identical** to `⌊ln u / ln(1−p)⌋` — property-tested against
//!   the retained scalar reference sampler
//!   ([`RandomizedResponse::perturb_neighbor_list_scalar_reference`]).
//!
//! Consumers that intersect noisy lists (all of `cne`'s hot paths) should
//! use [`RandomizedResponse::perturb_neighbor_list_packed`], which writes
//! the noisy row **directly into packed `u64` words** — true neighbors are
//! OR-ed in word-wise from a cached bitmap (or set bit-wise from the id
//! list), dropped bits are cleared, and flipped zeros are set as their
//! ranks are translated — no sorted id list, no merge pass, no intermediate
//! allocation beyond the returned bitmap. The list-producing APIs remain
//! for callers that genuinely need ids and for the transcript-faithful
//! client simulation; both forms draw from the RNG identically and contain
//! exactly the same bit set.

use crate::budget::PrivacyBudget;
use crate::mechanism::Mechanism;
use bigraph::bitset::{clear_bit, set_bit, PackedSet};
use bigraph::VertexId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::Arc;

/// The randomized-response mechanism for one privacy budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedResponse {
    epsilon: f64,
    flip_probability: f64,
}

impl RandomizedResponse {
    /// Creates a randomized-response mechanism for privacy budget `epsilon`.
    #[must_use]
    pub fn new(epsilon: PrivacyBudget) -> Self {
        let eps = epsilon.value();
        Self {
            epsilon: eps,
            flip_probability: 1.0 / (1.0 + eps.exp()),
        }
    }

    /// The flip probability `p = 1 / (1 + e^ε)`, always in `(0, 0.5)`.
    #[must_use]
    pub fn flip_probability(&self) -> f64 {
        self.flip_probability
    }

    /// The keep probability `e^ε / (1 + e^ε) = 1 − p`.
    #[must_use]
    pub fn keep_probability(&self) -> f64 {
        1.0 - self.flip_probability
    }

    /// The privacy budget this mechanism consumes per neighbor list.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Perturbs one bit: flips it with probability `p`.
    pub fn perturb_bit<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        if rng.gen::<f64>() < self.flip_probability {
            !bit
        } else {
            bit
        }
    }

    /// Applies RR to a full neighbor list of a vertex whose opposite layer has
    /// `opposite_size` vertices, returning the *sorted* list of noisy
    /// neighbors (the "1" entries of the perturbed row).
    ///
    /// `true_neighbors` must be sorted ascending (as produced by
    /// [`bigraph::BipartiteGraph::neighbors`]).
    ///
    /// Implemented by **geometric skip sampling** through the batched draw
    /// pipeline (see the [module docs](self)): instead of one Bernoulli(`p`)
    /// per candidate slot (the dense `O(opposite_size)` scan kept as
    /// [`Self::perturb_neighbor_list_dense`]), the sampler draws the gaps
    /// between successive flips directly from the geometric distribution —
    /// the output distribution is *identical* to the per-bit scan, at
    /// expected cost `O(d + p·n)` work and `O(p·n + p·d + 2)` RNG draws for
    /// degree `d` and opposite size `n`.
    ///
    /// Uses a thread-local [`PerturbScratch`] for staging buffers and the
    /// gap-table cache; callers holding their own scratch (the `cne`
    /// engines) should use [`Self::perturb_neighbor_list_with`].
    pub fn perturb_neighbor_list<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        THREAD_SCRATCH.with(|cell| {
            self.perturb_neighbor_list_with(
                true_neighbors,
                opposite_size,
                rng,
                &mut cell.borrow_mut(),
            )
        })
    }

    /// [`Self::perturb_neighbor_list`] with a caller-provided
    /// [`PerturbScratch`] for the staging buffers and gap-table cache.
    ///
    /// The output — and the RNG stream consumed — is identical to
    /// [`Self::perturb_neighbor_list`]; only the intermediate allocations
    /// are replaced by scratch reuse, so a caller perturbing many lists (a
    /// batch round, the `cne` engines) pays one allocation per call (the
    /// returned list).
    pub fn perturb_neighbor_list_with<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
        scratch: &mut PerturbScratch,
    ) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.perturb_neighbor_list_into(true_neighbors, opposite_size, rng, scratch, &mut out);
        out
    }

    /// [`Self::perturb_neighbor_list_with`] writing the noisy list into a
    /// caller-provided buffer (cleared on entry) instead of allocating —
    /// the fully allocation-free form of the legacy list-producing path.
    pub fn perturb_neighbor_list_into<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
        scratch: &mut PerturbScratch,
        out: &mut Vec<VertexId>,
    ) {
        debug_assert!(true_neighbors.windows(2).all(|w| w[0] < w[1]));
        out.clear();
        let p = self.flip_probability;
        // ε large enough that p underflowed to exactly 0 (ε ≳ 710): no bit
        // can flip, so the noisy list is the true list. Guarding here keeps
        // the gap distribution's `ln(1 − p) = 0` division out of reach.
        if p <= 0.0 {
            out.extend_from_slice(true_neighbors);
            return;
        }
        let d = true_neighbors.len();
        let zeros = opposite_size.saturating_sub(d);
        let sampler = GapSampler::prepare(p, opposite_size, scratch);

        // 1 → 0 flips: skip-sample positions *within the true list* that get
        // dropped; every position not dropped is kept. The drop positions
        // are staged in the scratch event buffer, and the survivors are
        // copied out segment-wise.
        let (events, kept) = scratch.events_and_kept();
        sampler.sample_events(d, rng, events);
        kept.clear();
        kept.reserve(d);
        let mut prev = 0usize;
        for &drop in events.iter() {
            kept.extend_from_slice(&true_neighbors[prev..drop as usize]);
            prev = drop as usize + 1;
        }
        kept.extend_from_slice(&true_neighbors[prev..]);

        // 0 → 1 flips: skip-sample ranks within the `zeros` non-neighbor
        // slots, then translate each rank to a vertex id by sliding past the
        // true neighbors (both sequences ascend, so one in-place merge pass
        // suffices — ranks only grow under translation, and they are
        // processed in order, so overwriting is safe).
        events.clear();
        sampler.sample_events(zeros, rng, events);
        let mut ti = 0usize;
        for slot in events.iter_mut() {
            let mut id = *slot as usize + ti;
            while ti < d && (true_neighbors[ti] as usize) <= id {
                ti += 1;
                id += 1;
            }
            *slot = id as VertexId;
        }

        merge_sorted_disjoint_into(kept, events, out);
    }

    /// Applies RR to a neighbor list, producing the noisy row **directly in
    /// bit-packed form** — the hot-path entry the `cne` round-1 consumers
    /// use, skipping the sorted-list detour entirely.
    ///
    /// `true_packed`, when provided, must be the packed form of
    /// `true_neighbors` over `0..opposite_size` (e.g. the estimation
    /// engine's cached adjacency bitmap): the kept true neighbors are then
    /// OR-ed in **word-wise** instead of bit-by-bit. With or without it,
    /// the returned set contains exactly the same bits as packing
    /// [`Self::perturb_neighbor_list`]'s output, and the RNG stream is
    /// consumed identically draw-for-draw (property-tested).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `true_neighbors` is unsorted or `true_packed`
    /// disagrees with `true_neighbors`/`opposite_size`.
    pub fn perturb_neighbor_list_packed<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        true_packed: Option<&PackedSet>,
        opposite_size: usize,
        rng: &mut R,
        scratch: &mut PerturbScratch,
    ) -> PackedSet {
        debug_assert!(true_neighbors.windows(2).all(|w| w[0] < w[1]));
        if let Some(packed) = true_packed {
            debug_assert_eq!(packed.universe(), opposite_size);
            debug_assert_eq!(packed.len(), true_neighbors.len());
        }
        let p = self.flip_probability;
        if p <= 0.0 {
            // No bit can flip: the noisy row is the true row.
            return match true_packed {
                Some(packed) => packed.clone(),
                None => PackedSet::from_sorted(true_neighbors, opposite_size),
            };
        }
        let d = true_neighbors.len();
        let zeros = opposite_size.saturating_sub(d);
        let sampler = GapSampler::prepare(p, opposite_size, scratch);

        // 1 → 0 flips first (same draw order as the list path): stage the
        // drop positions, then materialize the kept true bits — word-wise
        // from the cached bitmap when one is available — and clear the
        // dropped ones.
        let events = scratch.events_mut();
        sampler.sample_events(d, rng, events);
        let mut words = match true_packed {
            Some(packed) => packed.as_words().to_vec(),
            None => {
                let mut words = vec![0u64; opposite_size.div_ceil(64)];
                for &v in true_neighbors {
                    set_bit(&mut words, v as usize);
                }
                words
            }
        };
        for &drop in events.iter() {
            clear_bit(&mut words, true_neighbors[drop as usize] as usize);
        }

        // 0 → 1 flips: translate each sampled zero-rank to its vertex id and
        // set the bit directly — flipped slots are non-neighbors, so they
        // are disjoint from the kept bits by construction.
        //
        // The translation `id = rank + |{neighbors ≤ id}|` is a merge of two
        // sorted sequences (candidate ids and true neighbors). Written as a
        // per-rank catch-up loop it mispredicts on nearly every rank and its
        // ~10-cycle step chain is fully serial; here it runs as a masked
        // two-pointer merge split into [`TRANSLATE_LANES`] independent
        // segments walked in lockstep. The neighbor pointer at any point of
        // the merge is a pure function of the current rank (the partition
        // point of the shifted thresholds `neighbor[t] − t`, which ascend),
        // so each segment's start state comes from a binary search and the
        // segments reproduce the global merge exactly — same ids, same bits.
        events.clear();
        sampler.sample_events(zeros, rng, events);
        translate_ranks_to_bits(events, true_neighbors, &mut words);

        PackedSet::from_words(words, opposite_size)
    }

    /// The straight-line scalar skip sampler — the PR-3 hot path, retained
    /// verbatim (formula-only, no tables, no batching) as the ground truth
    /// the batched draw pipeline is property-tested against: identical
    /// output list *and* identical RNG stream consumption.
    pub fn perturb_neighbor_list_scalar_reference<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        debug_assert!(true_neighbors.windows(2).all(|w| w[0] < w[1]));
        let p = self.flip_probability;
        if p <= 0.0 {
            return true_neighbors.to_vec();
        }
        let d = true_neighbors.len();
        let zeros = opposite_size.saturating_sub(d);
        let denom = gap_denominator(p);
        let draw = |rng: &mut R| -> usize {
            let u: f64 = rng.gen::<f64>();
            if u <= 0.0 {
                return usize::MAX;
            }
            gap_formula(u, denom)
        };

        let mut kept = Vec::with_capacity(d);
        let mut flipped = Vec::new();
        {
            let mut drops = Vec::new();
            let mut pos = draw(rng);
            while pos < d {
                drops.push(pos);
                pos = pos.saturating_add(1).saturating_add(draw(rng));
            }
            let mut prev = 0usize;
            for &drop in &drops {
                kept.extend_from_slice(&true_neighbors[prev..drop]);
                prev = drop + 1;
            }
            kept.extend_from_slice(&true_neighbors[prev..]);
        }
        {
            let mut rank = draw(rng);
            while rank < zeros {
                flipped.push(rank as VertexId);
                rank = rank.saturating_add(1).saturating_add(draw(rng));
            }
            let mut ti = 0usize;
            for slot in flipped.iter_mut() {
                let mut id = *slot as usize + ti;
                while ti < d && (true_neighbors[ti] as usize) <= id {
                    ti += 1;
                    id += 1;
                }
                *slot = id as VertexId;
            }
        }
        let mut out = Vec::new();
        merge_sorted_disjoint_into(&kept, &flipped, &mut out);
        out
    }

    /// The reference per-bit implementation of [`Self::perturb_neighbor_list`]:
    /// one Bernoulli draw per candidate slot, `O(opposite_size)` work.
    ///
    /// Kept as the ground truth the skip sampler is property-tested against,
    /// and as the faithful simulation of a client that materialises its full
    /// `n`-bit row.
    pub fn perturb_neighbor_list_dense<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        debug_assert!(true_neighbors.windows(2).all(|w| w[0] < w[1]));
        let mut noisy = Vec::new();
        let mut next_true = 0usize;
        for candidate in 0..opposite_size as VertexId {
            let is_edge =
                if next_true < true_neighbors.len() && true_neighbors[next_true] == candidate {
                    next_true += 1;
                    true
                } else {
                    false
                };
            if self.perturb_bit(is_edge, rng) {
                noisy.push(candidate);
            }
        }
        noisy
    }

    /// Expected number of noisy edges for a vertex of degree `degree` whose
    /// opposite layer has `opposite_size` vertices:
    /// `d·(1−p) + (n−d)·p`.
    #[must_use]
    pub fn expected_noisy_edges(&self, degree: usize, opposite_size: usize) -> f64 {
        let p = self.flip_probability;
        degree as f64 * (1.0 - p) + (opposite_size.saturating_sub(degree)) as f64 * p
    }

    /// The unbiased edge estimator `φ(i,j) = (A'[i,j] − p)/(1 − 2p)` given the
    /// observed noisy bit.
    #[must_use]
    pub fn unbiased_edge_estimate(&self, noisy_bit: bool) -> f64 {
        let p = self.flip_probability;
        let a = if noisy_bit { 1.0 } else { 0.0 };
        (a - p) / (1.0 - 2.0 * p)
    }

    /// Variance of the unbiased edge estimator: `p(1−p)/(1−2p)²`
    /// (Equation 1 in the paper). Independent of the true bit.
    #[must_use]
    pub fn edge_estimate_variance(&self) -> f64 {
        let p = self.flip_probability;
        p * (1.0 - p) / ((1.0 - 2.0 * p) * (1.0 - 2.0 * p))
    }
}

/// The gap distribution's log-denominator `ln(1 − p)`.
///
/// Via `ln_1p`: for tiny p (large ε), `1.0 - p` would round to exactly 1.0
/// and the naive log would be 0, collapsing every gap to 0 (i.e. flipping
/// *every* bit — the exact opposite of the distribution). `ln_1p` keeps
/// full precision down to the smallest subnormal p. Hoisted out of the
/// per-draw path because it depends only on `p`.
fn gap_denominator(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    (-p).ln_1p()
}

/// The reference gap evaluation — the number of Bernoulli(`p`) failures
/// before the next success, `⌊ln u / denom⌋` for one uniform sample
/// `u > 0` and `denom =` [`gap_denominator`]`(p)` — saturating at
/// `usize::MAX` where the float math overflows.
#[inline]
fn gap_formula(u: f64, denom: f64) -> usize {
    let gap = (u.ln() / denom).floor();
    if gap >= usize::MAX as f64 {
        usize::MAX
    } else {
        gap as usize
    }
}

/// Number of small gaps [`GapTable`] resolves by branchless threshold
/// comparison (the first tier of the resolution pipeline).
const GAP_TABLE_SIZE: usize = 32;

/// Number of additional gaps (`32..288`) the extension table resolves by
/// bounded binary search. Together the two tiers cover every draw except a
/// `(1−p)^288` tail — even at ε = 4 (`p ≈ 0.018`) that leaves ~0.5% of
/// draws on the `ln` fallback.
const GAP_EXT_SIZE: usize = 256;

/// Exact threshold table for the common small geometric gaps.
///
/// `thresholds[k]` is the smallest sample on the uniform grid the RNG can
/// produce (`u = m · 2⁻⁵³`) whose gap is `≤ k`, located with
/// [`gap_formula`] itself as the oracle (the gap is a non-increasing step
/// function of `u`). A draw then resolves to the first `k` with
/// `u ≥ thresholds[k]` — by construction *exactly* the value the reference
/// formula would compute — and only gaps `≥ GAP_TABLE_SIZE` fall through to
/// the extension table. This trades one `ln` per draw for comparisons,
/// which is what makes long perturbations cheap at the dense-noise budgets
/// where skip sampling draws tens of thousands of gaps per list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GapTable {
    thresholds: [f64; GAP_TABLE_SIZE],
}

impl GapTable {
    /// Grid scale of the RNG's `f64` samples: `u = m · 2⁻⁵³`.
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;

    fn new(denom: f64) -> Self {
        let mut thresholds = [0.0f64; GAP_TABLE_SIZE];
        for (k, slot) in thresholds.iter_mut().enumerate() {
            *slot = threshold_for(k, denom);
        }
        Self { thresholds }
    }

    /// Resolves one sample against the 32 small-gap thresholds, falling
    /// back to the formula for larger gaps (unit-test surface; the
    /// pipeline's [`GapTables::resolve`] adds the extension tier).
    ///
    /// Branchless: `u < thresholds[k] ⟺ gap(u) > k` (the thresholds
    /// decrease with `k`), so counting the thresholds above `u` yields
    /// `min(gap, GAP_TABLE_SIZE)` in 32 autovectorizable comparisons with
    /// no data-dependent branches — an early-exit scan mispredicts once
    /// per draw on the geometric tail and measures ~3× slower.
    #[cfg(test)]
    fn gap(&self, u: f64, denom: f64) -> usize {
        let mut count = 0usize;
        for &threshold in &self.thresholds {
            count += usize::from(u < threshold);
        }
        if count == GAP_TABLE_SIZE {
            gap_formula(u, denom)
        } else {
            count
        }
    }
}

/// The smallest grid point `m · 2⁻⁵³` (as an `f64`) whose gap is `≤ k`,
/// found exactly with [`gap_formula`] as the oracle.
///
/// The binary search is seeded from the real-math boundary
/// `e^{(k+1)·denom}`: floating-point rounding in `ln`/`exp`/the division
/// shifts the effective step boundary by at most a few grid points, so a
/// small window around the seed almost always brackets it; when
/// verification fails the search falls back to the full grid. Either way
/// the result is decided by the oracle, never by the seed — thresholds are
/// exact by construction.
fn threshold_for(k: usize, denom: f64) -> f64 {
    const GRID_MAX: u64 = 1u64 << 53;
    const WINDOW: u64 = 64;
    let oracle = |m: u64| gap_formula(m as f64 * GapTable::SCALE, denom);
    // Seed window from e^{(k+1)·denom} (underflows to 0 for huge k — the
    // clamp to grid point 1 then covers the "every grid point qualifies or
    // none do" extremes).
    let est = ((k as f64 + 1.0) * denom).exp();
    let m_est = ((est / GapTable::SCALE) as u64).clamp(1, GRID_MAX);
    let mut lo = m_est.saturating_sub(WINDOW).max(1);
    let mut hi = m_est.saturating_add(WINDOW).min(GRID_MAX);
    // Bracket: need gap(hi) ≤ k and gap(lo − 1) > k (or lo == 1). The
    // upper bound GRID_MAX is always valid: gap(1.0) = ⌊0/denom⌋ = 0 ≤ k.
    if oracle(hi) > k {
        lo = hi;
        hi = GRID_MAX;
    } else if lo > 1 && oracle(lo) <= k {
        hi = lo;
        lo = 1;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if oracle(mid) <= k {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi as f64 * GapTable::SCALE
}

/// Total gaps the threshold tables resolve without a `ln`.
const GAP_TOTAL: usize = GAP_TABLE_SIZE + GAP_EXT_SIZE;

/// Bits of the 53-bit mantissa indexing the direct-lookup tier.
const LUT_BITS: u32 = 13;
/// Buckets in the direct-lookup tier (16 KiB of `u16` — cache resident;
/// doubling past 13 bits no longer moves the ambiguous-bucket fraction
/// enough to pay for the extra footprint).
const LUT_SIZE: usize = 1 << LUT_BITS;
/// Shift from a 53-bit mantissa to its bucket index.
const LUT_SHIFT: u32 = 53 - LUT_BITS;
/// Bucket contains a threshold: resolve by exact partition-point search.
const LUT_AMBIG: u16 = u16::MAX;
/// Whole bucket lies below every threshold (gap ≥ [`GAP_TOTAL`]): `ln` tail.
const LUT_TAIL: u16 = u16::MAX - 1;

/// The exact gap-resolution tables for one denominator.
///
/// Resolution is **lookup-first**: the gap is a non-increasing step
/// function of the 53-bit sample mantissa, so bucketing the mantissa's top
/// [`LUT_BITS`] bits yields a table where almost every bucket (all but the
/// ≤ [`GAP_TOTAL`] + 1 buckets a step boundary lands in) maps straight to
/// its gap — one shift and one load per draw. Ambiguous buckets fall back
/// to a partition-point search over the full descending threshold array,
/// and only samples below the last threshold (`(1−p)^288` of draws) pay
/// the `ln` formula. Every path is exact: thresholds sit on the formula's
/// step boundaries by construction.
#[derive(Debug, Clone)]
pub(crate) struct GapTables {
    /// Every threshold, descending — the 32 [`GapTable`] entries followed
    /// by the [`GAP_EXT_SIZE`] extension — for the ambiguous-bucket search.
    all: Box<[f64; GAP_TOTAL]>,
    /// Mantissa-prefix bucket → gap, [`LUT_AMBIG`], or [`LUT_TAIL`].
    lut: Box<[u16; LUT_SIZE]>,
}

impl GapTables {
    fn new(denom: f64) -> Self {
        let small = GapTable::new(denom);
        let mut all = Box::new([0.0f64; GAP_TOTAL]);
        all[..GAP_TABLE_SIZE].copy_from_slice(&small.thresholds);
        for (i, slot) in all[GAP_TABLE_SIZE..].iter_mut().enumerate() {
            *slot = threshold_for(GAP_TABLE_SIZE + i, denom);
        }

        // Direct-lookup tier. A bucket holding a threshold is marked
        // ambiguous (over-marking is safe — the search is exact); every
        // other bucket's gap is constant and equals the threshold count
        // above its highest sample.
        let mut lut = Box::new([0u16; LUT_SIZE]);
        let mut ambiguous = [false; LUT_SIZE];
        for &t in all.iter() {
            // Thresholds are grid points, so `t / SCALE` is an exact
            // integer round-trip.
            let m = (t / GapTable::SCALE) as u64;
            let bucket = ((m >> LUT_SHIFT) as usize).min(LUT_SIZE - 1);
            ambiguous[bucket] = true;
        }
        let mut above = 0usize; // thresholds > the current bucket's u_high
        for b in (0..LUT_SIZE).rev() {
            let m_high = (((b as u64) + 1) << LUT_SHIFT) - 1;
            let u_high = m_high as f64 * GapTable::SCALE;
            while above < GAP_TOTAL && all[above] > u_high {
                above += 1;
            }
            lut[b] = if ambiguous[b] {
                LUT_AMBIG
            } else if above >= GAP_TOTAL {
                // gap(u_high) ≥ GAP_TOTAL and gap only grows toward the
                // bucket's low end: the whole bucket is `ln` territory.
                LUT_TAIL
            } else {
                above as u16
            };
        }
        Self { all, lut }
    }

    /// Resolves one positive sample mantissa (`u = m · 2⁻⁵³`) to its exact
    /// gap.
    #[inline]
    fn resolve_m(&self, m: u64, denom: f64) -> usize {
        debug_assert!(m > 0);
        let code = self.lut[(m >> LUT_SHIFT) as usize];
        if (code as usize) < GAP_TOTAL {
            return code as usize;
        }
        let u = m as f64 * GapTable::SCALE;
        if code == LUT_TAIL {
            return gap_formula(u, denom);
        }
        // Ambiguous bucket: count the thresholds above `u` (they descend,
        // so it is a prefix — partition-point search, exact).
        let (mut lo, mut hi) = (0usize, GAP_TOTAL);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if u < self.all[mid] {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo >= GAP_TOTAL {
            gap_formula(u, denom)
        } else {
            lo
        }
    }

    /// [`GapTables::resolve_m`] from the f64 sample (test surface; the
    /// division by the power-of-two grid scale is an exact round-trip).
    #[cfg(test)]
    fn resolve(&self, u: f64, denom: f64) -> usize {
        self.resolve_m((u / GapTable::SCALE) as u64, denom)
    }
}

thread_local! {
    /// Per-thread [`PerturbScratch`] backing the scratchless entry points
    /// ([`RandomizedResponse::perturb_neighbor_list`]): buffers and the
    /// gap-table cache stay warm across calls on the same thread.
    static THREAD_SCRATCH: RefCell<PerturbScratch> = RefCell::new(PerturbScratch::new());

    /// Thread-wide one-entry table cache keyed by the denominator bits.
    /// Tables cost ~300 seeded threshold searches to build; rounds perturb
    /// many lists at the same ε (and engines many rounds), so the cache
    /// hands the same `Arc` to every scratch that asks.
    static GAP_TABLES_CACHE: RefCell<Option<(u64, Arc<GapTables>)>> = const { RefCell::new(None) };
}

/// Reusable working state for the perturbation pipeline: staging buffers
/// for skip-sampled event positions and kept survivors, plus a one-entry
/// cache of the exact gap-resolution tables keyed by the denominator bits.
///
/// One lives per `cne` scratch arena (so engine runs and per-worker shards
/// keep tables and buffers warm without touching thread-local state) and
/// one per thread for the scratchless entry points. Holds only capacity
/// and derived constants — never protocol state — so reuse cannot change
/// any output.
#[derive(Debug, Default)]
pub struct PerturbScratch {
    /// Skip-sampled event positions (drop indices, then flip ranks/ids).
    events: Vec<VertexId>,
    /// Kept survivors of the 1 → 0 pass (list-producing path only).
    kept: Vec<VertexId>,
    /// Cached gap tables for the last denominator used.
    tables: Option<(u64, Arc<GapTables>)>,
}

impl PerturbScratch {
    /// Creates an empty scratch; buffers grow and tables build on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn events_mut(&mut self) -> &mut Vec<VertexId> {
        self.events.clear();
        &mut self.events
    }

    fn events_and_kept(&mut self) -> (&mut Vec<VertexId>, &mut Vec<VertexId>) {
        self.events.clear();
        (&mut self.events, &mut self.kept)
    }

    /// The gap tables for `denom`, from this scratch's cache, the
    /// thread-wide cache, or a fresh (seeded, exact) construction.
    fn tables_for(&mut self, denom: f64) -> Arc<GapTables> {
        let key = denom.to_bits();
        if let Some((bits, tables)) = &self.tables {
            if *bits == key {
                return Arc::clone(tables);
            }
        }
        let tables = GAP_TABLES_CACHE.with(|cell| {
            let mut cache = cell.borrow_mut();
            match &*cache {
                Some((bits, tables)) if *bits == key => Arc::clone(tables),
                _ => {
                    let tables = Arc::new(GapTables::new(denom));
                    *cache = Some((key, Arc::clone(&tables)));
                    tables
                }
            }
        });
        self.tables = Some((key, Arc::clone(&tables)));
        tables
    }
}

/// Uniform draws per batched fill. 64 keeps the whole block (raw mantissas
/// plus resolved gaps) in L1 while amortizing the per-draw RNG and
/// dispatch overhead across a full cache line of events.
const DRAW_BLOCK: usize = 64;

/// Expected draws above which building (or fetching) the exact gap tables
/// pays for itself. Below it the pipeline resolves every gap with the
/// formula — bit-identical, just without the table fast path.
const TABLE_MIN_EXPECTED_DRAWS: f64 = 1024.0;

/// Flip probabilities below this produce gaps so large that even the
/// extension table misses most draws; skip table construction entirely.
const TABLE_MIN_P: f64 = 1e-3;

/// One phase's skip-sampling state: the resolution tables (if built) plus
/// the constants the exact-consumption block sizing needs.
struct GapSampler {
    denom: f64,
    tables: Option<Arc<GapTables>>,
    /// `1 + ` the largest finite gap any positive grid sample can produce
    /// (`gap(2⁻⁵³)`): no draw can advance the skip position by more, so a
    /// block of `1 + remaining/max_advance` draws is certainly consumed.
    max_advance: usize,
}

impl GapSampler {
    /// Hoists the per-list constants and (when the workload warrants)
    /// the exact resolution tables out of the draw loop.
    fn prepare(p: f64, opposite_size: usize, scratch: &mut PerturbScratch) -> Self {
        let denom = gap_denominator(p);
        let expected_draws = p * opposite_size as f64;
        let cached = matches!(&scratch.tables, Some((bits, _)) if *bits == denom.to_bits());
        let tables = if cached || (expected_draws >= TABLE_MIN_EXPECTED_DRAWS && p >= TABLE_MIN_P) {
            Some(scratch.tables_for(denom))
        } else {
            None
        };
        let max_advance = gap_formula(GapTable::SCALE, denom).saturating_add(1);
        Self {
            denom,
            tables,
            max_advance,
        }
    }

    /// Skip-samples event positions in `0..bound`, pushing each into `out`
    /// — the batched form of the scalar loop
    ///
    /// ```text
    /// pos = draw_gap(); while pos < bound { emit(pos); pos += 1 + draw_gap(); }
    /// ```
    ///
    /// consuming the RNG **exactly** as that loop would, draw for draw:
    ///
    /// * a block of `min(64, 1 + remaining/max_advance)` raw draws is
    ///   pulled first — since no finite gap advances the position by more
    ///   than `max_advance`, the scalar loop would certainly have consumed
    ///   every one of them;
    /// * the one event that can end the phase early — a zero mantissa,
    ///   whose gap saturates to `usize::MAX` — truncates the fill at the
    ///   draw the scalar sampler would also have stopped at;
    /// * gaps then resolve in a tight pass (branchless table count, bounded
    ///   binary search, `ln` tail — all exact), and the position walk emits
    ///   the events. Only the final draw of a block can overshoot `bound`,
    ///   which is precisely the scalar loop's termination draw.
    fn sample_events<R: Rng + ?Sized>(&self, bound: usize, rng: &mut R, out: &mut Vec<VertexId>) {
        let mut raw = [0u64; DRAW_BLOCK];
        let mut gaps = [0usize; DRAW_BLOCK];
        // `base`: the offset the next gap is added to (0 before the first
        // draw, `pos + 1` after an event at `pos`).
        let mut base = 0usize;
        loop {
            // How many draws the scalar sampler is guaranteed to consume
            // from this state (≥ 1: it always draws once more).
            let remaining = bound.saturating_sub(base);
            let guaranteed = 1 + remaining / self.max_advance;
            let k = guaranteed.min(DRAW_BLOCK);
            // Fill: raw 53-bit mantissas (the exact grid `gen::<f64>()`
            // samples from). A zero mantissa is u = 0.0 — its gap is
            // `usize::MAX`, ending the phase — so it truncates the block.
            let mut n = 0usize;
            while n < k {
                let m = rng.next_u64() >> 11;
                raw[n] = m;
                n += 1;
                if m == 0 {
                    break;
                }
            }
            // Resolve the block's gaps in a tight pass.
            match &self.tables {
                Some(tables) => {
                    for i in 0..n {
                        let m = raw[i];
                        gaps[i] = if m == 0 {
                            usize::MAX
                        } else {
                            tables.resolve_m(m, self.denom)
                        };
                    }
                }
                None => {
                    for i in 0..n {
                        let m = raw[i];
                        gaps[i] = if m == 0 {
                            usize::MAX
                        } else {
                            gap_formula(m as f64 * GapTable::SCALE, self.denom)
                        };
                    }
                }
            }
            // Walk: emit events; only the final draw of the block can
            // cross `bound` (that is the scalar loop's exit draw).
            for (i, &gap) in gaps[..n].iter().enumerate() {
                let pos = base.saturating_add(gap);
                if pos >= bound {
                    debug_assert_eq!(i, n - 1, "only the last guaranteed draw may overshoot");
                    return;
                }
                out.push(pos as VertexId);
                base = pos + 1;
            }
        }
    }
}

/// Independent merge segments of [`translate_ranks_to_bits`]: four serial
/// ~10-cycle pointer chains in flight cover the chain latency; more lanes
/// stop paying once the core's load ports saturate.
const TRANSLATE_LANES: usize = 4;

/// Translates sorted non-neighbor ranks to vertex ids and sets their bits:
/// for each rank `r` in `ranks`, the bit `r + |{t ∈ true_neighbors : t ≤ id}|`
/// (the id of the `r`-th zero slot) is set in `words`.
///
/// Output-identical to the obvious per-rank catch-up loop
///
/// ```text
/// for r { id = r + ti; while neighbors[ti] <= id { ti += 1; id += 1 } set(id) }
/// ```
///
/// but restructured for the pipeline: the merge is cut into
/// [`TRANSLATE_LANES`] rank segments whose start states come from a binary
/// search (the neighbor pointer at rank `r` is the partition point of the
/// ascending thresholds `neighbors[t] − t > r`, independent of merge
/// history), and the segments advance in lockstep with masked bit writes —
/// four independent dependency chains instead of one, and no
/// data-dependent branch in the hot loop.
fn translate_ranks_to_bits(ranks: &[VertexId], true_neighbors: &[VertexId], words: &mut [u64]) {
    let d = true_neighbors.len();
    let n = ranks.len();
    if d == 0 {
        for &r in ranks {
            set_bit(words, r as usize);
        }
        return;
    }
    // First neighbor pointer whose shifted threshold exceeds `rank`.
    let start_ti = |rank: usize| -> usize {
        let (mut lo, mut hi) = (0usize, d);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if true_neighbors[mid] as usize - mid <= rank {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };
    let mut ei = [0usize; TRANSLATE_LANES];
    let mut end = [0usize; TRANSLATE_LANES];
    let mut ti = [d; TRANSLATE_LANES];
    for lane in 0..TRANSLATE_LANES {
        ei[lane] = n * lane / TRANSLATE_LANES;
        end[lane] = n * (lane + 1) / TRANSLATE_LANES;
        if ei[lane] < end[lane] {
            ti[lane] = start_ti(ranks[ei[lane]] as usize);
        }
    }
    // One masked merge step: emit the rank's bit if no neighbor precedes
    // its id, else advance past that neighbor (which shifts this and every
    // later rank of the lane up by one).
    macro_rules! step {
        ($lane:expr) => {
            let id = ranks[ei[$lane]] as usize + ti[$lane];
            let is_event = id < true_neighbors[ti[$lane]] as usize;
            let mask = (is_event as u64).wrapping_neg();
            words[id / 64] |= (1u64 << (id % 64)) & mask;
            ei[$lane] += usize::from(is_event);
            ti[$lane] += usize::from(!is_event);
        };
    }
    // Lockstep while every lane still merges; finish each lane serially
    // (the lanes are balanced by rank count, so the tails are short).
    while (0..TRANSLATE_LANES).all(|l| ei[l] < end[l] && ti[l] < d) {
        step!(0);
        step!(1);
        step!(2);
        step!(3);
    }
    for lane in 0..TRANSLATE_LANES {
        while ei[lane] < end[lane] && ti[lane] < d {
            step!(lane);
        }
        // Ranks past the last neighbor shift by the full degree.
        for &r in &ranks[ei[lane]..end[lane]] {
            set_bit(words, r as usize + d);
        }
    }
}

/// Merges two sorted, mutually disjoint id lists into `out` (cleared on
/// entry) — the allocation-free form the legacy list-producing callers
/// stage through their scratch arenas.
pub fn merge_sorted_disjoint_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    out.reserve(a.len() + b.len());
    if a.is_empty() {
        out.extend_from_slice(b);
        return;
    }
    if b.is_empty() {
        out.extend_from_slice(a);
        return;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

impl Mechanism<bool> for RandomizedResponse {
    type Output = bool;

    fn apply<R: Rng + ?Sized>(&self, input: bool, rng: &mut R) -> bool {
        self.perturb_bit(input, rng)
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn rr(eps: f64) -> RandomizedResponse {
        RandomizedResponse::new(PrivacyBudget::new(eps).unwrap())
    }

    #[test]
    fn flip_probability_formula() {
        for eps in [0.5, 1.0, 2.0, 3.0] {
            let r = rr(eps);
            let expected = 1.0 / (1.0 + eps.exp());
            assert!((r.flip_probability() - expected).abs() < 1e-15);
            assert!((r.keep_probability() - (1.0 - expected)).abs() < 1e-15);
            assert!(r.flip_probability() > 0.0 && r.flip_probability() < 0.5);
            assert_eq!(r.epsilon(), eps);
        }
    }

    #[test]
    fn higher_budget_flips_less() {
        assert!(rr(3.0).flip_probability() < rr(1.0).flip_probability());
    }

    #[test]
    fn empirical_flip_rate_matches_p() {
        let r = rr(1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200_000;
        let flipped = (0..trials)
            .filter(|_| r.perturb_bit(false, &mut rng))
            .count();
        let rate = flipped as f64 / trials as f64;
        assert!(
            (rate - r.flip_probability()).abs() < 0.005,
            "rate {rate} vs p {}",
            r.flip_probability()
        );

        let kept = (0..trials)
            .filter(|_| r.perturb_bit(true, &mut rng))
            .count();
        let keep_rate = kept as f64 / trials as f64;
        assert!((keep_rate - r.keep_probability()).abs() < 0.005);
    }

    #[test]
    fn gap_tables_match_formula_exactly() {
        let mut rng = StdRng::seed_from_u64(99);
        for eps in [0.5f64, 1.0, 2.0, 3.0, 4.0] {
            let p = 1.0 / (1.0 + eps.exp());
            let denom = gap_denominator(p);
            let tables = GapTables::new(denom);
            let small = GapTable::new(denom);
            // Both the full tables and the 32-entry small tier must agree
            // with the reference formula on every sample, including the
            // small-u fallback region.
            for _ in 0..200_000 {
                let u: f64 = rng.gen();
                if u <= 0.0 {
                    continue;
                }
                assert_eq!(
                    tables.resolve(u, denom),
                    gap_formula(u, denom),
                    "tables and formula disagree at u={u} eps={eps}"
                );
                assert_eq!(
                    small.gap(u, denom),
                    gap_formula(u, denom),
                    "small tier disagrees at u={u} eps={eps}"
                );
            }
            // Deliberately tiny samples exercise the ln tail beyond both
            // tiers (gap ≥ 288 needs u ≤ (1−p)^288: guaranteed at these ε).
            for m in [1u64, 2, 3, 1000, 1 << 20] {
                let u = m as f64 * GapTable::SCALE;
                assert_eq!(tables.resolve(u, denom), gap_formula(u, denom));
            }
            // Every threshold — the 32 small-tier entries followed by the
            // 256 extension entries — sits exactly on a step boundary of
            // the grid the RNG samples from: entry k maps to ≤ k, its grid
            // predecessor to > k. The combined array must also start with
            // the small tier verbatim.
            for (k, &t) in small.thresholds.iter().enumerate() {
                assert_eq!(t.to_bits(), tables.all[k].to_bits(), "tier mismatch at {k}");
            }
            for (k, &t) in tables.all.iter().enumerate() {
                let m = (t / GapTable::SCALE).round() as u64;
                assert!(gap_formula(m as f64 * GapTable::SCALE, denom) <= k);
                if m > 1 {
                    assert!(
                        gap_formula((m - 1) as f64 * GapTable::SCALE, denom) > k,
                        "threshold {k} not tight at eps {eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_threshold_construction_matches_full_binary_search() {
        // The exp-seeded window search must agree with an oracle-only full
        // binary search over the whole grid, for representative ε and ks
        // across both tiers.
        for eps in [0.5f64, 1.0, 4.0, 6.0] {
            let p = 1.0 / (1.0 + eps.exp());
            let denom = gap_denominator(p);
            for k in [0usize, 1, 15, 31, 32, 100, 255, 287] {
                let mut lo = 1u64;
                let mut hi = 1u64 << 53;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if gap_formula(mid as f64 * GapTable::SCALE, denom) <= k {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                let reference = hi as f64 * GapTable::SCALE;
                assert_eq!(
                    threshold_for(k, denom).to_bits(),
                    reference.to_bits(),
                    "k={k} eps={eps}"
                );
            }
        }
    }

    /// The batched pipeline must equal the retained scalar reference in
    /// both output and RNG stream consumption, across table and no-table
    /// regimes and the zero-size edge cases.
    #[test]
    fn batched_pipeline_matches_scalar_reference_exactly() {
        let mut scratch = PerturbScratch::new();
        for eps in [0.3f64, 1.0, 2.0, 4.0, 7.0, 25.0] {
            let r = rr(eps);
            for (d, n) in [
                (0usize, 0usize),
                (0, 100),
                (10, 10),
                (10, 5_000),
                (40, 50_000),
            ] {
                let truth: Vec<VertexId> = (0..d as u32)
                    .map(|i| i * (n as u32 / d.max(1) as u32).max(1))
                    .collect();
                let truth: Vec<VertexId> =
                    truth.into_iter().filter(|&v| (v as usize) < n).collect();
                for seed in 0..5u64 {
                    let mut rng_a = StdRng::seed_from_u64(seed);
                    let mut rng_b = StdRng::seed_from_u64(seed);
                    let batched = r.perturb_neighbor_list_with(&truth, n, &mut rng_a, &mut scratch);
                    let scalar = r.perturb_neighbor_list_scalar_reference(&truth, n, &mut rng_b);
                    assert_eq!(
                        batched,
                        scalar,
                        "eps {eps} d {} n {n} seed {seed}",
                        truth.len()
                    );
                    // Post-state equality proves draw-for-draw consumption.
                    assert_eq!(
                        rng_a.next_u64(),
                        rng_b.next_u64(),
                        "stream positions diverged: eps {eps} d {} n {n} seed {seed}",
                        truth.len()
                    );
                }
            }
        }
    }

    /// Packed-native output contains exactly the bits of the list output,
    /// with identical RNG consumption — with and without a pre-packed true
    /// bitmap.
    #[test]
    fn packed_output_matches_list_output() {
        let mut scratch = PerturbScratch::new();
        for eps in [0.5f64, 1.0, 4.0, 25.0] {
            let r = rr(eps);
            for (d, n) in [(0usize, 64usize), (5, 200), (25, 4_096), (10, 50_000)] {
                let truth: Vec<VertexId> = (0..d as u32)
                    .map(|i| i * (n as u32 / d.max(1) as u32))
                    .collect();
                let packed_truth = PackedSet::from_sorted(&truth, n);
                for seed in [3u64, 17, 99] {
                    let mut rng_list = StdRng::seed_from_u64(seed);
                    let mut rng_packed = StdRng::seed_from_u64(seed);
                    let mut rng_cached = StdRng::seed_from_u64(seed);
                    let list = r.perturb_neighbor_list(&truth, n, &mut rng_list);
                    let packed = r.perturb_neighbor_list_packed(
                        &truth,
                        None,
                        n,
                        &mut rng_packed,
                        &mut scratch,
                    );
                    let cached = r.perturb_neighbor_list_packed(
                        &truth,
                        Some(&packed_truth),
                        n,
                        &mut rng_cached,
                        &mut scratch,
                    );
                    assert_eq!(packed.to_sorted_ids(), list, "eps {eps} d {d} n {n}");
                    assert_eq!(
                        packed, cached,
                        "cached-bitmap path differs: eps {eps} d {d} n {n}"
                    );
                    assert_eq!(packed.len(), list.len());
                    assert_eq!(rng_list.next_u64(), rng_packed.next_u64());
                    assert_eq!(rng_list.next_u64(), {
                        let _ = rng_cached.next_u64();
                        rng_cached.next_u64()
                    });
                }
            }
        }
    }

    /// The segmented lane merge emits exactly the ids of the naive per-rank
    /// catch-up loop on lane-hostile shapes: empty inputs, fewer ranks than
    /// lanes, every rank past the last neighbor, and dense neighbor runs
    /// that force long catch-ups right at lane boundaries.
    #[test]
    fn translate_ranks_matches_catchup_reference() {
        let naive = |ranks: &[VertexId], nbrs: &[VertexId], words: &mut [u64]| {
            let mut ti = 0usize;
            for &slot in ranks {
                let mut id = slot as usize + ti;
                while ti < nbrs.len() && (nbrs[ti] as usize) <= id {
                    ti += 1;
                    id += 1;
                }
                set_bit(words, id);
            }
        };
        let universe = 512usize;
        let cases: Vec<(Vec<VertexId>, Vec<VertexId>)> = vec![
            (vec![], vec![]),
            (vec![0, 3], vec![]),
            (vec![], vec![1, 2, 3]),
            (vec![5], vec![0, 1, 2, 3, 4, 5, 6, 7]),
            (vec![0, 1, 2], vec![0, 1, 2]),
            ((0..40).collect(), vec![0, 1, 2, 3, 100, 101, 102, 103]),
            ((100..140).collect(), (0..90).collect()),
            (
                (0..200).step_by(3).map(|r| r as VertexId).collect(),
                (0..300).step_by(7).map(|v| v as VertexId).collect(),
            ),
        ];
        for (ranks, nbrs) in cases {
            let words_len = universe.div_ceil(64);
            let mut expect = vec![0u64; words_len];
            naive(&ranks, &nbrs, &mut expect);
            let mut got = vec![0u64; words_len];
            translate_ranks_to_bits(&ranks, &nbrs, &mut got);
            assert_eq!(got, expect, "ranks {ranks:?} nbrs {nbrs:?}");
        }
    }

    #[test]
    fn perturb_into_reuses_buffer_and_matches() {
        let r = rr(1.0);
        let mut scratch = PerturbScratch::new();
        let truth: Vec<VertexId> = vec![2, 5, 9];
        let mut out = Vec::new();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        r.perturb_neighbor_list_into(&truth, 50, &mut rng_a, &mut scratch, &mut out);
        let fresh = r.perturb_neighbor_list(&truth, 50, &mut rng_b);
        assert_eq!(out, fresh);
        // Second call fully overwrites the buffer.
        let mut rng_c = StdRng::seed_from_u64(8);
        r.perturb_neighbor_list_into(&truth, 50, &mut rng_c, &mut scratch, &mut out);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn perturb_neighbor_list_is_sorted_and_in_range() {
        let r = rr(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let truth: Vec<VertexId> = vec![2, 5, 9];
        let noisy = r.perturb_neighbor_list(&truth, 50, &mut rng);
        assert!(noisy.windows(2).all(|w| w[0] < w[1]));
        assert!(noisy.iter().all(|&v| (v as usize) < 50));
    }

    #[test]
    fn perturb_neighbor_list_density_matches_expectation() {
        let r = rr(2.0);
        let mut rng = StdRng::seed_from_u64(11);
        let truth: Vec<VertexId> = (0..20).collect();
        let n = 1000usize;
        let runs = 300;
        let total: usize = (0..runs)
            .map(|_| r.perturb_neighbor_list(&truth, n, &mut rng).len())
            .sum();
        let avg = total as f64 / runs as f64;
        let expected = r.expected_noisy_edges(truth.len(), n);
        assert!(
            (avg - expected).abs() < expected * 0.05 + 3.0,
            "avg {avg} vs expected {expected}"
        );
    }

    #[test]
    fn high_epsilon_preserves_list_exactly_in_expectation() {
        // With a huge budget the flip probability is ~0, so the noisy list
        // should equal the true list almost always.
        let r = rr(20.0);
        let mut rng = StdRng::seed_from_u64(3);
        let truth: Vec<VertexId> = vec![1, 4, 8];
        let noisy = r.perturb_neighbor_list(&truth, 100, &mut rng);
        assert_eq!(noisy, truth);
    }

    #[test]
    fn merge_into_handles_all_shapes() {
        let mut out = Vec::new();
        merge_sorted_disjoint_into(&[], &[], &mut out);
        assert!(out.is_empty());
        merge_sorted_disjoint_into(&[1, 3], &[], &mut out);
        assert_eq!(out, vec![1, 3]);
        merge_sorted_disjoint_into(&[], &[2, 4], &mut out);
        assert_eq!(out, vec![2, 4]);
        merge_sorted_disjoint_into(&[1, 5, 9], &[2, 6, 10, 11], &mut out);
        assert_eq!(out, vec![1, 2, 5, 6, 9, 10, 11]);
    }

    #[test]
    fn unbiased_edge_estimate_is_unbiased() {
        let r = rr(1.0);
        let p = r.flip_probability();
        // E[phi | A=1] = (1-p)·phi(1) + p·phi(0) = 1
        let e1 = (1.0 - p) * r.unbiased_edge_estimate(true) + p * r.unbiased_edge_estimate(false);
        assert!((e1 - 1.0).abs() < 1e-12);
        // E[phi | A=0] = p·phi(1) + (1-p)·phi(0) = 0
        let e0 = p * r.unbiased_edge_estimate(true) + (1.0 - p) * r.unbiased_edge_estimate(false);
        assert!(e0.abs() < 1e-12);
    }

    #[test]
    fn edge_estimate_variance_formula() {
        let r = rr(1.5);
        let p = r.flip_probability();
        let expected = p * (1.0 - p) / ((1.0 - 2.0 * p) * (1.0 - 2.0 * p));
        assert!((r.edge_estimate_variance() - expected).abs() < 1e-15);
        // Variance decreases as epsilon grows.
        assert!(rr(3.0).edge_estimate_variance() < rr(1.0).edge_estimate_variance());
    }

    #[test]
    fn expected_noisy_edges_monotone_in_degree() {
        let r = rr(1.0);
        assert!(r.expected_noisy_edges(10, 100) > r.expected_noisy_edges(0, 100));
        // degree larger than opposite size saturates rather than panics
        let e = r.expected_noisy_edges(200, 100);
        assert!(e > 0.0);
    }

    #[test]
    fn mechanism_trait_dispatch() {
        let r = rr(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let out: bool = Mechanism::<bool>::apply(&r, true, &mut rng);
        let _ = out;
        assert_eq!(Mechanism::<bool>::epsilon(&r), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let r = rr(2.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: RandomizedResponse = serde_json::from_str(&json).unwrap();
        // JSON float round-tripping can differ in the last ulp, so compare
        // fields with a tolerance instead of exact equality.
        assert_eq!(back.epsilon(), r.epsilon());
        assert!((back.flip_probability() - r.flip_probability()).abs() < 1e-12);
    }
}

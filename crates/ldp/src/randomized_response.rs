//! Warner's randomized response (RR) over bits and neighbor lists.
//!
//! Each bit `x ∈ {0, 1}` of a neighbor list is flipped independently with
//! probability `p = 1 / (1 + e^ε)` and kept with probability `e^ε / (1 + e^ε)`.
//! Applying RR to a whole neighbor list satisfies ε-edge LDP because two lists
//! differing in one bit produce any given output with probability ratio at
//! most `e^ε`.
//!
//! The module also provides the *unbiased edge estimator*
//! `φ(i,j) = (A'[i,j] − p) / (1 − 2p)` from Section 3.1 of the paper, together
//! with its variance, which the `cne` estimators build on.

use crate::budget::PrivacyBudget;
use crate::mechanism::Mechanism;
use bigraph::VertexId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The randomized-response mechanism for one privacy budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedResponse {
    epsilon: f64,
    flip_probability: f64,
}

impl RandomizedResponse {
    /// Creates a randomized-response mechanism for privacy budget `epsilon`.
    #[must_use]
    pub fn new(epsilon: PrivacyBudget) -> Self {
        let eps = epsilon.value();
        Self {
            epsilon: eps,
            flip_probability: 1.0 / (1.0 + eps.exp()),
        }
    }

    /// The flip probability `p = 1 / (1 + e^ε)`, always in `(0, 0.5)`.
    #[must_use]
    pub fn flip_probability(&self) -> f64 {
        self.flip_probability
    }

    /// The keep probability `e^ε / (1 + e^ε) = 1 − p`.
    #[must_use]
    pub fn keep_probability(&self) -> f64 {
        1.0 - self.flip_probability
    }

    /// The privacy budget this mechanism consumes per neighbor list.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Perturbs one bit: flips it with probability `p`.
    pub fn perturb_bit<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        if rng.gen::<f64>() < self.flip_probability {
            !bit
        } else {
            bit
        }
    }

    /// Applies RR to a full neighbor list of a vertex whose opposite layer has
    /// `opposite_size` vertices, returning the *sorted* list of noisy
    /// neighbors (the "1" entries of the perturbed row).
    ///
    /// `true_neighbors` must be sorted ascending (as produced by
    /// [`bigraph::BipartiteGraph::neighbors`]).
    ///
    /// Implemented by **geometric skip sampling**: instead of drawing one
    /// Bernoulli(`p`) per candidate slot (the dense `O(opposite_size)` scan
    /// kept as [`Self::perturb_neighbor_list_dense`]), the sampler draws the
    /// gaps between successive flips directly from the geometric
    /// distribution. A run of independent Bernoulli(`p`) trials succeeds for
    /// the first time after `⌊ln U / ln(1 − p)⌋` failures (`U` uniform), so
    /// jumping by that gap visits exactly the flipped slots and no others —
    /// the output distribution is *identical* to the per-bit scan, at
    /// expected cost `O(d + p·n)` work and `O(p·n + p·d + 2)` RNG draws for
    /// degree `d` and opposite size `n`. On the sparse graphs the paper
    /// targets (`d ≪ n`) with moderate budgets this is orders of magnitude
    /// faster than the dense scan; the same trick is what makes the
    /// million-user batch engine in `cne::batch` feasible.
    pub fn perturb_neighbor_list<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        let mut kept = Vec::new();
        let mut flipped = Vec::new();
        self.perturb_neighbor_list_with(true_neighbors, opposite_size, rng, &mut kept, &mut flipped)
    }

    /// [`Self::perturb_neighbor_list`] with caller-provided scratch buffers
    /// for the two intermediate sequences (kept survivors and 0 → 1 flips).
    ///
    /// The output — and the RNG stream consumed — is identical to
    /// [`Self::perturb_neighbor_list`]; only the intermediate allocations
    /// are replaced by reuse of `kept` / `flipped` (cleared on entry), so a
    /// caller perturbing many lists (a batch round, the `cne` engines) can
    /// hold the buffers in a scratch arena.
    pub fn perturb_neighbor_list_with<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
        kept: &mut Vec<VertexId>,
        flipped: &mut Vec<VertexId>,
    ) -> Vec<VertexId> {
        debug_assert!(true_neighbors.windows(2).all(|w| w[0] < w[1]));
        let p = self.flip_probability;
        // ε large enough that p underflowed to exactly 0 (ε ≳ 710): no bit
        // can flip, so the noisy list is the true list. Guarding here keeps
        // geometric_gap's `ln(1 − p) = 0` division out of reach.
        if p <= 0.0 {
            return true_neighbors.to_vec();
        }
        let d = true_neighbors.len();
        let zeros = opposite_size.saturating_sub(d);
        // The gap distribution's log-denominator depends only on `p`:
        // computing it once here instead of inside every draw removes one
        // math-library call per flip — a large share of the whole
        // perturbation cost at RR densities (tens of thousands of flips per
        // list). The per-draw arithmetic (`ln(u) / denom`) is unchanged, so
        // every gap — and therefore every noisy list — is bit-identical to
        // the per-draw-recomputed form.
        let denom = gap_denominator(p);
        // For long draw sequences at non-trivial flip rates, resolve the
        // common small gaps by comparing `u` against exact thresholds
        // instead of evaluating `ln` per draw (see [`GapTable`] — the
        // thresholds are derived from the reference formula itself, so the
        // gaps are bit-identical). Small lists skip the table: building it
        // costs a few hundred `ln` evaluations.
        let expected_draws = p * (d + zeros) as f64;
        let table = if p >= 0.05 && expected_draws >= 4096.0 {
            Some(gap_table_for(denom))
        } else {
            None
        };
        let table = table.as_ref();

        // Each sampling loop is split into two passes: a tight draw loop
        // that only advances the skip-sampled positions, and a separate
        // data pass that materializes the lists. Interleaving them (the
        // obvious one-pass form) chains every `ln` behind the previous
        // iteration's list bookkeeping, which measurably stalls the loop;
        // the draw order, the draw count, and the produced lists are
        // identical either way.

        // 1 → 0 flips: skip-sample positions *within the true list* that get
        // dropped; every position not dropped is kept. Gap arithmetic
        // saturates so the `usize::MAX` "no further event" sentinel can never
        // wrap back into range. The drop positions are staged in `flipped`
        // (free at this point) to avoid a third scratch buffer.
        kept.clear();
        kept.reserve(d);
        flipped.clear();
        {
            let mut pos = draw_gap(table, denom, rng);
            while pos < d {
                flipped.push(pos as VertexId);
                pos = pos
                    .saturating_add(1)
                    .saturating_add(draw_gap(table, denom, rng));
            }
            let mut prev = 0usize;
            for &drop in flipped.iter() {
                kept.extend_from_slice(&true_neighbors[prev..drop as usize]);
                prev = drop as usize + 1;
            }
            kept.extend_from_slice(&true_neighbors[prev..]);
        }

        // 0 → 1 flips: skip-sample ranks within the `zeros` non-neighbor
        // slots, then translate each rank to a vertex id by sliding past the
        // true neighbors (both sequences ascend, so one in-place merge pass
        // suffices — ranks only grow under translation, and they are
        // processed in order, so overwriting is safe).
        flipped.clear();
        {
            let mut rank = draw_gap(table, denom, rng);
            while rank < zeros {
                flipped.push(rank as VertexId);
                rank = rank
                    .saturating_add(1)
                    .saturating_add(draw_gap(table, denom, rng));
            }
            let mut ti = 0usize;
            for slot in flipped.iter_mut() {
                let mut id = *slot as usize + ti;
                while ti < d && (true_neighbors[ti] as usize) <= id {
                    ti += 1;
                    id += 1;
                }
                *slot = id as VertexId;
            }
        }

        merge_sorted_disjoint(kept, flipped)
    }

    /// The reference per-bit implementation of [`Self::perturb_neighbor_list`]:
    /// one Bernoulli draw per candidate slot, `O(opposite_size)` work.
    ///
    /// Kept as the ground truth the skip sampler is property-tested against,
    /// and as the faithful simulation of a client that materialises its full
    /// `n`-bit row.
    pub fn perturb_neighbor_list_dense<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        debug_assert!(true_neighbors.windows(2).all(|w| w[0] < w[1]));
        let mut noisy = Vec::new();
        let mut next_true = 0usize;
        for candidate in 0..opposite_size as VertexId {
            let is_edge =
                if next_true < true_neighbors.len() && true_neighbors[next_true] == candidate {
                    next_true += 1;
                    true
                } else {
                    false
                };
            if self.perturb_bit(is_edge, rng) {
                noisy.push(candidate);
            }
        }
        noisy
    }

    /// Expected number of noisy edges for a vertex of degree `degree` whose
    /// opposite layer has `opposite_size` vertices:
    /// `d·(1−p) + (n−d)·p`.
    #[must_use]
    pub fn expected_noisy_edges(&self, degree: usize, opposite_size: usize) -> f64 {
        let p = self.flip_probability;
        degree as f64 * (1.0 - p) + (opposite_size.saturating_sub(degree)) as f64 * p
    }

    /// The unbiased edge estimator `φ(i,j) = (A'[i,j] − p)/(1 − 2p)` given the
    /// observed noisy bit.
    #[must_use]
    pub fn unbiased_edge_estimate(&self, noisy_bit: bool) -> f64 {
        let p = self.flip_probability;
        let a = if noisy_bit { 1.0 } else { 0.0 };
        (a - p) / (1.0 - 2.0 * p)
    }

    /// Variance of the unbiased edge estimator: `p(1−p)/(1−2p)²`
    /// (Equation 1 in the paper). Independent of the true bit.
    #[must_use]
    pub fn edge_estimate_variance(&self) -> f64 {
        let p = self.flip_probability;
        p * (1.0 - p) / ((1.0 - 2.0 * p) * (1.0 - 2.0 * p))
    }
}

/// The gap distribution's log-denominator `ln(1 − p)`.
///
/// Via `ln_1p`: for tiny p (large ε), `1.0 - p` would round to exactly 1.0
/// and the naive log would be 0, collapsing every gap to 0 (i.e. flipping
/// *every* bit — the exact opposite of the distribution). `ln_1p` keeps
/// full precision down to the smallest subnormal p. Hoisted out of the
/// per-draw path ([`draw_gap`]) because it depends only on `p`.
fn gap_denominator(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    (-p).ln_1p()
}

/// The reference gap evaluation — the number of Bernoulli(`p`) failures
/// before the next success, `⌊ln u / denom⌋` for one uniform sample
/// `u > 0` and `denom =` [`gap_denominator`]`(p)` — saturating at
/// `usize::MAX` where the float math overflows.
#[inline]
fn gap_formula(u: f64, denom: f64) -> usize {
    let gap = (u.ln() / denom).floor();
    if gap >= usize::MAX as f64 {
        usize::MAX
    } else {
        gap as usize
    }
}

/// Number of small gaps [`GapTable`] resolves by threshold comparison.
const GAP_TABLE_SIZE: usize = 16;

/// Exact threshold table for the common small geometric gaps.
///
/// `thresholds[k]` is the smallest sample on the uniform grid the RNG can
/// produce (`u = m · 2⁻⁵³`) whose gap is `≤ k`, found by binary-searching
/// `m` with [`gap_formula`] itself as the oracle (the gap is a
/// non-increasing step function of `u`). A draw then resolves to the first
/// `k` with `u ≥ thresholds[k]` — by construction *exactly* the value the
/// reference formula would compute — and only the rare gap
/// `≥ GAP_TABLE_SIZE` (probability `(1−p)^16`) falls back to `ln`. This
/// trades one `ln` per draw for an expected `1/p`-ish comparisons, which
/// is what makes long perturbations cheap at the dense-noise budgets where
/// skip sampling draws tens of thousands of gaps per list.
#[derive(Clone, Copy)]
struct GapTable {
    thresholds: [f64; GAP_TABLE_SIZE],
}

impl GapTable {
    /// Grid scale of the RNG's `f64` samples: `u = m · 2⁻⁵³`.
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;

    fn new(denom: f64) -> Self {
        let mut thresholds = [0.0f64; GAP_TABLE_SIZE];
        for (k, slot) in thresholds.iter_mut().enumerate() {
            // Smallest m in [1, 2^53] with gap(m · 2⁻⁵³) ≤ k. The upper
            // bound is valid: gap(1.0) = ⌊0 / denom⌋ = 0 ≤ k.
            let mut lo = 1u64;
            let mut hi = 1u64 << 53;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if gap_formula(mid as f64 * Self::SCALE, denom) <= k {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            *slot = hi as f64 * Self::SCALE;
        }
        Self { thresholds }
    }

    /// Resolves one sample, falling back to the formula for large gaps.
    ///
    /// Branchless: `u < thresholds[k] ⟺ gap(u) > k` (the thresholds
    /// decrease with `k`), so counting the thresholds above `u` yields
    /// `min(gap, GAP_TABLE_SIZE)` in 16 autovectorizable comparisons with
    /// no data-dependent branches — an early-exit scan mispredicts once
    /// per draw on the geometric tail and measures ~3× slower.
    #[inline]
    fn gap(&self, u: f64, denom: f64) -> usize {
        let mut count = 0usize;
        for &threshold in &self.thresholds {
            count += usize::from(u < threshold);
        }
        if count == GAP_TABLE_SIZE {
            gap_formula(u, denom)
        } else {
            count
        }
    }
}

thread_local! {
    /// One-entry per-thread cache of the last [`GapTable`], keyed by the
    /// denominator's bits. Building a table costs ~16 × 53 `ln`
    /// evaluations; rounds perturb many lists at the same ε (and batch
    /// engines many rounds at the same ε), so rebuilding per list would
    /// hand back a chunk of the savings the table exists for.
    static GAP_TABLE_CACHE: std::cell::Cell<Option<(u64, GapTable)>> =
        const { std::cell::Cell::new(None) };
}

/// The threshold table for `denom`, from the per-thread cache when the
/// last request used the same denominator.
fn gap_table_for(denom: f64) -> GapTable {
    GAP_TABLE_CACHE.with(|cache| match cache.get() {
        Some((bits, table)) if bits == denom.to_bits() => table,
        _ => {
            let table = GapTable::new(denom);
            cache.set(Some((denom.to_bits(), table)));
            table
        }
    })
}

/// One gap draw, through the threshold table when one was built.
#[inline]
fn draw_gap<R: Rng + ?Sized>(table: Option<&GapTable>, denom: f64, rng: &mut R) -> usize {
    let u: f64 = rng.gen::<f64>();
    if u <= 0.0 {
        return usize::MAX;
    }
    match table {
        Some(t) => t.gap(u, denom),
        None => gap_formula(u, denom),
    }
}

/// Merges two sorted, mutually disjoint id lists into one sorted list.
fn merge_sorted_disjoint(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl Mechanism<bool> for RandomizedResponse {
    type Output = bool;

    fn apply<R: Rng + ?Sized>(&self, input: bool, rng: &mut R) -> bool {
        self.perturb_bit(input, rng)
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rr(eps: f64) -> RandomizedResponse {
        RandomizedResponse::new(PrivacyBudget::new(eps).unwrap())
    }

    #[test]
    fn flip_probability_formula() {
        for eps in [0.5, 1.0, 2.0, 3.0] {
            let r = rr(eps);
            let expected = 1.0 / (1.0 + eps.exp());
            assert!((r.flip_probability() - expected).abs() < 1e-15);
            assert!((r.keep_probability() - (1.0 - expected)).abs() < 1e-15);
            assert!(r.flip_probability() > 0.0 && r.flip_probability() < 0.5);
            assert_eq!(r.epsilon(), eps);
        }
    }

    #[test]
    fn higher_budget_flips_less() {
        assert!(rr(3.0).flip_probability() < rr(1.0).flip_probability());
    }

    #[test]
    fn empirical_flip_rate_matches_p() {
        let r = rr(1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200_000;
        let flipped = (0..trials)
            .filter(|_| r.perturb_bit(false, &mut rng))
            .count();
        let rate = flipped as f64 / trials as f64;
        assert!(
            (rate - r.flip_probability()).abs() < 0.005,
            "rate {rate} vs p {}",
            r.flip_probability()
        );

        let kept = (0..trials)
            .filter(|_| r.perturb_bit(true, &mut rng))
            .count();
        let keep_rate = kept as f64 / trials as f64;
        assert!((keep_rate - r.keep_probability()).abs() < 0.005);
    }

    #[test]
    fn gap_table_matches_formula_exactly() {
        let mut rng = StdRng::seed_from_u64(99);
        for eps in [0.5f64, 1.0, 2.0, 3.0] {
            let p = 1.0 / (1.0 + eps.exp());
            let denom = gap_denominator(p);
            let table = GapTable::new(denom);
            // The table must agree with the reference formula on every
            // sample, including the rare small-u fallback region.
            for _ in 0..200_000 {
                let u: f64 = rng.gen();
                if u <= 0.0 {
                    continue;
                }
                assert_eq!(
                    table.gap(u, denom),
                    gap_formula(u, denom),
                    "table and formula disagree at u={u} eps={eps}"
                );
            }
            // Thresholds sit exactly on the step boundaries of the grid the
            // RNG samples from: t_k maps to ≤ k, its grid predecessor to > k.
            for (k, &t) in table.thresholds.iter().enumerate() {
                let m = (t / GapTable::SCALE).round() as u64;
                assert!(gap_formula(m as f64 * GapTable::SCALE, denom) <= k);
                if m > 1 {
                    assert!(gap_formula((m - 1) as f64 * GapTable::SCALE, denom) > k);
                }
            }
        }
    }

    #[test]
    fn perturb_neighbor_list_is_sorted_and_in_range() {
        let r = rr(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let truth: Vec<VertexId> = vec![2, 5, 9];
        let noisy = r.perturb_neighbor_list(&truth, 50, &mut rng);
        assert!(noisy.windows(2).all(|w| w[0] < w[1]));
        assert!(noisy.iter().all(|&v| (v as usize) < 50));
    }

    #[test]
    fn perturb_neighbor_list_density_matches_expectation() {
        let r = rr(2.0);
        let mut rng = StdRng::seed_from_u64(11);
        let truth: Vec<VertexId> = (0..20).collect();
        let n = 1000usize;
        let runs = 300;
        let total: usize = (0..runs)
            .map(|_| r.perturb_neighbor_list(&truth, n, &mut rng).len())
            .sum();
        let avg = total as f64 / runs as f64;
        let expected = r.expected_noisy_edges(truth.len(), n);
        assert!(
            (avg - expected).abs() < expected * 0.05 + 3.0,
            "avg {avg} vs expected {expected}"
        );
    }

    #[test]
    fn high_epsilon_preserves_list_exactly_in_expectation() {
        // With a huge budget the flip probability is ~0, so the noisy list
        // should equal the true list almost always.
        let r = rr(20.0);
        let mut rng = StdRng::seed_from_u64(3);
        let truth: Vec<VertexId> = vec![1, 4, 8];
        let noisy = r.perturb_neighbor_list(&truth, 100, &mut rng);
        assert_eq!(noisy, truth);
    }

    #[test]
    fn unbiased_edge_estimate_is_unbiased() {
        let r = rr(1.0);
        let p = r.flip_probability();
        // E[phi | A=1] = (1-p)·phi(1) + p·phi(0) = 1
        let e1 = (1.0 - p) * r.unbiased_edge_estimate(true) + p * r.unbiased_edge_estimate(false);
        assert!((e1 - 1.0).abs() < 1e-12);
        // E[phi | A=0] = p·phi(1) + (1-p)·phi(0) = 0
        let e0 = p * r.unbiased_edge_estimate(true) + (1.0 - p) * r.unbiased_edge_estimate(false);
        assert!(e0.abs() < 1e-12);
    }

    #[test]
    fn edge_estimate_variance_formula() {
        let r = rr(1.5);
        let p = r.flip_probability();
        let expected = p * (1.0 - p) / ((1.0 - 2.0 * p) * (1.0 - 2.0 * p));
        assert!((r.edge_estimate_variance() - expected).abs() < 1e-15);
        // Variance decreases as epsilon grows.
        assert!(rr(3.0).edge_estimate_variance() < rr(1.0).edge_estimate_variance());
    }

    #[test]
    fn expected_noisy_edges_monotone_in_degree() {
        let r = rr(1.0);
        assert!(r.expected_noisy_edges(10, 100) > r.expected_noisy_edges(0, 100));
        // degree larger than opposite size saturates rather than panics
        let e = r.expected_noisy_edges(200, 100);
        assert!(e > 0.0);
    }

    #[test]
    fn mechanism_trait_dispatch() {
        let r = rr(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let out: bool = Mechanism::<bool>::apply(&r, true, &mut rng);
        let _ = out;
        assert_eq!(Mechanism::<bool>::epsilon(&r), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let r = rr(2.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: RandomizedResponse = serde_json::from_str(&json).unwrap();
        // JSON float round-tripping can differ in the last ulp, so compare
        // fields with a tolerance instead of exact equality.
        assert_eq!(back.epsilon(), r.epsilon());
        assert!((back.flip_probability() - r.flip_probability()).abs() < 1e-12);
    }
}

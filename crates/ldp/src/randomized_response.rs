//! Warner's randomized response (RR) over bits and neighbor lists.
//!
//! Each bit `x ∈ {0, 1}` of a neighbor list is flipped independently with
//! probability `p = 1 / (1 + e^ε)` and kept with probability `e^ε / (1 + e^ε)`.
//! Applying RR to a whole neighbor list satisfies ε-edge LDP because two lists
//! differing in one bit produce any given output with probability ratio at
//! most `e^ε`.
//!
//! The module also provides the *unbiased edge estimator*
//! `φ(i,j) = (A'[i,j] − p) / (1 − 2p)` from Section 3.1 of the paper, together
//! with its variance, which the `cne` estimators build on.

use crate::budget::PrivacyBudget;
use crate::mechanism::Mechanism;
use bigraph::VertexId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The randomized-response mechanism for one privacy budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedResponse {
    epsilon: f64,
    flip_probability: f64,
}

impl RandomizedResponse {
    /// Creates a randomized-response mechanism for privacy budget `epsilon`.
    #[must_use]
    pub fn new(epsilon: PrivacyBudget) -> Self {
        let eps = epsilon.value();
        Self {
            epsilon: eps,
            flip_probability: 1.0 / (1.0 + eps.exp()),
        }
    }

    /// The flip probability `p = 1 / (1 + e^ε)`, always in `(0, 0.5)`.
    #[must_use]
    pub fn flip_probability(&self) -> f64 {
        self.flip_probability
    }

    /// The keep probability `e^ε / (1 + e^ε) = 1 − p`.
    #[must_use]
    pub fn keep_probability(&self) -> f64 {
        1.0 - self.flip_probability
    }

    /// The privacy budget this mechanism consumes per neighbor list.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Perturbs one bit: flips it with probability `p`.
    pub fn perturb_bit<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        if rng.gen::<f64>() < self.flip_probability {
            !bit
        } else {
            bit
        }
    }

    /// Applies RR to a full neighbor list of a vertex whose opposite layer has
    /// `opposite_size` vertices, returning the *sorted* list of noisy
    /// neighbors (the "1" entries of the perturbed row).
    ///
    /// `true_neighbors` must be sorted ascending (as produced by
    /// [`bigraph::BipartiteGraph::neighbors`]).
    ///
    /// Implemented by **geometric skip sampling**: instead of drawing one
    /// Bernoulli(`p`) per candidate slot (the dense `O(opposite_size)` scan
    /// kept as [`Self::perturb_neighbor_list_dense`]), the sampler draws the
    /// gaps between successive flips directly from the geometric
    /// distribution. A run of independent Bernoulli(`p`) trials succeeds for
    /// the first time after `⌊ln U / ln(1 − p)⌋` failures (`U` uniform), so
    /// jumping by that gap visits exactly the flipped slots and no others —
    /// the output distribution is *identical* to the per-bit scan, at
    /// expected cost `O(d + p·n)` work and `O(p·n + p·d + 2)` RNG draws for
    /// degree `d` and opposite size `n`. On the sparse graphs the paper
    /// targets (`d ≪ n`) with moderate budgets this is orders of magnitude
    /// faster than the dense scan; the same trick is what makes the
    /// million-user batch engine in `cne::batch` feasible.
    pub fn perturb_neighbor_list<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        debug_assert!(true_neighbors.windows(2).all(|w| w[0] < w[1]));
        let p = self.flip_probability;
        // ε large enough that p underflowed to exactly 0 (ε ≳ 710): no bit
        // can flip, so the noisy list is the true list. Guarding here keeps
        // geometric_gap's `ln(1 − p) = 0` division out of reach.
        if p <= 0.0 {
            return true_neighbors.to_vec();
        }
        let d = true_neighbors.len();
        let zeros = opposite_size.saturating_sub(d);

        // 1 → 0 flips: skip-sample positions *within the true list* that get
        // dropped; every position not dropped is kept. Gap arithmetic
        // saturates so the `usize::MAX` "no further event" sentinel can never
        // wrap back into range.
        let mut kept: Vec<VertexId> = Vec::with_capacity(d);
        {
            let mut pos = geometric_gap(p, rng);
            let mut prev = 0usize;
            while pos < d {
                kept.extend_from_slice(&true_neighbors[prev..pos]);
                prev = pos + 1;
                pos = pos.saturating_add(1).saturating_add(geometric_gap(p, rng));
            }
            kept.extend_from_slice(&true_neighbors[prev..]);
        }

        // 0 → 1 flips: skip-sample ranks within the `zeros` non-neighbor
        // slots, then translate each rank to a vertex id by sliding past the
        // true neighbors (both sequences ascend, so one merge pass suffices).
        let mut flipped: Vec<VertexId> = Vec::new();
        {
            let mut rank = geometric_gap(p, rng);
            let mut ti = 0usize;
            while rank < zeros {
                let mut id = rank + ti;
                while ti < d && (true_neighbors[ti] as usize) <= id {
                    ti += 1;
                    id = rank + ti;
                }
                flipped.push(id as VertexId);
                rank = rank.saturating_add(1).saturating_add(geometric_gap(p, rng));
            }
        }

        merge_sorted_disjoint(&kept, &flipped)
    }

    /// The reference per-bit implementation of [`Self::perturb_neighbor_list`]:
    /// one Bernoulli draw per candidate slot, `O(opposite_size)` work.
    ///
    /// Kept as the ground truth the skip sampler is property-tested against,
    /// and as the faithful simulation of a client that materialises its full
    /// `n`-bit row.
    pub fn perturb_neighbor_list_dense<R: Rng + ?Sized>(
        &self,
        true_neighbors: &[VertexId],
        opposite_size: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        debug_assert!(true_neighbors.windows(2).all(|w| w[0] < w[1]));
        let mut noisy = Vec::new();
        let mut next_true = 0usize;
        for candidate in 0..opposite_size as VertexId {
            let is_edge =
                if next_true < true_neighbors.len() && true_neighbors[next_true] == candidate {
                    next_true += 1;
                    true
                } else {
                    false
                };
            if self.perturb_bit(is_edge, rng) {
                noisy.push(candidate);
            }
        }
        noisy
    }

    /// Expected number of noisy edges for a vertex of degree `degree` whose
    /// opposite layer has `opposite_size` vertices:
    /// `d·(1−p) + (n−d)·p`.
    #[must_use]
    pub fn expected_noisy_edges(&self, degree: usize, opposite_size: usize) -> f64 {
        let p = self.flip_probability;
        degree as f64 * (1.0 - p) + (opposite_size.saturating_sub(degree)) as f64 * p
    }

    /// The unbiased edge estimator `φ(i,j) = (A'[i,j] − p)/(1 − 2p)` given the
    /// observed noisy bit.
    #[must_use]
    pub fn unbiased_edge_estimate(&self, noisy_bit: bool) -> f64 {
        let p = self.flip_probability;
        let a = if noisy_bit { 1.0 } else { 0.0 };
        (a - p) / (1.0 - 2.0 * p)
    }

    /// Variance of the unbiased edge estimator: `p(1−p)/(1−2p)²`
    /// (Equation 1 in the paper). Independent of the true bit.
    #[must_use]
    pub fn edge_estimate_variance(&self) -> f64 {
        let p = self.flip_probability;
        p * (1.0 - p) / ((1.0 - 2.0 * p) * (1.0 - 2.0 * p))
    }
}

/// Draws the number of Bernoulli(`p`) failures before the next success:
/// `⌊ln U / ln(1 − p)⌋` for `U ~ Uniform(0, 1)`, saturating at `usize::MAX`
/// for the (probability-zero) draws where the float math overflows.
fn geometric_gap<R: Rng + ?Sized>(p: f64, rng: &mut R) -> usize {
    debug_assert!(p > 0.0 && p < 1.0);
    let u: f64 = rng.gen::<f64>();
    if u <= 0.0 {
        return usize::MAX;
    }
    // ln(1 − p) via ln_1p: for tiny p (large ε), `1.0 - p` would round to
    // exactly 1.0 and the naive log would be 0, collapsing every gap to 0
    // (i.e. flipping *every* bit — the exact opposite of the distribution).
    // ln_1p keeps full precision down to the smallest subnormal p.
    let denom = (-p).ln_1p();
    let gap = (u.ln() / denom).floor();
    if gap >= usize::MAX as f64 {
        usize::MAX
    } else {
        gap as usize
    }
}

/// Merges two sorted, mutually disjoint id lists into one sorted list.
fn merge_sorted_disjoint(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl Mechanism<bool> for RandomizedResponse {
    type Output = bool;

    fn apply<R: Rng + ?Sized>(&self, input: bool, rng: &mut R) -> bool {
        self.perturb_bit(input, rng)
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rr(eps: f64) -> RandomizedResponse {
        RandomizedResponse::new(PrivacyBudget::new(eps).unwrap())
    }

    #[test]
    fn flip_probability_formula() {
        for eps in [0.5, 1.0, 2.0, 3.0] {
            let r = rr(eps);
            let expected = 1.0 / (1.0 + eps.exp());
            assert!((r.flip_probability() - expected).abs() < 1e-15);
            assert!((r.keep_probability() - (1.0 - expected)).abs() < 1e-15);
            assert!(r.flip_probability() > 0.0 && r.flip_probability() < 0.5);
            assert_eq!(r.epsilon(), eps);
        }
    }

    #[test]
    fn higher_budget_flips_less() {
        assert!(rr(3.0).flip_probability() < rr(1.0).flip_probability());
    }

    #[test]
    fn empirical_flip_rate_matches_p() {
        let r = rr(1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200_000;
        let flipped = (0..trials)
            .filter(|_| r.perturb_bit(false, &mut rng))
            .count();
        let rate = flipped as f64 / trials as f64;
        assert!(
            (rate - r.flip_probability()).abs() < 0.005,
            "rate {rate} vs p {}",
            r.flip_probability()
        );

        let kept = (0..trials)
            .filter(|_| r.perturb_bit(true, &mut rng))
            .count();
        let keep_rate = kept as f64 / trials as f64;
        assert!((keep_rate - r.keep_probability()).abs() < 0.005);
    }

    #[test]
    fn perturb_neighbor_list_is_sorted_and_in_range() {
        let r = rr(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let truth: Vec<VertexId> = vec![2, 5, 9];
        let noisy = r.perturb_neighbor_list(&truth, 50, &mut rng);
        assert!(noisy.windows(2).all(|w| w[0] < w[1]));
        assert!(noisy.iter().all(|&v| (v as usize) < 50));
    }

    #[test]
    fn perturb_neighbor_list_density_matches_expectation() {
        let r = rr(2.0);
        let mut rng = StdRng::seed_from_u64(11);
        let truth: Vec<VertexId> = (0..20).collect();
        let n = 1000usize;
        let runs = 300;
        let total: usize = (0..runs)
            .map(|_| r.perturb_neighbor_list(&truth, n, &mut rng).len())
            .sum();
        let avg = total as f64 / runs as f64;
        let expected = r.expected_noisy_edges(truth.len(), n);
        assert!(
            (avg - expected).abs() < expected * 0.05 + 3.0,
            "avg {avg} vs expected {expected}"
        );
    }

    #[test]
    fn high_epsilon_preserves_list_exactly_in_expectation() {
        // With a huge budget the flip probability is ~0, so the noisy list
        // should equal the true list almost always.
        let r = rr(20.0);
        let mut rng = StdRng::seed_from_u64(3);
        let truth: Vec<VertexId> = vec![1, 4, 8];
        let noisy = r.perturb_neighbor_list(&truth, 100, &mut rng);
        assert_eq!(noisy, truth);
    }

    #[test]
    fn unbiased_edge_estimate_is_unbiased() {
        let r = rr(1.0);
        let p = r.flip_probability();
        // E[phi | A=1] = (1-p)·phi(1) + p·phi(0) = 1
        let e1 = (1.0 - p) * r.unbiased_edge_estimate(true) + p * r.unbiased_edge_estimate(false);
        assert!((e1 - 1.0).abs() < 1e-12);
        // E[phi | A=0] = p·phi(1) + (1-p)·phi(0) = 0
        let e0 = p * r.unbiased_edge_estimate(true) + (1.0 - p) * r.unbiased_edge_estimate(false);
        assert!(e0.abs() < 1e-12);
    }

    #[test]
    fn edge_estimate_variance_formula() {
        let r = rr(1.5);
        let p = r.flip_probability();
        let expected = p * (1.0 - p) / ((1.0 - 2.0 * p) * (1.0 - 2.0 * p));
        assert!((r.edge_estimate_variance() - expected).abs() < 1e-15);
        // Variance decreases as epsilon grows.
        assert!(rr(3.0).edge_estimate_variance() < rr(1.0).edge_estimate_variance());
    }

    #[test]
    fn expected_noisy_edges_monotone_in_degree() {
        let r = rr(1.0);
        assert!(r.expected_noisy_edges(10, 100) > r.expected_noisy_edges(0, 100));
        // degree larger than opposite size saturates rather than panics
        let e = r.expected_noisy_edges(200, 100);
        assert!(e > 0.0);
    }

    #[test]
    fn mechanism_trait_dispatch() {
        let r = rr(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let out: bool = Mechanism::<bool>::apply(&r, true, &mut rng);
        let _ = out;
        assert_eq!(Mechanism::<bool>::epsilon(&r), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let r = rr(2.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: RandomizedResponse = serde_json::from_str(&json).unwrap();
        // JSON float round-tripping can differ in the last ulp, so compare
        // fields with a tolerance instead of exact equality.
        assert_eq!(back.epsilon(), r.epsilon());
        assert!((back.flip_probability() - r.flip_probability()).abs() < 1e-12);
    }
}

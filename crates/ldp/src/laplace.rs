//! The Laplace mechanism.
//!
//! Given a function `f` with global sensitivity `Δf` and a privacy budget `ε`,
//! releasing `f + Lap(Δf/ε)` satisfies ε-(edge) LDP. The sampler draws from
//! the Laplace distribution by inverse-CDF transform so the only dependency is
//! a uniform `rand::Rng`.

use crate::budget::PrivacyBudget;
use crate::mechanism::{Mechanism, Sensitivity};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Laplace mechanism for a fixed sensitivity and budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaplaceMechanism {
    epsilon: f64,
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// Creates a Laplace mechanism adding noise scaled to `Δf / ε`.
    #[must_use]
    pub fn new(epsilon: PrivacyBudget, sensitivity: Sensitivity) -> Self {
        Self {
            epsilon: epsilon.value(),
            sensitivity: sensitivity.value(),
        }
    }

    /// The scale parameter `b = Δf / ε` of the Laplace noise.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// The privacy budget consumed per application.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The global sensitivity the noise is calibrated to.
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The variance of the added noise: `2b²`.
    #[must_use]
    pub fn noise_variance(&self) -> f64 {
        2.0 * self.scale() * self.scale()
    }

    /// Draws one sample of Laplace noise with scale `b` (mean zero).
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        sample_laplace(self.scale(), rng)
    }

    /// Fills `out` with Laplace noise drawn from one stream, draw-for-draw
    /// identical to calling [`LaplaceMechanism::sample_noise`] per slot
    /// (see [`sample_laplace_block`]).
    pub fn sample_noise_block<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        sample_laplace_block(self.scale(), rng, out);
    }

    /// Releases `value + Lap(Δf/ε)`.
    pub fn perturb<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        value + self.sample_noise(rng)
    }
}

impl Mechanism<f64> for LaplaceMechanism {
    type Output = f64;

    fn apply<R: Rng + ?Sized>(&self, input: f64, rng: &mut R) -> f64 {
        self.perturb(input, rng)
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// Draws a sample from the zero-mean Laplace distribution with scale `b`
/// using the inverse-CDF transform: for `u ~ Uniform(-½, ½)`,
/// `x = −b · sign(u) · ln(1 − 2|u|)`.
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    // Uniform in (-0.5, 0.5); the endpoints have probability zero but we guard
    // against ln(0) anyway by resampling.
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let magnitude = 1.0 - 2.0 * u.abs();
        if magnitude > 0.0 {
            return -scale * u.signum() * magnitude.ln();
        }
    }
}

/// Number of uniforms pulled per bulk refill in [`sample_laplace_block`].
const LAPLACE_BLOCK: usize = 64;

/// Fills `out` with samples from the zero-mean Laplace distribution with
/// scale `b`, **draw-for-draw identical** to calling [`sample_laplace`]
/// once per slot on the same stream.
///
/// Uniforms are pulled in bulk through [`rand::RngCore::fill_bytes`] — one
/// refill per up-to-64 outputs (`LAPLACE_BLOCK`) instead of one generator call
/// per output — and the inverse-CDF transform then runs over the buffered
/// block. Each refill requests `min(outputs remaining, block)` words, which
/// never exceeds what the scalar loop would consume (it draws at least one
/// word per output), and a rejected word (the `u = ±½` endpoint guard, a
/// once-per-2⁵³-draws event) consumes its buffer slot exactly like the
/// scalar resample loop consumes a generator call — so the stream position
/// after the block matches the scalar loop bit-for-bit.
pub fn sample_laplace_block<R: Rng + ?Sized>(scale: f64, rng: &mut R, out: &mut [f64]) {
    let mut bytes = [0u8; 8 * LAPLACE_BLOCK];
    let mut filled = 0usize;
    while filled < out.len() {
        let want = (out.len() - filled).min(LAPLACE_BLOCK);
        let raw = &mut bytes[..8 * want];
        rng.fill_bytes(raw);
        for chunk in raw.chunks_exact(8) {
            // Identical to `rng.gen::<f64>()`: 53 mantissa bits in [0, 1).
            let bits = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64) - 0.5;
            let magnitude = 1.0 - 2.0 * u.abs();
            if magnitude > 0.0 {
                out[filled] = -scale * u.signum() * magnitude.ln();
                filled += 1;
            }
        }
    }
}

/// Draws **one** Laplace sample with scale `b` from each stream in `rngs`,
/// writing into the matching slot of `out`.
///
/// Equivalent to `out[i] = sample_laplace(scale, &mut rngs[i])` — each
/// stream is advanced exactly as the scalar call advances it — but shaped
/// as one pass over a dense array of states so callers that key noise by
/// user (one independent stream per participant, seeded in bulk via
/// [`rand::rngs::StdRng::seed_batch_from_u64`]) can amortize setup and let
/// the draw/transform loops pipeline across streams.
///
/// # Panics
///
/// Panics if `rngs` and `out` have different lengths.
pub fn sample_laplace_each<R: Rng>(scale: f64, rngs: &mut [R], out: &mut [f64]) {
    assert_eq!(rngs.len(), out.len(), "one output slot per stream");
    for (rng, slot) in rngs.iter_mut().zip(out.iter_mut()) {
        *slot = sample_laplace(scale, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn mech(eps: f64, sens: f64) -> LaplaceMechanism {
        LaplaceMechanism::new(
            PrivacyBudget::new(eps).unwrap(),
            Sensitivity::new(sens).unwrap(),
        )
    }

    #[test]
    fn scale_and_variance() {
        let m = mech(2.0, 1.0);
        assert!((m.scale() - 0.5).abs() < 1e-15);
        assert!((m.noise_variance() - 0.5).abs() < 1e-15);
        assert_eq!(m.epsilon(), 2.0);
        assert_eq!(m.sensitivity(), 1.0);

        let m = mech(0.5, 3.0);
        assert!((m.scale() - 6.0).abs() < 1e-15);
        assert!((m.noise_variance() - 72.0).abs() < 1e-12);
    }

    #[test]
    fn noise_is_zero_mean_with_correct_variance() {
        let m = mech(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 400_000usize;
        let samples: Vec<f64> = (0..n).map(|_| m.sample_noise(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!(
            (var - m.noise_variance()).abs() < 0.1 * m.noise_variance(),
            "var {var} expected {}",
            m.noise_variance()
        );
    }

    #[test]
    fn perturb_shifts_by_noise() {
        let m = mech(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000usize;
        let avg = (0..n).map(|_| m.perturb(42.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((avg - 42.0).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn sample_laplace_median_is_zero() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000usize;
        let negatives = (0..n)
            .filter(|_| sample_laplace(2.0, &mut rng) < 0.0)
            .count();
        let frac = negatives as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "negative fraction {frac}");
    }

    #[test]
    fn laplace_tail_probability() {
        // P(|X| > b·ln 2) = 1/2 for Laplace(b).
        let b = 1.5;
        let threshold = b * std::f64::consts::LN_2;
        let mut rng = StdRng::seed_from_u64(21);
        let n = 200_000usize;
        let exceed = (0..n)
            .filter(|_| sample_laplace(b, &mut rng).abs() > threshold)
            .count();
        let frac = exceed as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        assert!(mech(0.5, 1.0).noise_variance() > mech(2.0, 1.0).noise_variance());
    }

    #[test]
    fn mechanism_trait_dispatch() {
        let m = mech(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let out = Mechanism::<f64>::apply(&m, 10.0, &mut rng);
        assert!(out.is_finite());
        assert_eq!(Mechanism::<f64>::epsilon(&m), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let m = mech(1.5, 2.0);
        let json = serde_json::to_string(&m).unwrap();
        let back: LaplaceMechanism = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn block_sampler_is_draw_for_draw_identical_to_scalar() {
        // Lengths straddling the refill block size (64), including 0.
        for n in [0usize, 1, 2, 63, 64, 65, 100, 128, 1000] {
            for seed in [0u64, 7, 0xFEED_FACE] {
                let mut scalar_rng = StdRng::seed_from_u64(seed);
                let scalar: Vec<u64> = (0..n)
                    .map(|_| sample_laplace(1.7, &mut scalar_rng).to_bits())
                    .collect();
                let mut block_rng = StdRng::seed_from_u64(seed);
                let mut block = vec![0.0f64; n];
                sample_laplace_block(1.7, &mut block_rng, &mut block);
                let block_bits: Vec<u64> = block.iter().map(|x| x.to_bits()).collect();
                assert_eq!(scalar, block_bits, "n={n} seed={seed}");
                // The stream positions must match too: the next draw from
                // either generator is the same.
                assert_eq!(scalar_rng.next_u64(), block_rng.next_u64());
            }
        }
    }

    #[test]
    fn mechanism_block_matches_scalar_noise() {
        let m = mech(0.8, 3.0);
        let mut a = StdRng::seed_from_u64(31);
        let mut b = StdRng::seed_from_u64(31);
        let scalar: Vec<u64> = (0..200).map(|_| m.sample_noise(&mut a).to_bits()).collect();
        let mut block = vec![0.0f64; 200];
        m.sample_noise_block(&mut b, &mut block);
        assert_eq!(
            scalar,
            block.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn keyed_sampler_matches_per_stream_scalar() {
        let seeds: Vec<u64> = (0..37u64).map(|i| i * 977 + 5).collect();
        let mut streams = Vec::new();
        StdRng::seed_batch_from_u64(&seeds, &mut streams);
        let mut out = vec![0.0f64; seeds.len()];
        sample_laplace_each(2.5, &mut streams, &mut out);
        for (i, &seed) in seeds.iter().enumerate() {
            let reference = sample_laplace(2.5, &mut StdRng::seed_from_u64(seed));
            assert_eq!(out[i].to_bits(), reference.to_bits(), "stream {i}");
        }
    }
}

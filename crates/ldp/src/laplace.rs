//! The Laplace mechanism.
//!
//! Given a function `f` with global sensitivity `Δf` and a privacy budget `ε`,
//! releasing `f + Lap(Δf/ε)` satisfies ε-(edge) LDP. The sampler draws from
//! the Laplace distribution by inverse-CDF transform so the only dependency is
//! a uniform `rand::Rng`.

use crate::budget::PrivacyBudget;
use crate::mechanism::{Mechanism, Sensitivity};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Laplace mechanism for a fixed sensitivity and budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaplaceMechanism {
    epsilon: f64,
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// Creates a Laplace mechanism adding noise scaled to `Δf / ε`.
    #[must_use]
    pub fn new(epsilon: PrivacyBudget, sensitivity: Sensitivity) -> Self {
        Self {
            epsilon: epsilon.value(),
            sensitivity: sensitivity.value(),
        }
    }

    /// The scale parameter `b = Δf / ε` of the Laplace noise.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// The privacy budget consumed per application.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The global sensitivity the noise is calibrated to.
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The variance of the added noise: `2b²`.
    #[must_use]
    pub fn noise_variance(&self) -> f64 {
        2.0 * self.scale() * self.scale()
    }

    /// Draws one sample of Laplace noise with scale `b` (mean zero).
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        sample_laplace(self.scale(), rng)
    }

    /// Releases `value + Lap(Δf/ε)`.
    pub fn perturb<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        value + self.sample_noise(rng)
    }
}

impl Mechanism<f64> for LaplaceMechanism {
    type Output = f64;

    fn apply<R: Rng + ?Sized>(&self, input: f64, rng: &mut R) -> f64 {
        self.perturb(input, rng)
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// Draws a sample from the zero-mean Laplace distribution with scale `b`
/// using the inverse-CDF transform: for `u ~ Uniform(-½, ½)`,
/// `x = −b · sign(u) · ln(1 − 2|u|)`.
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    // Uniform in (-0.5, 0.5); the endpoints have probability zero but we guard
    // against ln(0) anyway by resampling.
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let magnitude = 1.0 - 2.0 * u.abs();
        if magnitude > 0.0 {
            return -scale * u.signum() * magnitude.ln();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mech(eps: f64, sens: f64) -> LaplaceMechanism {
        LaplaceMechanism::new(
            PrivacyBudget::new(eps).unwrap(),
            Sensitivity::new(sens).unwrap(),
        )
    }

    #[test]
    fn scale_and_variance() {
        let m = mech(2.0, 1.0);
        assert!((m.scale() - 0.5).abs() < 1e-15);
        assert!((m.noise_variance() - 0.5).abs() < 1e-15);
        assert_eq!(m.epsilon(), 2.0);
        assert_eq!(m.sensitivity(), 1.0);

        let m = mech(0.5, 3.0);
        assert!((m.scale() - 6.0).abs() < 1e-15);
        assert!((m.noise_variance() - 72.0).abs() < 1e-12);
    }

    #[test]
    fn noise_is_zero_mean_with_correct_variance() {
        let m = mech(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 400_000usize;
        let samples: Vec<f64> = (0..n).map(|_| m.sample_noise(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!(
            (var - m.noise_variance()).abs() < 0.1 * m.noise_variance(),
            "var {var} expected {}",
            m.noise_variance()
        );
    }

    #[test]
    fn perturb_shifts_by_noise() {
        let m = mech(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000usize;
        let avg = (0..n).map(|_| m.perturb(42.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((avg - 42.0).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn sample_laplace_median_is_zero() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000usize;
        let negatives = (0..n)
            .filter(|_| sample_laplace(2.0, &mut rng) < 0.0)
            .count();
        let frac = negatives as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "negative fraction {frac}");
    }

    #[test]
    fn laplace_tail_probability() {
        // P(|X| > b·ln 2) = 1/2 for Laplace(b).
        let b = 1.5;
        let threshold = b * std::f64::consts::LN_2;
        let mut rng = StdRng::seed_from_u64(21);
        let n = 200_000usize;
        let exceed = (0..n)
            .filter(|_| sample_laplace(b, &mut rng).abs() > threshold)
            .count();
        let frac = exceed as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        assert!(mech(0.5, 1.0).noise_variance() > mech(2.0, 1.0).noise_variance());
    }

    #[test]
    fn mechanism_trait_dispatch() {
        let m = mech(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let out = Mechanism::<f64>::apply(&m, 10.0, &mut rng);
        assert!(out.is_finite());
        assert_eq!(Mechanism::<f64>::epsilon(&m), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let m = mech(1.5, 2.0);
        let json = serde_json::to_string(&m).unwrap();
        let back: LaplaceMechanism = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

//! Common mechanism abstractions: global sensitivity and the `Mechanism` trait.

use crate::error::{LdpError, Result};
use serde::{Deserialize, Serialize};

/// A validated, strictly positive global sensitivity `Δf`.
///
/// The global sensitivity of a function `f` over neighbor lists is the maximum
/// change in `f` when one entry of the neighbor list flips (Definition 4 in
/// the paper). The Laplace mechanism scales its noise to `Δf / ε`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Sensitivity(f64);

impl Sensitivity {
    /// Creates a sensitivity, validating that it is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`LdpError::InvalidSensitivity`] otherwise.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && value > 0.0 {
            Ok(Self(value))
        } else {
            Err(LdpError::InvalidSensitivity { value })
        }
    }

    /// Sensitivity of a single counting query (e.g. a vertex degree): 1.
    #[must_use]
    pub fn one() -> Self {
        Self(1.0)
    }

    /// The raw `Δf` value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

/// A randomized mechanism that perturbs a value of type `T` under edge LDP.
///
/// Implementations document the privacy budget they consume; the trait exists
/// so that protocol code (the `cne` crate) can treat randomized response and
/// the Laplace mechanism uniformly when recording transcripts.
pub trait Mechanism<T> {
    /// The perturbed output type.
    type Output;

    /// Applies the mechanism to `input` using `rng` as the randomness source.
    fn apply<R: rand::Rng + ?Sized>(&self, input: T, rng: &mut R) -> Self::Output;

    /// The privacy budget `ε` this mechanism consumes per application.
    fn epsilon(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_validation() {
        assert!(Sensitivity::new(1.0).is_ok());
        assert!(Sensitivity::new(0.5).is_ok());
        assert!(Sensitivity::new(0.0).is_err());
        assert!(Sensitivity::new(-1.0).is_err());
        assert!(Sensitivity::new(f64::NAN).is_err());
        assert!(Sensitivity::new(f64::INFINITY).is_err());
    }

    #[test]
    fn sensitivity_one() {
        assert_eq!(Sensitivity::one().value(), 1.0);
    }

    #[test]
    fn sensitivity_ordering() {
        let a = Sensitivity::new(0.5).unwrap();
        let b = Sensitivity::new(1.5).unwrap();
        assert!(a < b);
    }
}

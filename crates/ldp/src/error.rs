//! Error types for the LDP substrate.

use std::fmt;

/// Convenient result alias for fallible LDP operations.
pub type Result<T> = std::result::Result<T, LdpError>;

/// Errors produced by privacy mechanisms and budget accounting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LdpError {
    /// A privacy budget was non-positive, NaN, or infinite.
    InvalidBudget {
        /// The offending value.
        value: f64,
    },
    /// A budget split or consumption request exceeded the available budget.
    BudgetExceeded {
        /// Budget that was available.
        available: f64,
        /// Budget that was requested.
        requested: f64,
    },
    /// A global sensitivity was non-positive, NaN, or infinite.
    InvalidSensitivity {
        /// The offending value.
        value: f64,
    },
    /// A mechanism parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for LdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdpError::InvalidBudget { value } => {
                write!(
                    f,
                    "privacy budget must be a positive finite number, got {value}"
                )
            }
            LdpError::BudgetExceeded {
                available,
                requested,
            } => write!(
                f,
                "requested privacy budget {requested} exceeds available {available}"
            ),
            LdpError::InvalidSensitivity { value } => {
                write!(
                    f,
                    "global sensitivity must be positive and finite, got {value}"
                )
            }
            LdpError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for LdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_values() {
        assert!(LdpError::InvalidBudget { value: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(LdpError::BudgetExceeded {
            available: 1.0,
            requested: 2.0
        }
        .to_string()
        .contains('2'));
        assert!(LdpError::InvalidSensitivity { value: 0.0 }
            .to_string()
            .contains('0'));
        assert!(LdpError::InvalidParameter {
            name: "alpha",
            reason: "out of [0,1]".into()
        }
        .to_string()
        .contains("alpha"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error>(_: &E) {}
        takes_err(&LdpError::InvalidBudget { value: f64::NAN });
    }
}

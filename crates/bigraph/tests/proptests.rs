//! Property-based tests for the bipartite graph substrate.

use bigraph::{
    bitset, common_neighbors, motifs, projection, stats, BipartiteGraph, GraphBuilder, GraphDelta,
    Layer, UpdateBatch,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy producing a random edge list over bounded layer sizes.
fn arb_graph() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32)>)> {
    (1usize..20, 1usize..20).prop_flat_map(|(nu, nl)| {
        let edges = prop::collection::vec((0..nu as u32, 0..nl as u32), 0..120);
        (Just(nu), Just(nl), edges)
    })
}

proptest! {
    /// Building from an edge list always yields a graph passing CSR validation,
    /// with the edge count equal to the number of distinct edges.
    #[test]
    fn builder_invariants((nu, nl, edges) in arb_graph()) {
        let distinct: HashSet<_> = edges.iter().copied().collect();
        let g = BipartiteGraph::from_edges(nu, nl, edges.clone()).unwrap();
        g.validate().unwrap();
        prop_assert_eq!(g.n_edges(), distinct.len());
        prop_assert_eq!(g.n_upper(), nu);
        prop_assert_eq!(g.n_lower(), nl);
        // Every inserted edge is queryable, and mirrored in both directions.
        for (u, v) in distinct {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.neighbors(Layer::Upper, u).contains(&v));
            prop_assert!(g.neighbors(Layer::Lower, v).contains(&u));
        }
    }

    /// Degree sums on both layers equal the edge count.
    #[test]
    fn degree_sum_equals_edges((nu, nl, edges) in arb_graph()) {
        let g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        let upper_sum: usize = (0..nu as u32).map(|v| g.degree(Layer::Upper, v)).sum();
        let lower_sum: usize = (0..nl as u32).map(|v| g.degree(Layer::Lower, v)).sum();
        prop_assert_eq!(upper_sum, g.n_edges());
        prop_assert_eq!(lower_sum, g.n_edges());
    }

    /// C2 is symmetric, bounded by min degree, and equals the brute-force count.
    #[test]
    fn common_neighbors_matches_brute_force((nu, nl, edges) in arb_graph()) {
        let g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        if nu < 2 { return Ok(()); }
        for u in 0..nu as u32 {
            for w in (u + 1)..nu as u32 {
                let fast = common_neighbors::count(&g, Layer::Upper, u, w).unwrap();
                let brute = (0..nl as u32)
                    .filter(|&v| g.has_edge(u, v) && g.has_edge(w, v))
                    .count() as u64;
                prop_assert_eq!(fast, brute);
                let sym = common_neighbors::count(&g, Layer::Upper, w, u).unwrap();
                prop_assert_eq!(fast, sym);
                let bound = g.degree(Layer::Upper, u).min(g.degree(Layer::Upper, w)) as u64;
                prop_assert!(fast <= bound);
            }
        }
    }

    /// Inclusion–exclusion: |A| + |B| = |A ∩ B| + |A ∪ B|.
    #[test]
    fn union_intersection_inclusion_exclusion((nu, nl, edges) in arb_graph()) {
        let g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        if nl < 2 { return Ok(()); }
        for a in 0..(nl as u32).min(6) {
            for b in (a + 1)..(nl as u32).min(6) {
                let inter = common_neighbors::count(&g, Layer::Lower, a, b).unwrap();
                let uni = common_neighbors::union_size(&g, Layer::Lower, a, b).unwrap();
                let da = g.degree(Layer::Lower, a) as u64;
                let db = g.degree(Layer::Lower, b) as u64;
                prop_assert_eq!(da + db, inter + uni);
                let j = common_neighbors::jaccard(&g, Layer::Lower, a, b).unwrap();
                prop_assert!((0.0..=1.0).contains(&j));
            }
        }
    }

    /// Projection weights agree with pairwise common-neighbor counts.
    #[test]
    fn projection_agrees_with_counts((nu, nl, edges) in arb_graph()) {
        let g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        let p = projection::project(&g, Layer::Upper).unwrap();
        if nu < 2 { return Ok(()); }
        for u in 0..(nu as u32).min(8) {
            for w in (u + 1)..(nu as u32).min(8) {
                let c = common_neighbors::count(&g, Layer::Upper, u, w).unwrap();
                prop_assert_eq!(p.weight(u, w), c);
            }
        }
    }

    /// Butterfly count equals the sum over projected pairs of C(weight, 2).
    #[test]
    fn butterflies_from_projection((nu, nl, edges) in arb_graph()) {
        let g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        let b = motifs::butterfly_count(&g).unwrap();
        let p = projection::project(&g, Layer::Upper).unwrap();
        let from_proj: u64 = p.iter().map(|(_, w)| w * w.saturating_sub(1) / 2).sum();
        prop_assert_eq!(b, from_proj);
    }

    /// Degree histogram sums to the layer size and is consistent with the
    /// degree sequence.
    #[test]
    fn histogram_consistency((nu, nl, edges) in arb_graph()) {
        let g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        for layer in [Layer::Upper, Layer::Lower] {
            let hist = stats::degree_histogram(&g, layer);
            prop_assert_eq!(hist.iter().sum::<usize>(), g.layer_size(layer));
            let seq = stats::degree_sequence(&g, layer);
            prop_assert_eq!(seq.len(), g.layer_size(layer));
            if let Some(&max) = seq.first() {
                prop_assert_eq!(max, g.max_degree(layer));
            }
        }
    }

    /// Graphs serialize/deserialize losslessly.
    #[test]
    fn serde_round_trip((nu, nl, edges) in arb_graph()) {
        let g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: BipartiteGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }

    /// GraphBuilder::add_edge_growing never produces out-of-range adjacency.
    #[test]
    fn growing_builder_is_valid(edges in prop::collection::vec((0u32..50, 0u32..50), 0..200)) {
        let mut b = GraphBuilder::default();
        for (u, v) in &edges {
            b.add_edge_growing(*u, *v);
        }
        let g = b.build();
        g.validate().unwrap();
        for (u, v) in edges {
            prop_assert!(g.has_edge(u, v));
        }
    }
}

/// Strategy producing raw delta descriptors over a vertex-id space that may
/// exceed the base layer sizes: `(kind, a, b)` where kind 0/1 are edge
/// add/remove and 2/3 are vertex additions. Out-of-range edge deltas are
/// filtered against the sizes *at their point in the sequence* when the
/// batches are materialized, mirroring a producer that only emits valid ids.
fn arb_deltas() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    prop::collection::vec((0u8..4, 0u32..24, 0u32..24), 0..80)
}

/// Materializes raw delta descriptors into batches of at most `chunk`
/// deltas, tracking the growing layer sizes so every emitted edge delta is
/// in range, and maintaining the expected surviving edge set alongside.
fn materialize(
    nu: usize,
    nl: usize,
    raw: &[(u8, u32, u32)],
    chunk: usize,
    initial: &HashSet<(u32, u32)>,
) -> (Vec<UpdateBatch>, usize, usize, HashSet<(u32, u32)>) {
    let (mut n_upper, mut n_lower) = (nu, nl);
    let mut expected = initial.clone();
    let mut batches = Vec::new();
    let mut current = UpdateBatch::new();
    for &(kind, a, b) in raw {
        let delta = match kind {
            0 | 1 => {
                let (u, v) = (a % n_upper as u32, b % n_lower as u32);
                if kind == 0 {
                    expected.insert((u, v));
                    GraphDelta::AddEdge { upper: u, lower: v }
                } else {
                    expected.remove(&(u, v));
                    GraphDelta::RemoveEdge { upper: u, lower: v }
                }
            }
            2 => {
                n_upper += 1;
                GraphDelta::AddVertex {
                    layer: Layer::Upper,
                }
            }
            _ => {
                n_lower += 1;
                GraphDelta::AddVertex {
                    layer: Layer::Lower,
                }
            }
        };
        current.push(delta);
        if current.len() >= chunk {
            batches.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    (batches, n_upper, n_lower, expected)
}

proptest! {
    /// Any interleaving of update batches lands on exactly the graph built
    /// from scratch over the surviving edge set — regardless of how the
    /// delta stream is chunked into batches.
    #[test]
    fn update_batches_equal_rebuild(
        (nu, nl, edges) in arb_graph(),
        raw in arb_deltas(),
        chunk in 1usize..12,
    ) {
        let initial: HashSet<(u32, u32)> = edges.iter().copied().collect();
        let mut g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        let (batches, n_upper, n_lower, expected) =
            materialize(nu, nl, &raw, chunk, &initial);
        for batch in &batches {
            let applied = g.apply_update_batch(batch).unwrap();
            g.validate().unwrap();
            prop_assert_eq!(applied.epoch, g.epoch());
        }
        prop_assert_eq!(g.n_upper(), n_upper);
        prop_assert_eq!(g.n_lower(), n_lower);
        let mut survivors: Vec<_> = expected.iter().copied().collect();
        survivors.sort_unstable();
        let rebuilt = BipartiteGraph::from_edges(n_upper, n_lower, survivors).unwrap();
        prop_assert_eq!(&g, &rebuilt);

        // Chunking the same stream differently must not change the result.
        let mut g2 =
            BipartiteGraph::from_edges(nu, nl, initial.iter().copied().collect::<Vec<_>>())
                .unwrap();
        let (batches2, ..) = materialize(nu, nl, &raw, usize::MAX, &initial);
        for batch in &batches2 {
            g2.apply_update_batch(batch).unwrap();
        }
        prop_assert_eq!(&g2, &rebuilt);
    }

    /// The touched sets of an applied batch cover exactly the vertices whose
    /// adjacency changed.
    #[test]
    fn touched_sets_are_precise(
        (nu, nl, edges) in arb_graph(),
        raw in arb_deltas(),
    ) {
        let initial: HashSet<(u32, u32)> = edges.iter().copied().collect();
        let before = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        let mut g = before.clone();
        let (batches, ..) = materialize(nu, nl, &raw, usize::MAX, &initial);
        let Some(batch) = batches.first() else { return Ok(()); };
        let applied = g.apply_update_batch(batch).unwrap();
        for layer in [Layer::Upper, Layer::Lower] {
            let touched = applied.touched(layer);
            prop_assert!(touched.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
            for v in 0..before.layer_size(layer) as u32 {
                let changed = before.neighbors(layer, v) != g.neighbors(layer, v);
                prop_assert_eq!(
                    touched.binary_search(&v).is_ok(),
                    changed,
                    "layer {} vertex {}", layer, v
                );
            }
        }
    }
}

proptest! {
    /// Bit-packed intersection (popcount, membership probes, and the
    /// degree-aware dispatcher) equals the sorted-merge intersection on the
    /// adjacency lists of random graphs.
    #[test]
    fn packed_intersection_matches_sorted_merge((nu, nl, edges) in arb_graph()) {
        let g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        if nu < 2 { return Ok(()); }
        let universe = nl;
        for u in 0..(nu as u32).min(6) {
            for w in (u + 1)..(nu as u32).min(6) {
                let a = g.neighbors(Layer::Upper, u);
                let b = g.neighbors(Layer::Upper, w);
                let merge = common_neighbors::intersection_size(a, b);
                let pa = bitset::PackedSet::from_sorted(a, universe);
                let pb = bitset::PackedSet::from_sorted(b, universe);
                prop_assert_eq!(pa.intersection_size(&pb), merge);
                prop_assert_eq!(pb.intersection_size(&pa), merge);
                prop_assert_eq!(pa.intersection_size_sorted(b), merge);
                prop_assert_eq!(bitset::intersection_size_degree_aware(a, &pb), merge);
                prop_assert_eq!(bitset::intersection_size_degree_aware(b, &pa), merge);
            }
        }
    }

    /// Packing and unpacking an adjacency list is lossless, and membership
    /// probes agree with the list.
    #[test]
    fn packed_set_round_trips_adjacency((nu, nl, edges) in arb_graph()) {
        let g = BipartiteGraph::from_edges(nu, nl, edges).unwrap();
        for u in 0..(nu as u32).min(8) {
            let a = g.neighbors(Layer::Upper, u);
            let packed = bitset::PackedSet::from_sorted(a, nl);
            prop_assert_eq!(packed.len(), a.len());
            prop_assert_eq!(packed.to_sorted_ids(), a.to_vec());
            for v in 0..nl as u32 {
                prop_assert_eq!(packed.contains(v), g.has_edge(u, v));
            }
        }
    }
}

//! Round-trip, determinism, corruption, and shard-restriction coverage for
//! the versioned binary snapshot format (`bigraph::snapshot`).
//!
//! The corruption cases here are the CI gate the format's trustworthiness
//! rests on: a truncated file, a flipped payload byte, a wrong magic, and
//! a future version must each be rejected with a **typed**
//! [`SnapshotError`] — no panic, no partially adopted graph.

use bigraph::snapshot::{read_snapshot, write_snapshot, GraphSnapshot, SnapshotError};
use bigraph::{BipartiteGraph, Layer, UpdateBatch, UpdateLog};
use std::path::PathBuf;

const N_UPPER: usize = 60;
const N_LOWER: usize = 200;

/// A graph with a deliberate degree mix: word-parallel-worthy dense
/// vertices (degree ≫ 2·⌈universe/64⌉) alongside sparse ones, on both
/// layers, so the packed sections are non-trivial in each direction.
fn mixed_graph() -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..N_UPPER as u32 {
        let degree = if u % 3 == 0 { 40 + (u % 7) as usize } else { 2 };
        for k in 0..degree {
            edges.push((u, (u * 13 + k as u32 * 3) % N_LOWER as u32));
        }
    }
    BipartiteGraph::from_edges(N_UPPER, N_LOWER, edges).unwrap()
}

/// A graph whose epoch is non-zero, so round-trips exercise the stamp.
fn mutated_graph() -> BipartiteGraph {
    let mut g = mixed_graph();
    let mut batch = UpdateBatch::new();
    batch
        .add_edge(1, 7)
        .remove_edge(0, 0)
        .add_vertex(Layer::Lower);
    g.apply_update_batch(&batch).unwrap();
    g
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bigraph-snapshot-test-{}-{name}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("g.snap")
}

#[test]
fn file_round_trip_preserves_graph_epoch_seq_and_packed_sets() {
    let g = mutated_graph();
    assert_eq!(g.epoch(), 1);
    let path = scratch("roundtrip");
    let snap = GraphSnapshot::capture(&g, 417);
    snap.write_to(&path).unwrap();
    let loaded = read_snapshot(&path).unwrap();

    assert_eq!(loaded.graph(), &g);
    assert_eq!(loaded.epoch(), g.epoch());
    assert_eq!(loaded.log_seq(), 417);
    for layer in [Layer::Upper, Layer::Lower] {
        assert_eq!(loaded.packed(layer), snap.packed(layer));
    }
    loaded.graph().validate().unwrap();
}

#[test]
fn packing_policy_is_the_dense_dispatch_rule() {
    let g = mixed_graph();
    let snap = GraphSnapshot::capture(&g, 0);
    for layer in [Layer::Upper, Layer::Lower] {
        let words = g.layer_size(layer.opposite()).div_ceil(64);
        let expected: Vec<u32> = (0..g.layer_size(layer) as u32)
            .filter(|&v| g.degree(layer, v) > 2 * words)
            .collect();
        let got: Vec<u32> = snap.packed(layer).iter().map(|&(v, _)| v).collect();
        assert_eq!(got, expected, "layer {layer:?}");
        for &(v, ref set) in snap.packed(layer) {
            assert_eq!(set.to_sorted_ids(), g.neighbors(layer, v));
            assert_eq!(set.universe(), g.layer_size(layer.opposite()));
        }
    }
    // The mix must actually exercise both packed sections.
    assert!(!snap.packed(Layer::Upper).is_empty());
    assert!(!snap.packed(Layer::Lower).is_empty());
}

#[test]
fn snapshot_bytes_are_deterministic() {
    let g = mutated_graph();
    let a = GraphSnapshot::capture(&g, 9).to_bytes();
    let b = GraphSnapshot::capture(&g, 9).to_bytes();
    assert_eq!(a, b);
}

#[test]
fn truncation_at_every_region_is_a_typed_error() {
    let bytes = GraphSnapshot::capture(&mutated_graph(), 3).to_bytes();
    // Cut inside the header, inside the section table, and inside the
    // last payload — every prefix must fail cleanly, never panic.
    for cut in [0, 3, 10, 30, 100, 215, bytes.len() - 5, bytes.len() - 1] {
        let err = GraphSnapshot::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::Malformed { .. }
            ),
            "cut at {cut} gave {err}"
        );
    }
}

#[test]
fn flipped_payload_byte_is_a_checksum_mismatch() {
    let mut bytes = GraphSnapshot::capture(&mutated_graph(), 3).to_bytes();
    // The file ends inside the last section's payload.
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    let err = GraphSnapshot::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(err, SnapshotError::ChecksumMismatch { .. }),
        "got {err}"
    );
}

#[test]
fn flipped_table_checksum_byte_is_a_checksum_mismatch() {
    let mut bytes = GraphSnapshot::capture(&mutated_graph(), 3).to_bytes();
    // First section entry starts at 24; its checksum field at +24.
    bytes[24 + 24] ^= 0x01;
    let err = GraphSnapshot::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(err, SnapshotError::ChecksumMismatch { section: 1 }),
        "got {err}"
    );
}

#[test]
fn wrong_magic_is_rejected_before_anything_else() {
    let mut bytes = GraphSnapshot::capture(&mixed_graph(), 0).to_bytes();
    bytes[0] ^= 0xFF;
    let err = GraphSnapshot::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::BadMagic { .. }), "got {err}");
}

#[test]
fn future_version_is_rejected_with_the_supported_ceiling() {
    let mut bytes = GraphSnapshot::capture(&mixed_graph(), 0).to_bytes();
    bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
    match GraphSnapshot::from_bytes(&bytes).unwrap_err() {
        SnapshotError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, 99);
            assert_eq!(supported, bigraph::snapshot::VERSION);
        }
        other => panic!("got {other}"),
    }
}

#[test]
fn missing_file_is_an_io_error() {
    let err = read_snapshot(std::path::Path::new("/nonexistent/dir/g.snap")).unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)), "got {err}");
}

#[test]
fn one_call_writer_matches_capture_then_write() {
    let g = mixed_graph();
    let path = scratch("onecall");
    write_snapshot(&path, &g, 12).unwrap();
    let loaded = read_snapshot(&path).unwrap();
    assert_eq!(loaded.graph(), &g);
    assert_eq!(loaded.log_seq(), 12);
}

#[test]
fn restrict_to_shard_matches_filtered_rebuild() {
    let g = mutated_graph();
    let snap = GraphSnapshot::capture(&g, 55);
    let (lo, hi) = (15u32, 40u32);
    let restricted = snap.restrict_to_shard(Layer::Upper, lo, hi);

    // Structurally identical to rebuilding from the filtered edge list
    // with the same (global) layer sizes.
    let filtered: Vec<(u32, u32)> = g.edges().filter(|&(u, _)| u >= lo && u < hi).collect();
    let rebuilt = BipartiteGraph::from_edges(g.n_upper(), g.n_lower(), filtered).unwrap();
    assert_eq!(restricted.graph(), &rebuilt);
    restricted.graph().validate().unwrap();

    // Epoch and pinned sequence carry over.
    assert_eq!(restricted.epoch(), g.epoch());
    assert_eq!(restricted.log_seq(), 55);

    // Owned shard-layer packed entries survive unchanged; everything else
    // is dropped (opposite-layer adjacencies lost edges).
    let kept: Vec<u32> = restricted
        .packed(Layer::Upper)
        .iter()
        .map(|&(v, _)| v)
        .collect();
    let expected: Vec<u32> = snap
        .packed(Layer::Upper)
        .iter()
        .map(|&(v, _)| v)
        .filter(|&v| v >= lo && v < hi)
        .collect();
    assert_eq!(kept, expected);
    assert!(restricted.packed(Layer::Lower).is_empty());
    for &(v, ref set) in restricted.packed(Layer::Upper) {
        assert_eq!(
            set.to_sorted_ids(),
            restricted.graph().neighbors(Layer::Upper, v)
        );
    }
}

#[test]
fn restricted_round_trip_survives_the_file_format() {
    let snap = GraphSnapshot::capture(&mutated_graph(), 7);
    let restricted = snap.restrict_to_shard(Layer::Upper, 0, 20);
    let reloaded = GraphSnapshot::from_bytes(&restricted.to_bytes()).unwrap();
    assert_eq!(reloaded.graph(), restricted.graph());
    assert_eq!(
        reloaded.packed(Layer::Upper),
        restricted.packed(Layer::Upper)
    );
    assert_eq!(reloaded.log_seq(), 7);
}

#[test]
fn replay_from_reemits_exactly_the_tail_past_the_pin() {
    let log = UpdateLog::with_retention();
    for i in 0..10u32 {
        log.append(bigraph::GraphDelta::AddEdge { upper: i, lower: i });
    }
    // Drain in two gulps so retention spans multiple drain calls.
    let first = log.drain_batch(4).unwrap();
    assert_eq!(first.len(), 4);
    let rest = log.drain_batch(100).unwrap();
    assert_eq!(rest.len(), 6);

    // Pin after delta 3: the tail is sequences 4..=10.
    let tail = log.replay_from(3).unwrap();
    let expected: Vec<_> = (3..10u32)
        .map(|i| bigraph::GraphDelta::AddEdge { upper: i, lower: i })
        .collect();
    assert_eq!(tail.deltas(), &expected[..]);

    // Pin at the head and past the end.
    assert_eq!(log.replay_from(0).unwrap().len(), 10);
    assert!(log.replay_from(10).unwrap().is_empty());

    // A retention-less log reports replay as unavailable, not empty.
    let plain = UpdateLog::new();
    plain.append(bigraph::GraphDelta::AddVertex {
        layer: Layer::Upper,
    });
    let _ = plain.drain_batch(10).unwrap();
    assert!(plain.replay_from(0).is_none());
}

#[test]
fn truncate_history_bounds_retention_without_touching_the_tail() {
    let log = UpdateLog::with_retention();
    for i in 0..10u32 {
        log.append(bigraph::GraphDelta::AddEdge { upper: i, lower: i });
    }
    let _ = log.drain_batch(100).unwrap();

    // Truncating through sequence 6 keeps exactly the tail 7..=10: a
    // replay from the truncation point (or later) is unchanged.
    log.truncate_history_through(6);
    let tail = log.replay_from(6).unwrap();
    let expected: Vec<_> = (6..10u32)
        .map(|i| bigraph::GraphDelta::AddEdge { upper: i, lower: i })
        .collect();
    assert_eq!(tail.deltas(), &expected[..]);
    assert!(log.replay_from(10).unwrap().is_empty());

    // Idempotent, and truncating everything leaves an empty-but-working
    // history that keeps retaining future drains.
    log.truncate_history_through(6);
    assert_eq!(log.replay_from(6).unwrap().len(), 4);
    log.truncate_history_through(u64::MAX);
    assert!(log.replay_from(10).unwrap().is_empty());
    log.append(bigraph::GraphDelta::AddEdge {
        upper: 99,
        lower: 99,
    });
    let _ = log.drain_batch(10).unwrap();
    assert_eq!(log.replay_from(10).unwrap().len(), 1);

    // Retention-less logs ignore truncation.
    let plain = UpdateLog::new();
    plain.truncate_history_through(5);
    assert!(plain.replay_from(0).is_none());
}

//! Error types for bipartite graph construction and queries.

use crate::vertex::{Layer, VertexId};
use std::fmt;

/// Convenient result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced while building or querying a [`crate::BipartiteGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id exceeded the declared size of its layer.
    VertexOutOfRange {
        /// The layer that was indexed.
        layer: Layer,
        /// The offending vertex id.
        id: VertexId,
        /// Number of vertices the layer actually has.
        layer_size: usize,
    },
    /// Two query vertices were required to be on the same layer but were not,
    /// or an operation needed distinct vertices and got identical ones.
    InvalidQueryPair {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// A requested layer is empty, so the operation cannot be performed
    /// (e.g. sampling a vertex pair from an empty layer).
    EmptyLayer {
        /// The empty layer.
        layer: Layer,
    },
    /// The input edge-list or builder state was malformed.
    Malformed {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                layer,
                id,
                layer_size,
            } => write!(
                f,
                "vertex {id} out of range for {layer} layer of size {layer_size}"
            ),
            GraphError::InvalidQueryPair { reason } => {
                write!(f, "invalid query pair: {reason}")
            }
            GraphError::EmptyLayer { layer } => write!(f, "the {layer} layer is empty"),
            GraphError::Malformed { reason } => write!(f, "malformed graph input: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            layer: Layer::Upper,
            id: 10,
            layer_size: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("10"));
        assert!(msg.contains("upper"));
        assert!(msg.contains('5'));

        let e = GraphError::EmptyLayer {
            layer: Layer::Lower,
        };
        assert!(e.to_string().contains("lower"));

        let e = GraphError::InvalidQueryPair {
            reason: "vertices must differ".into(),
        };
        assert!(e.to_string().contains("must differ"));

        let e = GraphError::Malformed {
            reason: "negative edge count".into(),
        };
        assert!(e.to_string().contains("negative edge count"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GraphError::EmptyLayer {
            layer: Layer::Upper,
        });
    }
}

//! Incremental construction of [`BipartiteGraph`]s.

use crate::error::{GraphError, Result};
use crate::graph::BipartiteGraph;
use crate::vertex::{Layer, VertexId};

/// Accumulates edges and produces an immutable [`BipartiteGraph`].
///
/// The builder validates endpoints against the declared layer sizes, tolerates
/// duplicate edges (they are collapsed at build time), and can grow the layer
/// sizes on demand via [`GraphBuilder::add_edge_growing`].
///
/// ```
/// use bigraph::{GraphBuilder, Layer};
/// let mut b = GraphBuilder::new(2, 2);
/// b.add_edge(0, 0).unwrap();
/// b.add_edge(1, 1).unwrap();
/// b.add_edge(1, 1).unwrap(); // duplicate, collapsed
/// let g = b.build();
/// assert_eq!(g.n_edges(), 2);
/// assert_eq!(g.degree(Layer::Upper, 1), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n_upper: usize,
    n_lower: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with fixed layer sizes.
    #[must_use]
    pub fn new(n_upper: usize, n_lower: usize) -> Self {
        Self {
            n_upper,
            n_lower,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with fixed layer sizes and pre-allocated edge capacity.
    #[must_use]
    pub fn with_capacity(n_upper: usize, n_lower: usize, m: usize) -> Self {
        Self {
            n_upper,
            n_lower,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of upper vertices the built graph will have.
    #[must_use]
    pub fn n_upper(&self) -> usize {
        self.n_upper
    }

    /// Number of lower vertices the built graph will have.
    #[must_use]
    pub fn n_lower(&self) -> usize {
        self.n_lower
    }

    /// Number of edges added so far (duplicates counted).
    #[must_use]
    pub fn n_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the edge `(upper, lower)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if either endpoint exceeds the
    /// declared layer size.
    pub fn add_edge(&mut self, upper: VertexId, lower: VertexId) -> Result<()> {
        if upper as usize >= self.n_upper {
            return Err(GraphError::VertexOutOfRange {
                layer: Layer::Upper,
                id: upper,
                layer_size: self.n_upper,
            });
        }
        if lower as usize >= self.n_lower {
            return Err(GraphError::VertexOutOfRange {
                layer: Layer::Lower,
                id: lower,
                layer_size: self.n_lower,
            });
        }
        self.edges.push((upper, lower));
        Ok(())
    }

    /// Adds the edge `(upper, lower)`, growing layer sizes as needed.
    ///
    /// Useful when reading edge lists whose vertex universe is not known in
    /// advance (e.g. KONECT-style files).
    pub fn add_edge_growing(&mut self, upper: VertexId, lower: VertexId) {
        self.n_upper = self.n_upper.max(upper as usize + 1);
        self.n_lower = self.n_lower.max(lower as usize + 1);
        self.edges.push((upper, lower));
    }

    /// Consumes the builder and produces the CSR graph.
    ///
    /// Duplicate edges are collapsed; adjacency lists come out sorted.
    #[must_use]
    pub fn build(mut self) -> BipartiteGraph {
        // Sort and deduplicate the edge list once; both CSR directions are
        // derived from the deduplicated list by counting sort.
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();

        let mut upper_offsets = vec![0usize; self.n_upper + 1];
        let mut lower_offsets = vec![0usize; self.n_lower + 1];
        for &(u, v) in &self.edges {
            upper_offsets[u as usize + 1] += 1;
            lower_offsets[v as usize + 1] += 1;
        }
        for i in 1..upper_offsets.len() {
            upper_offsets[i] += upper_offsets[i - 1];
        }
        for i in 1..lower_offsets.len() {
            lower_offsets[i] += lower_offsets[i - 1];
        }

        // Upper adjacency: the edge list is sorted by (u, v), so lower ids come
        // out sorted per upper vertex automatically.
        let mut upper_adj = Vec::with_capacity(m);
        for &(_, v) in &self.edges {
            upper_adj.push(v);
        }

        // Lower adjacency: scatter with a cursor per lower vertex; since we
        // scan edges in increasing (u, v) order, each lower vertex receives its
        // upper neighbors in increasing order.
        let mut lower_adj = vec![0 as VertexId; m];
        let mut cursor = lower_offsets.clone();
        for &(u, v) in &self.edges {
            let slot = cursor[v as usize];
            lower_adj[slot] = u;
            cursor[v as usize] += 1;
        }

        BipartiteGraph::from_csr(upper_offsets, upper_adj, lower_offsets, lower_adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new(0, 0).build();
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.n_edges(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn build_collapses_duplicates_and_sorts() {
        let mut b = GraphBuilder::new(3, 3);
        for &(u, v) in &[(2, 2), (0, 1), (0, 0), (2, 2), (1, 2), (0, 1)] {
            b.add_edge(u, v).unwrap();
        }
        assert_eq!(b.n_pending_edges(), 6);
        let g = b.build();
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.neighbors(Layer::Upper, 0), &[0, 1]);
        assert_eq!(g.neighbors(Layer::Lower, 2), &[1, 2]);
        g.validate().unwrap();
    }

    #[test]
    fn add_edge_rejects_out_of_range() {
        let mut b = GraphBuilder::new(1, 1);
        assert!(b.add_edge(0, 0).is_ok());
        assert!(matches!(
            b.add_edge(1, 0),
            Err(GraphError::VertexOutOfRange {
                layer: Layer::Upper,
                ..
            })
        ));
        assert!(matches!(
            b.add_edge(0, 7),
            Err(GraphError::VertexOutOfRange {
                layer: Layer::Lower,
                ..
            })
        ));
    }

    #[test]
    fn growing_builder_expands_layers() {
        let mut b = GraphBuilder::default();
        b.add_edge_growing(5, 2);
        b.add_edge_growing(0, 9);
        assert_eq!(b.n_upper(), 6);
        assert_eq!(b.n_lower(), 10);
        let g = b.build();
        assert_eq!(g.n_upper(), 6);
        assert_eq!(g.n_lower(), 10);
        assert!(g.has_edge(5, 2));
        assert!(g.has_edge(0, 9));
        g.validate().unwrap();
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a = GraphBuilder::new(4, 4);
        let mut b = GraphBuilder::with_capacity(4, 4, 16);
        for (u, v) in [(0, 1), (1, 2), (3, 0)] {
            a.add_edge(u, v).unwrap();
            b.add_edge(u, v).unwrap();
        }
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn isolated_vertices_survive() {
        let mut b = GraphBuilder::new(5, 5);
        b.add_edge(0, 0).unwrap();
        let g = b.build();
        assert_eq!(g.n_upper(), 5);
        assert_eq!(g.degree(Layer::Upper, 4), 0);
        assert_eq!(g.neighbors(Layer::Lower, 3), &[] as &[VertexId]);
    }
}

//! # bigraph — bipartite graph substrate
//!
//! This crate provides the bipartite-graph data structures and exact (non-private)
//! graph algorithms that the privacy-preserving common-neighborhood estimators in
//! the [`cne`] crate are built upon.
//!
//! The central type is [`BipartiteGraph`], a CSR-style adjacency structure
//! over two vertex layers (*upper* and *lower*). Graphs are assembled with
//! [`GraphBuilder`], which deduplicates edges and validates layer membership,
//! and mutate under live traffic through epoch-counted
//! [`UpdateBatch`]es of edge/vertex deltas that are spliced into the CSR
//! arrays without a full rebuild ([`delta`]).
//!
//! Beyond storage, the crate implements the exact operators that the paper's
//! evaluation needs as ground truth and as downstream applications:
//!
//! * exact common-neighbor counting and listing ([`common_neighbors`]),
//! * Jaccard / cosine vertex similarity ([`common_neighbors`]),
//! * bit-packed vertex sets with degree-aware popcount intersection,
//!   used by the LDP noisy-neighborhood hot paths ([`bitset`]),
//! * one-mode projections ([`projection`]),
//! * wedge and butterfly (2×2 biclique) counting ([`motifs`]),
//! * vertex-pair samplers, including degree-imbalance (κ) constrained sampling
//!   and induced-subgraph sampling for scaling experiments ([`sampling`]),
//! * degree statistics and dataset summaries ([`stats`]),
//! * versioned binary on-disk snapshots of the CSR plus packed dense
//!   adjacencies, for persistence and fast engine restart ([`snapshot`]).
//!
//! ```
//! use bigraph::{GraphBuilder, Layer};
//!
//! let mut b = GraphBuilder::new(3, 4);
//! b.add_edge(0, 0).unwrap();
//! b.add_edge(0, 1).unwrap();
//! b.add_edge(1, 0).unwrap();
//! b.add_edge(1, 1).unwrap();
//! b.add_edge(2, 3).unwrap();
//! let g = b.build();
//!
//! // u0 and u1 (upper layer) share lower vertices {0, 1}.
//! assert_eq!(bigraph::common_neighbors::count(&g, Layer::Upper, 0, 1).unwrap(), 2);
//! ```
//!
//! [`cne`]: https://docs.rs/cne

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `deny` rather than `forbid`: the one sanctioned exception is
// `bitset`'s feature-gated popcount kernel module, which carries a scoped
// `allow(unsafe_code)` — `#[target_feature]` SIMD intrinsics are unsafe by
// definition and are only ever reached after the matching CPUID check.
#![deny(unsafe_code)]

pub mod bicliques;
pub mod bitset;
pub mod builder;
pub mod common_neighbors;
pub mod delta;
pub mod error;
pub mod graph;
pub mod motifs;
pub mod projection;
pub mod sampling;
pub mod snapshot;
pub mod stats;
pub mod vertex;

pub use bitset::PackedSet;
pub use builder::GraphBuilder;
pub use delta::{AppliedBatch, GraphDelta, UpdateBatch, UpdateLog};
pub use error::{GraphError, Result};
pub use graph::BipartiteGraph;
pub use snapshot::{read_snapshot, write_snapshot, GraphSnapshot, SnapshotError};
pub use vertex::{Layer, VertexId};

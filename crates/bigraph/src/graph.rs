//! The immutable CSR bipartite graph.
//!
//! [`BipartiteGraph`] stores both layers' adjacency in compressed sparse row
//! form with sorted neighbor slices. Neighbor iteration is `O(deg)`, edge
//! membership is `O(log deg)`, and memory is `O(n + m)` with two `u32` entries
//! per edge (one per direction).

use crate::error::{GraphError, Result};
use crate::vertex::{Layer, VertexId};
use serde::{Deserialize, Serialize};

/// An immutable, unweighted bipartite graph in CSR form.
///
/// Construct one with [`crate::GraphBuilder`] or [`BipartiteGraph::from_edges`].
/// The graph keeps adjacency for both directions (upper→lower and lower→upper)
/// so that degree and neighborhood queries are symmetric and `O(deg)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BipartiteGraph {
    /// CSR offsets for the upper layer; length `n_upper + 1`.
    upper_offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted lower-neighbor lists of upper vertices.
    upper_adj: Vec<VertexId>,
    /// CSR offsets for the lower layer; length `n_lower + 1`.
    lower_offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted upper-neighbor lists of lower vertices.
    lower_adj: Vec<VertexId>,
}

impl BipartiteGraph {
    /// Builds a graph directly from an iterator of `(upper, lower)` edges.
    ///
    /// Duplicate edges are collapsed. Edges referring to vertices outside the
    /// declared layer sizes are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint exceeds the
    /// declared layer size.
    pub fn from_edges<I>(n_upper: usize, n_lower: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut builder = crate::GraphBuilder::new(n_upper, n_lower);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Internal constructor used by [`crate::GraphBuilder`]; assumes the CSR
    /// arrays are already consistent (sorted, deduplicated, mirrored).
    pub(crate) fn from_csr(
        upper_offsets: Vec<usize>,
        upper_adj: Vec<VertexId>,
        lower_offsets: Vec<usize>,
        lower_adj: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(*upper_offsets.last().unwrap_or(&0), upper_adj.len());
        debug_assert_eq!(*lower_offsets.last().unwrap_or(&0), lower_adj.len());
        debug_assert_eq!(upper_adj.len(), lower_adj.len());
        Self {
            upper_offsets,
            upper_adj,
            lower_offsets,
            lower_adj,
        }
    }

    /// Number of vertices in the upper layer (`n₁ = |U(G)|`).
    #[must_use]
    pub fn n_upper(&self) -> usize {
        self.upper_offsets.len() - 1
    }

    /// Number of vertices in the lower layer (`n₂ = |L(G)|`).
    #[must_use]
    pub fn n_lower(&self) -> usize {
        self.lower_offsets.len() - 1
    }

    /// Number of vertices in the given layer.
    #[must_use]
    pub fn layer_size(&self, layer: Layer) -> usize {
        match layer {
            Layer::Upper => self.n_upper(),
            Layer::Lower => self.n_lower(),
        }
    }

    /// Total number of vertices, `n = n₁ + n₂`.
    #[must_use]
    pub fn n_vertices(&self) -> usize {
        self.n_upper() + self.n_lower()
    }

    /// Number of edges, `m = |E|`.
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.upper_adj.len()
    }

    /// Returns `true` if the graph has no edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_edges() == 0
    }

    /// Checks whether `id` is a valid vertex of `layer`.
    #[must_use]
    pub fn contains_vertex(&self, layer: Layer, id: VertexId) -> bool {
        (id as usize) < self.layer_size(layer)
    }

    /// Validates that `id` names a vertex of `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] otherwise.
    pub fn check_vertex(&self, layer: Layer, id: VertexId) -> Result<()> {
        if self.contains_vertex(layer, id) {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                layer,
                id,
                layer_size: self.layer_size(layer),
            })
        }
    }

    /// The sorted neighbor slice of vertex `id` on `layer`.
    ///
    /// Neighbors are ids on the *opposite* layer. Panics in debug builds if
    /// the vertex is out of range; use [`BipartiteGraph::check_vertex`] first
    /// for untrusted input.
    #[must_use]
    pub fn neighbors(&self, layer: Layer, id: VertexId) -> &[VertexId] {
        let (offsets, adj) = match layer {
            Layer::Upper => (&self.upper_offsets, &self.upper_adj),
            Layer::Lower => (&self.lower_offsets, &self.lower_adj),
        };
        let i = id as usize;
        &adj[offsets[i]..offsets[i + 1]]
    }

    /// The degree of vertex `id` on `layer`.
    #[must_use]
    pub fn degree(&self, layer: Layer, id: VertexId) -> usize {
        let offsets = match layer {
            Layer::Upper => &self.upper_offsets,
            Layer::Lower => &self.lower_offsets,
        };
        let i = id as usize;
        offsets[i + 1] - offsets[i]
    }

    /// Whether the edge `(upper, lower)` exists. `O(log deg)`.
    #[must_use]
    pub fn has_edge(&self, upper: VertexId, lower: VertexId) -> bool {
        if !self.contains_vertex(Layer::Upper, upper) || !self.contains_vertex(Layer::Lower, lower)
        {
            return false;
        }
        // Search the smaller endpoint's list for better constants.
        let du = self.degree(Layer::Upper, upper);
        let dl = self.degree(Layer::Lower, lower);
        if du <= dl {
            self.neighbors(Layer::Upper, upper)
                .binary_search(&lower)
                .is_ok()
        } else {
            self.neighbors(Layer::Lower, lower)
                .binary_search(&upper)
                .is_ok()
        }
    }

    /// Whether vertex `a` of `layer` is adjacent to vertex `b` of the opposite
    /// layer. Symmetric convenience wrapper over [`BipartiteGraph::has_edge`].
    #[must_use]
    pub fn are_adjacent(&self, layer: Layer, a: VertexId, b: VertexId) -> bool {
        match layer {
            Layer::Upper => self.has_edge(a, b),
            Layer::Lower => self.has_edge(b, a),
        }
    }

    /// Iterates over all edges as `(upper, lower)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n_upper() as VertexId)
            .flat_map(move |u| self.neighbors(Layer::Upper, u).iter().map(move |&v| (u, v)))
    }

    /// Maximum degree among vertices of `layer`.
    #[must_use]
    pub fn max_degree(&self, layer: Layer) -> usize {
        (0..self.layer_size(layer) as VertexId)
            .map(|v| self.degree(layer, v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree among vertices of `layer` (0.0 for an empty layer).
    #[must_use]
    pub fn avg_degree(&self, layer: Layer) -> f64 {
        let n = self.layer_size(layer);
        if n == 0 {
            0.0
        } else {
            self.n_edges() as f64 / n as f64
        }
    }

    /// Verifies internal CSR invariants. Intended for tests and debugging.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Malformed`] describing the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        let check_side = |offsets: &[usize], adj: &[VertexId], opposite: usize, side: &str| {
            if offsets.is_empty() {
                return Err(GraphError::Malformed {
                    reason: format!("{side} offsets empty"),
                });
            }
            if offsets[0] != 0 || *offsets.last().unwrap() != adj.len() {
                return Err(GraphError::Malformed {
                    reason: format!("{side} offsets do not span adjacency"),
                });
            }
            for w in offsets.windows(2) {
                if w[0] > w[1] {
                    return Err(GraphError::Malformed {
                        reason: format!("{side} offsets not monotone"),
                    });
                }
                let slice = &adj[w[0]..w[1]];
                for pair in slice.windows(2) {
                    if pair[0] >= pair[1] {
                        return Err(GraphError::Malformed {
                            reason: format!("{side} adjacency not strictly sorted"),
                        });
                    }
                }
                if let Some(&max) = slice.last() {
                    if max as usize >= opposite {
                        return Err(GraphError::Malformed {
                            reason: format!("{side} adjacency references out-of-range vertex"),
                        });
                    }
                }
            }
            Ok(())
        };
        check_side(
            &self.upper_offsets,
            &self.upper_adj,
            self.n_lower(),
            "upper",
        )?;
        check_side(
            &self.lower_offsets,
            &self.lower_adj,
            self.n_upper(),
            "lower",
        )?;
        if self.upper_adj.len() != self.lower_adj.len() {
            return Err(GraphError::Malformed {
                reason: "edge count mismatch between directions".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BipartiteGraph {
        // Figure 1-like toy graph: 2 upper vertices, 4 lower vertices.
        // u0 - v0, v1, v2 ; u1 - v1, v2, v3
        BipartiteGraph::from_edges(2, 4, [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (1, 3)]).unwrap()
    }

    #[test]
    fn sizes_and_degrees() {
        let g = toy();
        assert_eq!(g.n_upper(), 2);
        assert_eq!(g.n_lower(), 4);
        assert_eq!(g.n_vertices(), 6);
        assert_eq!(g.n_edges(), 6);
        assert!(!g.is_empty());
        assert_eq!(g.degree(Layer::Upper, 0), 3);
        assert_eq!(g.degree(Layer::Upper, 1), 3);
        assert_eq!(g.degree(Layer::Lower, 0), 1);
        assert_eq!(g.degree(Layer::Lower, 1), 2);
        assert_eq!(g.max_degree(Layer::Upper), 3);
        assert_eq!(g.max_degree(Layer::Lower), 2);
        assert!((g.avg_degree(Layer::Upper) - 3.0).abs() < 1e-12);
        assert!((g.avg_degree(Layer::Lower) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_sorted_and_mirrored() {
        let g = toy();
        assert_eq!(g.neighbors(Layer::Upper, 0), &[0, 1, 2]);
        assert_eq!(g.neighbors(Layer::Upper, 1), &[1, 2, 3]);
        assert_eq!(g.neighbors(Layer::Lower, 1), &[0, 1]);
        assert_eq!(g.neighbors(Layer::Lower, 3), &[1]);
        g.validate().unwrap();
    }

    #[test]
    fn has_edge_and_adjacency() {
        let g = toy();
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(5, 0), "out of range upper should be false");
        assert!(!g.has_edge(0, 9), "out of range lower should be false");
        assert!(g.are_adjacent(Layer::Upper, 0, 2));
        assert!(g.are_adjacent(Layer::Lower, 2, 0));
        assert!(!g.are_adjacent(Layer::Lower, 0, 1));
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = toy();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 6);
        let g2 = BipartiteGraph::from_edges(2, 4, edges).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let g = BipartiteGraph::from_edges(1, 1, [(0, 0), (0, 0), (0, 0)]).unwrap();
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let err = BipartiteGraph::from_edges(1, 1, [(0, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
        let err = BipartiteGraph::from_edges(1, 1, [(3, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn empty_graph_behaves() {
        let g = BipartiteGraph::from_edges(3, 2, std::iter::empty()).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.max_degree(Layer::Upper), 0);
        assert_eq!(g.avg_degree(Layer::Lower), 0.0);
        assert_eq!(g.neighbors(Layer::Upper, 2), &[] as &[VertexId]);
        g.validate().unwrap();
    }

    #[test]
    fn zero_vertex_layer() {
        let g = BipartiteGraph::from_edges(0, 0, std::iter::empty()).unwrap();
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.layer_size(Layer::Upper), 0);
        g.validate().unwrap();
    }

    #[test]
    fn check_vertex_errors() {
        let g = toy();
        assert!(g.check_vertex(Layer::Upper, 1).is_ok());
        let err = g.check_vertex(Layer::Upper, 2).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange {
                layer: Layer::Upper,
                id: 2,
                layer_size: 2
            }
        ));
    }

    #[test]
    fn serde_round_trip() {
        let g = toy();
        let json = serde_json::to_string(&g).unwrap();
        let back: BipartiteGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}

//! The CSR bipartite graph.
//!
//! [`BipartiteGraph`] stores both layers' adjacency in compressed sparse row
//! form with sorted neighbor slices. Neighbor iteration is `O(deg)`, edge
//! membership is `O(log deg)`, and memory is `O(n + m)` with two `u32` entries
//! per edge (one per direction).
//!
//! The graph is immutable under queries, but supports transactional
//! streaming mutation through [`BipartiteGraph::apply_update_batch`]: an
//! [`UpdateBatch`] of edge/vertex deltas lands in
//! one `O(n + m + b log b)` splice pass over the CSR arrays — no full
//! rebuild, no re-sort — and bumps the graph's [`epoch`](BipartiteGraph::epoch).

use crate::delta::{AppliedBatch, NetEffect, UpdateBatch};
use crate::error::{GraphError, Result};
use crate::vertex::{Layer, VertexId};
use serde::{Deserialize, Serialize};

/// An unweighted bipartite graph in CSR form.
///
/// Construct one with [`crate::GraphBuilder`] or [`BipartiteGraph::from_edges`].
/// The graph keeps adjacency for both directions (upper→lower and lower→upper)
/// so that degree and neighborhood queries are symmetric and `O(deg)`.
///
/// Equality is **structural**: the [`epoch`](BipartiteGraph::epoch) mutation
/// counter is excluded, so a graph reached through update batches compares
/// equal to the same graph rebuilt from scratch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BipartiteGraph {
    /// CSR offsets for the upper layer; length `n_upper + 1`.
    upper_offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted lower-neighbor lists of upper vertices.
    upper_adj: Vec<VertexId>,
    /// CSR offsets for the lower layer; length `n_lower + 1`.
    lower_offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted upper-neighbor lists of lower vertices.
    lower_adj: Vec<VertexId>,
    /// Mutation counter: number of non-empty update batches applied.
    epoch: u64,
}

impl PartialEq for BipartiteGraph {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality only — the epoch records history, not identity.
        self.upper_offsets == other.upper_offsets
            && self.upper_adj == other.upper_adj
            && self.lower_offsets == other.lower_offsets
            && self.lower_adj == other.lower_adj
    }
}

impl Eq for BipartiteGraph {}

impl BipartiteGraph {
    /// Builds a graph directly from an iterator of `(upper, lower)` edges.
    ///
    /// Duplicate edges are collapsed. Edges referring to vertices outside the
    /// declared layer sizes are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint exceeds the
    /// declared layer size.
    pub fn from_edges<I>(n_upper: usize, n_lower: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut builder = crate::GraphBuilder::new(n_upper, n_lower);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Internal constructor used by [`crate::GraphBuilder`]; assumes the CSR
    /// arrays are already consistent (sorted, deduplicated, mirrored).
    pub(crate) fn from_csr(
        upper_offsets: Vec<usize>,
        upper_adj: Vec<VertexId>,
        lower_offsets: Vec<usize>,
        lower_adj: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(*upper_offsets.last().unwrap_or(&0), upper_adj.len());
        debug_assert_eq!(*lower_offsets.last().unwrap_or(&0), lower_adj.len());
        debug_assert_eq!(upper_adj.len(), lower_adj.len());
        Self {
            upper_offsets,
            upper_adj,
            lower_offsets,
            lower_adj,
            epoch: 0,
        }
    }

    /// [`from_csr`](Self::from_csr) with an explicit epoch stamp — used by
    /// snapshot adoption, which must restore the mutation counter the
    /// graph had when it was captured.
    pub(crate) fn from_csr_at_epoch(
        upper_offsets: Vec<usize>,
        upper_adj: Vec<VertexId>,
        lower_offsets: Vec<usize>,
        lower_adj: Vec<VertexId>,
        epoch: u64,
    ) -> Self {
        let mut g = Self::from_csr(upper_offsets, upper_adj, lower_offsets, lower_adj);
        g.epoch = epoch;
        g
    }

    /// The raw CSR arrays `(upper_offsets, upper_adj, lower_offsets,
    /// lower_adj)` — snapshot serialization reads them directly so the
    /// on-disk layout mirrors the in-memory one.
    pub(crate) fn csr_parts(&self) -> (&[usize], &[VertexId], &[usize], &[VertexId]) {
        (
            &self.upper_offsets,
            &self.upper_adj,
            &self.lower_offsets,
            &self.lower_adj,
        )
    }

    /// The mutation counter: how many effective (non-no-op) update batches
    /// have been applied since construction. Builders and deserialization
    /// preserve it; structural equality ignores it.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of vertices in the upper layer (`n₁ = |U(G)|`).
    #[must_use]
    pub fn n_upper(&self) -> usize {
        self.upper_offsets.len() - 1
    }

    /// Number of vertices in the lower layer (`n₂ = |L(G)|`).
    #[must_use]
    pub fn n_lower(&self) -> usize {
        self.lower_offsets.len() - 1
    }

    /// Number of vertices in the given layer.
    #[must_use]
    pub fn layer_size(&self, layer: Layer) -> usize {
        match layer {
            Layer::Upper => self.n_upper(),
            Layer::Lower => self.n_lower(),
        }
    }

    /// Total number of vertices, `n = n₁ + n₂`.
    #[must_use]
    pub fn n_vertices(&self) -> usize {
        self.n_upper() + self.n_lower()
    }

    /// Number of edges, `m = |E|`.
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.upper_adj.len()
    }

    /// Returns `true` if the graph has no edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_edges() == 0
    }

    /// Checks whether `id` is a valid vertex of `layer`.
    #[must_use]
    pub fn contains_vertex(&self, layer: Layer, id: VertexId) -> bool {
        (id as usize) < self.layer_size(layer)
    }

    /// Validates that `id` names a vertex of `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] otherwise.
    pub fn check_vertex(&self, layer: Layer, id: VertexId) -> Result<()> {
        if self.contains_vertex(layer, id) {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                layer,
                id,
                layer_size: self.layer_size(layer),
            })
        }
    }

    /// The sorted neighbor slice of vertex `id` on `layer`.
    ///
    /// Neighbors are ids on the *opposite* layer. Panics in debug builds if
    /// the vertex is out of range; use [`BipartiteGraph::check_vertex`] first
    /// for untrusted input.
    #[must_use]
    pub fn neighbors(&self, layer: Layer, id: VertexId) -> &[VertexId] {
        let (offsets, adj) = match layer {
            Layer::Upper => (&self.upper_offsets, &self.upper_adj),
            Layer::Lower => (&self.lower_offsets, &self.lower_adj),
        };
        let i = id as usize;
        &adj[offsets[i]..offsets[i + 1]]
    }

    /// The degree of vertex `id` on `layer`.
    #[must_use]
    pub fn degree(&self, layer: Layer, id: VertexId) -> usize {
        let offsets = match layer {
            Layer::Upper => &self.upper_offsets,
            Layer::Lower => &self.lower_offsets,
        };
        let i = id as usize;
        offsets[i + 1] - offsets[i]
    }

    /// Whether the edge `(upper, lower)` exists. `O(log deg)`.
    #[must_use]
    pub fn has_edge(&self, upper: VertexId, lower: VertexId) -> bool {
        if !self.contains_vertex(Layer::Upper, upper) || !self.contains_vertex(Layer::Lower, lower)
        {
            return false;
        }
        // Search the smaller endpoint's list for better constants.
        let du = self.degree(Layer::Upper, upper);
        let dl = self.degree(Layer::Lower, lower);
        if du <= dl {
            self.neighbors(Layer::Upper, upper)
                .binary_search(&lower)
                .is_ok()
        } else {
            self.neighbors(Layer::Lower, lower)
                .binary_search(&upper)
                .is_ok()
        }
    }

    /// Whether vertex `a` of `layer` is adjacent to vertex `b` of the opposite
    /// layer. Symmetric convenience wrapper over [`BipartiteGraph::has_edge`].
    #[must_use]
    pub fn are_adjacent(&self, layer: Layer, a: VertexId, b: VertexId) -> bool {
        match layer {
            Layer::Upper => self.has_edge(a, b),
            Layer::Lower => self.has_edge(b, a),
        }
    }

    /// Iterates over all edges as `(upper, lower)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n_upper() as VertexId)
            .flat_map(move |u| self.neighbors(Layer::Upper, u).iter().map(move |&v| (u, v)))
    }

    /// Maximum degree among vertices of `layer`.
    #[must_use]
    pub fn max_degree(&self, layer: Layer) -> usize {
        (0..self.layer_size(layer) as VertexId)
            .map(|v| self.degree(layer, v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree among vertices of `layer` (0.0 for an empty layer).
    #[must_use]
    pub fn avg_degree(&self, layer: Layer) -> f64 {
        let n = self.layer_size(layer);
        if n == 0 {
            0.0
        } else {
            self.n_edges() as f64 / n as f64
        }
    }

    /// Applies an [`UpdateBatch`] transactionally: either every delta
    /// validates and the whole batch lands, or the graph is left untouched.
    ///
    /// Deltas apply in order; edge operations are idempotent (re-adding an
    /// existing edge or removing an absent one is a no-op), so the net
    /// effect on each edge is decided by the last delta naming it. Cost is
    /// one `O(n + m + b log b)` merge pass over the CSR arrays — untouched
    /// vertex ranges are copied wholesale, touched vertices get a sorted
    /// merge of their old slice with the batch's per-vertex changes — with
    /// no re-sort and no full rebuild.
    ///
    /// A batch that changes anything bumps [`BipartiteGraph::epoch`] by one.
    /// The returned [`AppliedBatch`] lists the touched vertices per layer so
    /// downstream adjacency caches can invalidate precisely.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an edge delta references
    /// a vertex outside the layer sizes *at its point in the sequence*
    /// (vertices added earlier in the batch are in range).
    pub fn apply_update_batch(&mut self, batch: &UpdateBatch) -> Result<AppliedBatch> {
        let net = NetEffect::compute(self, batch)?;
        let mut applied = AppliedBatch {
            epoch: self.epoch,
            edges_added: net.adds.len(),
            edges_removed: net.removes.len(),
            vertices_added_upper: net.added_upper,
            vertices_added_lower: net.added_lower,
            touched_upper: Vec::new(),
            touched_lower: Vec::new(),
        };
        if applied.is_noop() {
            return Ok(applied);
        }

        // Grow the offset arrays for appended (isolated) vertices: each new
        // vertex starts with an empty slice at the end of the adjacency.
        let upper_end = *self.upper_offsets.last().expect("offsets non-empty");
        self.upper_offsets.resize(net.n_upper + 1, upper_end);
        let lower_end = *self.lower_offsets.last().expect("offsets non-empty");
        self.lower_offsets.resize(net.n_lower + 1, lower_end);

        // Upper direction: `net.adds`/`net.removes` are already sorted by
        // `(upper, lower)`.
        splice_direction(
            &mut self.upper_offsets,
            &mut self.upper_adj,
            &net.adds,
            &net.removes,
            &mut applied.touched_upper,
        );
        // Lower direction: mirror the pairs and re-sort by `(lower, upper)`.
        let mirror = |pairs: &[(VertexId, VertexId)]| -> Vec<(VertexId, VertexId)> {
            let mut m: Vec<_> = pairs.iter().map(|&(u, v)| (v, u)).collect();
            m.sort_unstable();
            m
        };
        splice_direction(
            &mut self.lower_offsets,
            &mut self.lower_adj,
            &mirror(&net.adds),
            &mirror(&net.removes),
            &mut applied.touched_lower,
        );

        self.epoch += 1;
        applied.epoch = self.epoch;
        debug_assert!(self.validate().is_ok(), "splice broke a CSR invariant");
        Ok(applied)
    }

    /// Verifies internal CSR invariants. Intended for tests and debugging.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Malformed`] describing the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        let check_side = |offsets: &[usize], adj: &[VertexId], opposite: usize, side: &str| {
            if offsets.is_empty() {
                return Err(GraphError::Malformed {
                    reason: format!("{side} offsets empty"),
                });
            }
            if offsets[0] != 0 || *offsets.last().unwrap() != adj.len() {
                return Err(GraphError::Malformed {
                    reason: format!("{side} offsets do not span adjacency"),
                });
            }
            for w in offsets.windows(2) {
                if w[0] > w[1] {
                    return Err(GraphError::Malformed {
                        reason: format!("{side} offsets not monotone"),
                    });
                }
                let slice = &adj[w[0]..w[1]];
                for pair in slice.windows(2) {
                    if pair[0] >= pair[1] {
                        return Err(GraphError::Malformed {
                            reason: format!("{side} adjacency not strictly sorted"),
                        });
                    }
                }
                if let Some(&max) = slice.last() {
                    if max as usize >= opposite {
                        return Err(GraphError::Malformed {
                            reason: format!("{side} adjacency references out-of-range vertex"),
                        });
                    }
                }
            }
            Ok(())
        };
        check_side(
            &self.upper_offsets,
            &self.upper_adj,
            self.n_lower(),
            "upper",
        )?;
        check_side(
            &self.lower_offsets,
            &self.lower_adj,
            self.n_upper(),
            "lower",
        )?;
        if self.upper_adj.len() != self.lower_adj.len() {
            return Err(GraphError::Malformed {
                reason: "edge count mismatch between directions".into(),
            });
        }
        Ok(())
    }
}

/// Splices per-vertex sorted change lists into one CSR direction.
///
/// `adds`/`removes` are `(src, dst)` pairs sorted by `(src, dst)`; `adds`
/// must be absent from and `removes` present in the current adjacency
/// (guaranteed by [`NetEffect::compute`]). Untouched vertex ranges are
/// copied wholesale; each touched vertex gets a linear merge of its old
/// slice with its change lists. Touched source vertices are appended to
/// `touched` in increasing order.
fn splice_direction(
    offsets: &mut Vec<usize>,
    adj: &mut Vec<VertexId>,
    adds: &[(VertexId, VertexId)],
    removes: &[(VertexId, VertexId)],
    touched: &mut Vec<VertexId>,
) {
    if adds.is_empty() && removes.is_empty() {
        return;
    }
    let n = offsets.len() - 1;
    let mut new_adj = Vec::with_capacity(adj.len() + adds.len() - removes.len());
    let mut new_offsets = Vec::with_capacity(n + 1);
    new_offsets.push(0usize);
    let (mut ai, mut ri) = (0usize, 0usize);
    for src in 0..n as VertexId {
        let old = &adj[offsets[src as usize]..offsets[src as usize + 1]];
        let a_start = ai;
        while ai < adds.len() && adds[ai].0 == src {
            ai += 1;
        }
        let r_start = ri;
        while ri < removes.len() && removes[ri].0 == src {
            ri += 1;
        }
        if a_start == ai && r_start == ri {
            new_adj.extend_from_slice(old);
        } else {
            touched.push(src);
            let mut add_iter = adds[a_start..ai].iter().map(|&(_, dst)| dst).peekable();
            let mut rem_iter = removes[r_start..ri].iter().map(|&(_, dst)| dst).peekable();
            for &dst in old {
                // Emit pending insertions that sort before the old entry.
                while add_iter.peek().is_some_and(|&a| a < dst) {
                    new_adj.push(add_iter.next().expect("peeked"));
                }
                if rem_iter.peek() == Some(&dst) {
                    rem_iter.next();
                } else {
                    new_adj.push(dst);
                }
            }
            new_adj.extend(add_iter);
            debug_assert!(rem_iter.peek().is_none(), "removal of an absent edge");
        }
        new_offsets.push(new_adj.len());
    }
    debug_assert_eq!(ai, adds.len());
    debug_assert_eq!(ri, removes.len());
    *offsets = new_offsets;
    *adj = new_adj;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::GraphDelta;

    fn toy() -> BipartiteGraph {
        // Figure 1-like toy graph: 2 upper vertices, 4 lower vertices.
        // u0 - v0, v1, v2 ; u1 - v1, v2, v3
        BipartiteGraph::from_edges(2, 4, [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (1, 3)]).unwrap()
    }

    #[test]
    fn sizes_and_degrees() {
        let g = toy();
        assert_eq!(g.n_upper(), 2);
        assert_eq!(g.n_lower(), 4);
        assert_eq!(g.n_vertices(), 6);
        assert_eq!(g.n_edges(), 6);
        assert!(!g.is_empty());
        assert_eq!(g.degree(Layer::Upper, 0), 3);
        assert_eq!(g.degree(Layer::Upper, 1), 3);
        assert_eq!(g.degree(Layer::Lower, 0), 1);
        assert_eq!(g.degree(Layer::Lower, 1), 2);
        assert_eq!(g.max_degree(Layer::Upper), 3);
        assert_eq!(g.max_degree(Layer::Lower), 2);
        assert!((g.avg_degree(Layer::Upper) - 3.0).abs() < 1e-12);
        assert!((g.avg_degree(Layer::Lower) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_sorted_and_mirrored() {
        let g = toy();
        assert_eq!(g.neighbors(Layer::Upper, 0), &[0, 1, 2]);
        assert_eq!(g.neighbors(Layer::Upper, 1), &[1, 2, 3]);
        assert_eq!(g.neighbors(Layer::Lower, 1), &[0, 1]);
        assert_eq!(g.neighbors(Layer::Lower, 3), &[1]);
        g.validate().unwrap();
    }

    #[test]
    fn has_edge_and_adjacency() {
        let g = toy();
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(5, 0), "out of range upper should be false");
        assert!(!g.has_edge(0, 9), "out of range lower should be false");
        assert!(g.are_adjacent(Layer::Upper, 0, 2));
        assert!(g.are_adjacent(Layer::Lower, 2, 0));
        assert!(!g.are_adjacent(Layer::Lower, 0, 1));
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = toy();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 6);
        let g2 = BipartiteGraph::from_edges(2, 4, edges).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let g = BipartiteGraph::from_edges(1, 1, [(0, 0), (0, 0), (0, 0)]).unwrap();
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let err = BipartiteGraph::from_edges(1, 1, [(0, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
        let err = BipartiteGraph::from_edges(1, 1, [(3, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn empty_graph_behaves() {
        let g = BipartiteGraph::from_edges(3, 2, std::iter::empty()).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.max_degree(Layer::Upper), 0);
        assert_eq!(g.avg_degree(Layer::Lower), 0.0);
        assert_eq!(g.neighbors(Layer::Upper, 2), &[] as &[VertexId]);
        g.validate().unwrap();
    }

    #[test]
    fn zero_vertex_layer() {
        let g = BipartiteGraph::from_edges(0, 0, std::iter::empty()).unwrap();
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.layer_size(Layer::Upper), 0);
        g.validate().unwrap();
    }

    #[test]
    fn check_vertex_errors() {
        let g = toy();
        assert!(g.check_vertex(Layer::Upper, 1).is_ok());
        let err = g.check_vertex(Layer::Upper, 2).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange {
                layer: Layer::Upper,
                id: 2,
                layer_size: 2
            }
        ));
    }

    #[test]
    fn serde_round_trip() {
        let g = toy();
        let json = serde_json::to_string(&g).unwrap();
        let back: BipartiteGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn apply_batch_adds_and_removes_edges() {
        let mut g = toy();
        let mut batch = UpdateBatch::new();
        batch.add_edge(0, 3).remove_edge(1, 1).add_edge(1, 0);
        let applied = g.apply_update_batch(&batch).unwrap();
        assert_eq!(applied.edges_added, 2);
        assert_eq!(applied.edges_removed, 1);
        assert_eq!(applied.epoch, 1);
        assert_eq!(g.epoch(), 1);
        assert_eq!(applied.touched_upper, vec![0, 1]);
        assert_eq!(applied.touched_lower, vec![0, 1, 3]);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(1, 1));
        g.validate().unwrap();
        // The spliced graph equals a from-scratch rebuild of the same edges.
        let rebuilt = BipartiteGraph::from_edges(2, 4, g.edges().collect::<Vec<_>>()).unwrap();
        assert_eq!(g, rebuilt);
        // ...even though their epochs differ (equality is structural).
        assert_ne!(g.epoch(), rebuilt.epoch());
    }

    #[test]
    fn apply_batch_is_idempotent_at_the_edge_level() {
        let mut g = toy();
        let mut batch = UpdateBatch::new();
        batch.add_edge(0, 0).remove_edge(0, 3).remove_edge(0, 3);
        let applied = g.apply_update_batch(&batch).unwrap();
        assert!(applied.is_noop(), "replayed ops must not dirty the graph");
        assert_eq!(g.epoch(), 0, "a no-op batch must not bump the epoch");
        assert_eq!(g, toy());
    }

    #[test]
    fn apply_batch_add_vertex_grows_layers() {
        let mut g = toy();
        let mut batch = UpdateBatch::new();
        batch
            .add_vertex(Layer::Upper)
            .add_vertex(Layer::Lower)
            .add_edge(2, 4)
            .add_edge(2, 0);
        let applied = g.apply_update_batch(&batch).unwrap();
        assert_eq!(applied.vertices_added_upper, 1);
        assert_eq!(applied.vertices_added_lower, 1);
        assert_eq!(g.n_upper(), 3);
        assert_eq!(g.n_lower(), 5);
        assert_eq!(g.neighbors(Layer::Upper, 2), &[0, 4]);
        assert_eq!(g.neighbors(Layer::Lower, 4), &[2]);
        g.validate().unwrap();
    }

    #[test]
    fn apply_batch_rejects_out_of_range_atomically() {
        let mut g = toy();
        let before = g.clone();
        let mut batch = UpdateBatch::new();
        batch.add_edge(0, 3).add_edge(9, 0);
        let err = g.apply_update_batch(&batch).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
        assert_eq!(g, before, "a failed batch must leave the graph untouched");
        assert_eq!(g.epoch(), 0);
        assert!(!g.has_edge(0, 3), "no partial application");
    }

    #[test]
    fn apply_batch_last_delta_wins_within_a_batch() {
        let mut g = toy();
        let mut batch = UpdateBatch::new();
        batch.push(GraphDelta::AddEdge { upper: 0, lower: 3 });
        batch.push(GraphDelta::RemoveEdge { upper: 0, lower: 3 });
        let applied = g.apply_update_batch(&batch).unwrap();
        assert!(applied.is_noop());
        assert!(!g.has_edge(0, 3));

        let mut batch = UpdateBatch::new();
        batch.remove_edge(0, 0).add_edge(0, 0);
        let applied = g.apply_update_batch(&batch).unwrap();
        assert!(applied.is_noop());
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn apply_batch_sequence_matches_rebuild() {
        // A handful of sequential batches lands on the same structure as a
        // single from-scratch build of the surviving edge set.
        let mut g = BipartiteGraph::from_edges(3, 3, [(0, 0), (1, 1), (2, 2)]).unwrap();
        let mut b1 = UpdateBatch::new();
        b1.add_edge(0, 1).add_edge(0, 2).remove_edge(2, 2);
        g.apply_update_batch(&b1).unwrap();
        let mut b2 = UpdateBatch::new();
        b2.add_vertex(Layer::Upper).add_edge(3, 0).add_edge(3, 2);
        g.apply_update_batch(&b2).unwrap();
        let mut b3 = UpdateBatch::new();
        b3.remove_edge(0, 0).add_edge(2, 1);
        g.apply_update_batch(&b3).unwrap();
        assert_eq!(g.epoch(), 3);
        let rebuilt =
            BipartiteGraph::from_edges(4, 3, [(0, 1), (0, 2), (1, 1), (2, 1), (3, 0), (3, 2)])
                .unwrap();
        assert_eq!(g, rebuilt);
        g.validate().unwrap();
    }
}

//! Versioned on-disk engine snapshots: persistence and fast restart.
//!
//! A warm engine over a multi-million-edge CSR takes seconds to rebuild
//! from a text edge list; a serving restart should not pay that. This
//! module defines a hand-rolled, little-endian, epoch-stamped binary
//! snapshot of a [`BipartiteGraph`] plus the bit-packed adjacencies of its
//! *dense* vertices — the exact bitmaps a warm
//! `AdjacencyStore` would hold — so loading is **read → validate →
//! adopt**: the CSR vectors and packed `u64` words are adopted
//! layout-identical to their in-memory form, with no re-sort, no re-pack,
//! and no serde.
//!
//! # On-disk layout (all integers little-endian)
//!
//! | Offset | Size | Field |
//! |---|---|---|
//! | 0  | 4 | magic `0x53454E43` (`"CNES"`) |
//! | 4  | 2 | format version (currently [`VERSION`]) |
//! | 6  | 2 | section count |
//! | 8  | 8 | graph epoch ([`BipartiteGraph::epoch`] at capture) |
//! | 16 | 8 | pinned update-log sequence number ([`GraphSnapshot::log_seq`]) |
//! | 24 | 32 × count | section table |
//! | …  | … | section payloads, each 8-byte aligned |
//!
//! Each section-table entry is 32 bytes:
//!
//! | Offset | Size | Field |
//! |---|---|---|
//! | +0  | 4 | section id |
//! | +4  | 4 | reserved (zero) |
//! | +8  | 8 | payload byte offset from file start |
//! | +16 | 8 | payload byte length |
//! | +24 | 8 | checksum: FNV-1a folded over the payload as little-endian u64 words (zero-padded tail) |
//!
//! Sections (ids are stable; unknown ids are rejected as malformed):
//!
//! | Id | Name | Payload |
//! |---|---|---|
//! | 1 | `UPPER_OFFSETS` | `(n_upper + 1)` × u64 CSR offsets |
//! | 2 | `UPPER_ADJ` | `m` × u32 sorted lower-neighbor ids |
//! | 3 | `LOWER_OFFSETS` | `(n_lower + 1)` × u64 CSR offsets |
//! | 4 | `LOWER_ADJ` | `m` × u32 sorted upper-neighbor ids |
//! | 5 | `PACKED_UPPER` | packed dense-vertex bitmaps, upper layer |
//! | 6 | `PACKED_LOWER` | packed dense-vertex bitmaps, lower layer |
//!
//! A packed section is `[count: u64][count × u32 vertex ids][zero padding
//! to 8-byte alignment][count × ⌈universe/64⌉ × u64 bitmap words]`, where
//! `universe` is the opposite layer's size. The word arrays are
//! byte-identical to [`PackedSet::as_words`], so adoption is
//! [`PackedSet::from_words`] on a copied slice.
//!
//! # Which vertices get packed
//!
//! The packing policy is **deterministic**, not a dump of incidental
//! cache state: a vertex is packed iff `degree > 2 · ⌈universe/64⌉` — the
//! same break-even at which the engine's degree-aware intersection
//! dispatch switches from per-id probing to word-parallel popcount, and
//! the same rule `AdjacencyStore::warm` uses. Snapshots of the same graph
//! are therefore byte-identical regardless of which queries ran before
//! capture.
//!
//! # Kernel-tier independence
//!
//! Packing ([`PackedSet::from_sorted`]) is portable scalar code — the
//! SIMD dispatch in [`crate::bitset`] accelerates *counting*, never
//! *construction* — so the packed words a snapshot stores are bit-identical
//! whether the writer ran on an AVX2, popcnt, or forced-portable host, and
//! load bit-identically under any tier. CI's `snapshot-compat` job
//! re-runs the round-trip suite under `CNE_FORCE_PORTABLE_KERNELS=1` to
//! pin exactly that.
//!
//! # Version & epoch semantics
//!
//! The version field gates the *format*: a reader rejects any version it
//! does not implement ([`SnapshotError::UnsupportedVersion`]) before
//! touching the section table. The epoch stamp restores
//! [`BipartiteGraph::epoch`] on load, and the pinned log sequence records
//! how much of an update stream the snapshot covers — a restarting
//! consumer replays its retained log tail strictly *after* that sequence
//! ([`crate::UpdateLog::replay_from`]) instead of from zero.
//!
//! # Failure atomicity
//!
//! Loading is all-or-nothing: the file is read fully, every section is
//! length- and checksum-validated, and the reconstructed graph passes
//! [`BipartiteGraph::validate`] *before* a [`GraphSnapshot`] is returned —
//! a corrupt file yields a typed [`SnapshotError`] and no partially
//! adopted state. Writing goes through a temporary file in the target
//! directory followed by an atomic rename, so a crashed writer never
//! leaves a half-written snapshot under the published name.

use crate::bitset::PackedSet;
use crate::graph::BipartiteGraph;
use crate::vertex::{Layer, VertexId};
use std::io::Write;
use std::path::Path;

/// Snapshot file magic: `"CNES"` read as a little-endian u32.
pub const MAGIC: u32 = 0x53454E43;
/// Current snapshot format version.
pub const VERSION: u16 = 1;

/// Byte length of the fixed header (before the section table).
const HEADER_LEN: usize = 24;
/// Byte length of one section-table entry.
const SECTION_ENTRY_LEN: usize = 32;

/// Section ids (see the module-level layout table).
mod section {
    pub const UPPER_OFFSETS: u32 = 1;
    pub const UPPER_ADJ: u32 = 2;
    pub const LOWER_OFFSETS: u32 = 3;
    pub const LOWER_ADJ: u32 = 4;
    pub const PACKED_UPPER: u32 = 5;
    pub const PACKED_LOWER: u32 = 6;
}

/// FNV-1a offset basis (same constants as the pinned batch fingerprints).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a folded over little-endian u64 words (zero-padded tail) — the
/// per-section checksum. Folding whole words instead of single bytes cuts
/// the serial multiply chain 8×, which matters when validating multi-MB
/// adjacency sections on the restart path; any flipped bit still changes
/// the word it lands in and therefore the hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_BASIS;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        hash ^= u64::from_le_bytes(c.try_into().expect("len 8"));
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        hash ^= u64::from_le_bytes(tail);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A typed snapshot failure. Every corrupt, truncated, or incompatible
/// file is rejected with one of these — never a panic, never partial
/// adoption.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the file failed at the OS level.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic {
        /// The four bytes actually found.
        found: u32,
    },
    /// The file's format version is newer than this reader implements.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u16,
        /// Highest version this build reads.
        supported: u16,
    },
    /// The file ended before a declared structure was complete.
    Truncated {
        /// Bytes the structure needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A section's payload bytes do not hash to the checksum in its
    /// table entry.
    ChecksumMismatch {
        /// Section id whose checksum failed.
        section: u32,
    },
    /// The file is structurally inconsistent (missing section, impossible
    /// lengths, CSR invariants violated, out-of-range packed entries, …).
    Malformed {
        /// Human-readable description of the first violated invariant.
        reason: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot io error: {e}"),
            Self::BadMagic { found } => {
                write!(
                    f,
                    "bad snapshot magic {found:#010x} (expected {MAGIC:#010x})"
                )
            }
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this reader supports up to {supported})"
            ),
            Self::Truncated { needed, available } => write!(
                f,
                "truncated snapshot: needed {needed} bytes, only {available} available"
            ),
            Self::ChecksumMismatch { section } => {
                write!(f, "snapshot section {section} failed its checksum")
            }
            Self::Malformed { reason } => write!(f, "malformed snapshot: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Result alias for snapshot operations.
pub type SnapshotResult<T> = std::result::Result<T, SnapshotError>;

fn malformed(reason: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed {
        reason: reason.into(),
    }
}

/// Is `v` dense enough that the engine's degree-aware dispatch would read
/// its packed bitmap? Matches `AdjacencyStore::warm` and
/// [`crate::bitset::intersection_size_degree_aware`] exactly.
fn is_dense(g: &BipartiteGraph, layer: Layer, v: VertexId) -> bool {
    let words = g.layer_size(layer.opposite()).div_ceil(64);
    g.degree(layer, v) > 2 * words
}

/// Packs every dense vertex of `layer`, in vertex-id order.
fn pack_dense(g: &BipartiteGraph, layer: Layer) -> Vec<(VertexId, PackedSet)> {
    let universe = g.layer_size(layer.opposite());
    (0..g.layer_size(layer) as VertexId)
        .filter(|&v| is_dense(g, layer, v))
        .map(|v| (v, PackedSet::from_sorted(g.neighbors(layer, v), universe)))
        .collect()
}

/// An in-memory engine snapshot: the graph (epoch included) plus the
/// packed adjacencies of every dense vertex, and the update-log sequence
/// number the graph state covers.
///
/// Capture one from a live graph with [`GraphSnapshot::capture`], persist
/// it with [`GraphSnapshot::write_to`], and load it back with
/// [`read_snapshot`]. Consumers adopt it wholesale:
/// `EstimationEngine::from_snapshot` pre-populates its adjacency cache
/// from the packed entries, and a shard worker first narrows it with
/// [`GraphSnapshot::restrict_to_shard`].
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    graph: BipartiteGraph,
    log_seq: u64,
    packed_upper: Vec<(VertexId, PackedSet)>,
    packed_lower: Vec<(VertexId, PackedSet)>,
}

impl GraphSnapshot {
    /// Captures `graph` together with freshly packed bitmaps of all its
    /// dense vertices (deterministic policy — see the module docs).
    ///
    /// `log_seq` stamps how much of an update stream this state covers:
    /// pass the log's [`drained`](crate::UpdateLog::drained) count when the
    /// graph was built by applying drained batches, or 0 for a graph that
    /// precedes any stream.
    #[must_use]
    pub fn capture(graph: &BipartiteGraph, log_seq: u64) -> Self {
        Self {
            packed_upper: pack_dense(graph, Layer::Upper),
            packed_lower: pack_dense(graph, Layer::Lower),
            graph: graph.clone(),
            log_seq,
        }
    }

    /// The snapshotted graph, epoch intact.
    #[must_use]
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The graph's mutation epoch at capture time.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// The pinned update-log sequence number: every log delta with
    /// sequence `<= log_seq` is reflected in [`GraphSnapshot::graph`].
    /// Tail replay after a load starts strictly after this
    /// ([`crate::UpdateLog::replay_from`]).
    #[must_use]
    pub fn log_seq(&self) -> u64 {
        self.log_seq
    }

    /// The packed dense-vertex bitmaps of `layer`, in vertex-id order.
    #[must_use]
    pub fn packed(&self, layer: Layer) -> &[(VertexId, PackedSet)] {
        match layer {
            Layer::Upper => &self.packed_upper,
            Layer::Lower => &self.packed_lower,
        }
    }

    /// Narrows the snapshot to one contiguous shard of `shard_layer`:
    /// the returned graph keeps **both global layer sizes** but only the
    /// edges whose `shard_layer` endpoint lies in `lo..hi` — structurally
    /// identical to rebuilding from the filtered edge list, but produced
    /// by one linear CSR filter pass with no re-sort.
    ///
    /// Packed entries of *owned* `shard_layer` vertices are retained
    /// (an owner holds its vertices' complete adjacency, so their bitmaps
    /// are unchanged); opposite-layer entries are dropped (their
    /// adjacencies lose edges to unowned vertices). The epoch and pinned
    /// log sequence carry over.
    #[must_use]
    pub fn restrict_to_shard(&self, shard_layer: Layer, lo: VertexId, hi: VertexId) -> Self {
        let g = &self.graph;
        let owned = |v: VertexId| v >= lo && v < hi;
        // The shard layer keeps owned vertices' full slices, empties the
        // rest; the opposite layer filters each slice to owned endpoints.
        let filter_side = |layer: Layer, keep: &dyn Fn(VertexId, VertexId) -> bool| {
            let n = g.layer_size(layer);
            let mut offsets = Vec::with_capacity(n + 1);
            let mut adj = Vec::new();
            offsets.push(0usize);
            for v in 0..n as VertexId {
                for &w in g.neighbors(layer, v) {
                    if keep(v, w) {
                        adj.push(w);
                    }
                }
                offsets.push(adj.len());
            }
            (offsets, adj)
        };
        let (upper_offsets, upper_adj, lower_offsets, lower_adj) = match shard_layer {
            Layer::Upper => {
                let (uo, ua) = filter_side(Layer::Upper, &|v, _| owned(v));
                let (lo_, la) = filter_side(Layer::Lower, &|_, w| owned(w));
                (uo, ua, lo_, la)
            }
            Layer::Lower => {
                let (uo, ua) = filter_side(Layer::Upper, &|_, w| owned(w));
                let (lo_, la) = filter_side(Layer::Lower, &|v, _| owned(v));
                (uo, ua, lo_, la)
            }
        };
        let graph = BipartiteGraph::from_csr_at_epoch(
            upper_offsets,
            upper_adj,
            lower_offsets,
            lower_adj,
            g.epoch(),
        );
        let keep_packed = |entries: &[(VertexId, PackedSet)]| {
            entries.iter().filter(|(v, _)| owned(*v)).cloned().collect()
        };
        let (packed_upper, packed_lower) = match shard_layer {
            Layer::Upper => (keep_packed(&self.packed_upper), Vec::new()),
            Layer::Lower => (Vec::new(), keep_packed(&self.packed_lower)),
        };
        Self {
            graph,
            log_seq: self.log_seq,
            packed_upper,
            packed_lower,
        }
    }

    /// Serializes this snapshot to `path` in the versioned binary format,
    /// via a temporary file and atomic rename (see the module docs).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on any filesystem failure.
    pub fn write_to(&self, path: &Path) -> SnapshotResult<()> {
        let bytes = self.to_bytes();
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let tmp = match dir {
            Some(dir) => dir.join(format!(
                ".{}.tmp-{}",
                path.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "snapshot".into()),
                std::process::id()
            )),
            None => Path::new(&format!(".snapshot.tmp-{}", std::process::id())).to_path_buf(),
        };
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)?;
            // The rename is only durable once the *directory entry* is on
            // disk: without an fsync of the parent, a crash after this
            // call can resurrect the old file (or no file) even though
            // the data blocks themselves were synced above.
            std::fs::File::open(dir.unwrap_or_else(|| Path::new(".")))?.sync_all()
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result.map_err(SnapshotError::from)
    }

    /// The full file image (header, section table, payloads).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        // Encode each section payload first, then lay the file out.
        let g = &self.graph;
        let (upper_offsets, upper_adj, lower_offsets, lower_adj) = g.csr_parts();
        // Fixed-stride sections are encoded into exact-size buffers with
        // per-element `copy_from_slice` — a shape LLVM lowers to a bulk
        // byte copy on little-endian hosts.
        let encode_offsets = |offsets: &[usize]| {
            let mut out = vec![0u8; offsets.len() * 8];
            for (c, &o) in out.chunks_exact_mut(8).zip(offsets) {
                c.copy_from_slice(&(o as u64).to_le_bytes());
            }
            out
        };
        let encode_adj = |adj: &[VertexId]| {
            let mut out = vec![0u8; adj.len() * 4];
            for (c, &v) in out.chunks_exact_mut(4).zip(adj) {
                c.copy_from_slice(&v.to_le_bytes());
            }
            out
        };
        let encode_packed = |entries: &[(VertexId, PackedSet)]| {
            let ids_len = entries.len() * 4;
            let ids_pad = (8 - (8 + ids_len) % 8) % 8;
            let words_per = entries.first().map_or(0, |(_, set)| set.as_words().len());
            let mut out = vec![0u8; 8 + ids_len + ids_pad + entries.len() * words_per * 8];
            out[..8].copy_from_slice(&(entries.len() as u64).to_le_bytes());
            for (c, (v, _)) in out[8..8 + ids_len].chunks_exact_mut(4).zip(entries) {
                c.copy_from_slice(&v.to_le_bytes());
            }
            if words_per > 0 {
                let words = &mut out[8 + ids_len + ids_pad..];
                for (chunk, (_, set)) in words.chunks_exact_mut(words_per * 8).zip(entries) {
                    for (c, &w) in chunk.chunks_exact_mut(8).zip(set.as_words()) {
                        c.copy_from_slice(&w.to_le_bytes());
                    }
                }
            }
            out
        };
        let sections: [(u32, Vec<u8>); 6] = [
            (section::UPPER_OFFSETS, encode_offsets(upper_offsets)),
            (section::UPPER_ADJ, encode_adj(upper_adj)),
            (section::LOWER_OFFSETS, encode_offsets(lower_offsets)),
            (section::LOWER_ADJ, encode_adj(lower_adj)),
            (section::PACKED_UPPER, encode_packed(&self.packed_upper)),
            (section::PACKED_LOWER, encode_packed(&self.packed_lower)),
        ];

        let table_len = sections.len() * SECTION_ENTRY_LEN;
        let total: usize = HEADER_LEN
            + table_len
            + sections
                .iter()
                .map(|(_, p)| p.len().next_multiple_of(8))
                .sum::<usize>()
            + 8;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u16).to_le_bytes());
        out.extend_from_slice(&g.epoch().to_le_bytes());
        out.extend_from_slice(&self.log_seq.to_le_bytes());
        // Assign 8-byte-aligned payload offsets, then emit the table.
        let mut offset = HEADER_LEN + table_len;
        offset += (8 - offset % 8) % 8;
        let mut placed = Vec::with_capacity(sections.len());
        for (id, payload) in &sections {
            placed.push((*id, offset, payload.len(), fnv1a(payload)));
            offset += payload.len();
            offset += (8 - offset % 8) % 8;
        }
        for &(id, at, len, checksum) in &placed {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&(at as u64).to_le_bytes());
            out.extend_from_slice(&(len as u64).to_le_bytes());
            out.extend_from_slice(&checksum.to_le_bytes());
        }
        for ((_, payload), &(_, at, _, _)) in sections.iter().zip(&placed) {
            out.resize(at, 0);
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses a snapshot from a full file image. See [`read_snapshot`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant except `Io`.
    pub fn from_bytes(bytes: &[u8]) -> SnapshotResult<Self> {
        let need = |at: usize, len: usize| -> SnapshotResult<&[u8]> {
            let end = at
                .checked_add(len)
                .ok_or_else(|| malformed("offset overflow"))?;
            bytes.get(at..end).ok_or(SnapshotError::Truncated {
                needed: end as u64,
                available: bytes.len() as u64,
            })
        };
        let get_u16 = |at: usize| -> SnapshotResult<u16> {
            Ok(u16::from_le_bytes(need(at, 2)?.try_into().expect("len 2")))
        };
        let get_u32 = |at: usize| -> SnapshotResult<u32> {
            Ok(u32::from_le_bytes(need(at, 4)?.try_into().expect("len 4")))
        };
        let get_u64 = |at: usize| -> SnapshotResult<u64> {
            Ok(u64::from_le_bytes(need(at, 8)?.try_into().expect("len 8")))
        };

        let magic = get_u32(0)?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = get_u16(4)?;
        if version > VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let n_sections = get_u16(6)? as usize;
        let epoch = get_u64(8)?;
        let log_seq = get_u64(16)?;

        // Locate and checksum every section before decoding anything.
        let mut found: std::collections::HashMap<u32, &[u8]> = std::collections::HashMap::new();
        for i in 0..n_sections {
            let entry = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let id = get_u32(entry)?;
            let at = get_u64(entry + 8)?;
            let len = get_u64(entry + 16)?;
            let checksum = get_u64(entry + 24)?;
            let at = usize::try_from(at).map_err(|_| malformed("section offset overflow"))?;
            let len = usize::try_from(len).map_err(|_| malformed("section length overflow"))?;
            let payload = need(at, len)?;
            if fnv1a(payload) != checksum {
                return Err(SnapshotError::ChecksumMismatch { section: id });
            }
            if found.insert(id, payload).is_some() {
                return Err(malformed(format!("duplicate section id {id}")));
            }
        }
        let take = |id: u32| -> SnapshotResult<&[u8]> {
            found
                .get(&id)
                .copied()
                .ok_or_else(|| malformed(format!("missing section id {id}")))
        };

        let decode_offsets = |payload: &[u8], what: &str| -> SnapshotResult<Vec<usize>> {
            if !payload.len().is_multiple_of(8) || payload.is_empty() {
                return Err(malformed(format!("{what} section has invalid length")));
            }
            payload
                .chunks_exact(8)
                .map(|c| {
                    let raw = u64::from_le_bytes(c.try_into().expect("len 8"));
                    usize::try_from(raw).map_err(|_| malformed(format!("{what} offset overflow")))
                })
                .collect()
        };
        let decode_adj = |payload: &[u8], what: &str| -> SnapshotResult<Vec<VertexId>> {
            if !payload.len().is_multiple_of(4) {
                return Err(malformed(format!("{what} section has invalid length")));
            }
            Ok(payload
                .chunks_exact(4)
                .map(|c| VertexId::from_le_bytes(c.try_into().expect("len 4")))
                .collect())
        };

        let upper_offsets = decode_offsets(take(section::UPPER_OFFSETS)?, "upper offsets")?;
        let upper_adj = decode_adj(take(section::UPPER_ADJ)?, "upper adjacency")?;
        let lower_offsets = decode_offsets(take(section::LOWER_OFFSETS)?, "lower offsets")?;
        let lower_adj = decode_adj(take(section::LOWER_ADJ)?, "lower adjacency")?;
        if *upper_offsets.last().unwrap_or(&usize::MAX) != upper_adj.len()
            || *lower_offsets.last().unwrap_or(&usize::MAX) != lower_adj.len()
        {
            return Err(malformed("CSR offsets do not span their adjacency"));
        }
        let graph = BipartiteGraph::from_csr_at_epoch(
            upper_offsets,
            upper_adj,
            lower_offsets,
            lower_adj,
            epoch,
        );
        graph
            .validate()
            .map_err(|e| malformed(format!("graph invariants violated: {e}")))?;

        let decode_packed = |payload: &[u8],
                             layer: Layer,
                             what: &str|
         -> SnapshotResult<Vec<(VertexId, PackedSet)>> {
            let n_layer = graph.layer_size(layer);
            let universe = graph.layer_size(layer.opposite());
            let words_per = universe.div_ceil(64);
            if payload.len() < 8 {
                return Err(malformed(format!("{what} section too short for its count")));
            }
            let count = u64::from_le_bytes(payload[..8].try_into().expect("len 8"));
            let count = usize::try_from(count)
                .ok()
                .filter(|&c| c <= n_layer)
                .ok_or_else(|| malformed(format!("{what} count out of range")))?;
            let ids_len = count * 4;
            let ids_pad = (8 - (8 + ids_len) % 8) % 8;
            let expect = 8 + ids_len + ids_pad + count * words_per * 8;
            if payload.len() != expect {
                return Err(malformed(format!(
                    "{what} section length {} does not match its count (expected {expect})",
                    payload.len()
                )));
            }
            let ids = &payload[8..8 + ids_len];
            let words_base = 8 + ids_len + ids_pad;
            let mut entries = Vec::with_capacity(count);
            let mut prev: Option<VertexId> = None;
            for (i, c) in ids.chunks_exact(4).enumerate() {
                let v = VertexId::from_le_bytes(c.try_into().expect("len 4"));
                if (v as usize) >= n_layer {
                    return Err(malformed(format!("{what} vertex {v} out of range")));
                }
                if prev.is_some_and(|p| p >= v) {
                    return Err(malformed(format!("{what} vertex ids not strictly sorted")));
                }
                prev = Some(v);
                let start = words_base + i * words_per * 8;
                let words: Vec<u64> = payload[start..start + words_per * 8]
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("len 8")))
                    .collect();
                // `PackedSet::from_words` panics on bits beyond the
                // universe; reject them as data corruption instead.
                if !universe.is_multiple_of(64) {
                    let tail = words.last().copied().unwrap_or(0);
                    if tail >> (universe % 64) != 0 {
                        return Err(malformed(format!(
                            "{what} bitmap for vertex {v} has bits beyond its universe"
                        )));
                    }
                }
                entries.push((v, PackedSet::from_words(words, universe)));
            }
            Ok(entries)
        };
        let packed_upper =
            decode_packed(take(section::PACKED_UPPER)?, Layer::Upper, "packed upper")?;
        let packed_lower =
            decode_packed(take(section::PACKED_LOWER)?, Layer::Lower, "packed lower")?;

        Ok(Self {
            graph,
            log_seq,
            packed_upper,
            packed_lower,
        })
    }
}

/// Captures `graph` (stamped with `log_seq`) and writes it to `path` —
/// the one-call writer. See [`GraphSnapshot::capture`] /
/// [`GraphSnapshot::write_to`].
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failure.
pub fn write_snapshot(path: &Path, graph: &BipartiteGraph, log_seq: u64) -> SnapshotResult<()> {
    GraphSnapshot::capture(graph, log_seq).write_to(path)
}

/// Reads, validates, and adopts a snapshot file — all-or-nothing (see the
/// module docs on failure atomicity).
///
/// # Errors
///
/// Any [`SnapshotError`]: `Io` when the file cannot be read, `BadMagic` /
/// `UnsupportedVersion` for foreign or future files, `Truncated` /
/// `ChecksumMismatch` / `Malformed` for corrupt ones.
pub fn read_snapshot(path: &Path) -> SnapshotResult<GraphSnapshot> {
    let bytes = std::fs::read(path)?;
    GraphSnapshot::from_bytes(&bytes)
}

//! Wedge and butterfly counting.
//!
//! Wedges (paths of length two centred on one layer) and butterflies
//! (2×2 bicliques, i.e. `(2,2)`-bicliques) are the basic bipartite motifs.
//! The paper motivates common-neighbor counting as the primitive underlying
//! butterfly counting, bipartite clustering coefficients, and
//! `(p,q)`-biclique pruning; this module provides those exact counts so the
//! examples and experiments can relate estimator accuracy to downstream tasks.

use crate::error::Result;
use crate::graph::BipartiteGraph;
use crate::vertex::{Layer, VertexId};

/// Number of wedges centred on vertices of `layer`.
///
/// A wedge centred on `v` is an unordered pair of distinct neighbors of `v`,
/// so the count is `Σ_v C(deg(v), 2)`.
#[must_use]
pub fn wedge_count(g: &BipartiteGraph, layer: Layer) -> u64 {
    (0..g.layer_size(layer) as VertexId)
        .map(|v| {
            let d = g.degree(layer, v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Exact butterfly (2×2 biclique) count of the graph.
///
/// Uses the standard wedge-aggregation algorithm: for every pair of vertices
/// `(a, b)` on the chosen aggregation layer, if they have `c` common neighbors
/// then they close `C(c, 2)` butterflies. Aggregating over the smaller layer
/// keeps the pair enumeration cheap.
///
/// # Errors
///
/// Currently infallible; returns `Result` for API uniformity.
pub fn butterfly_count(g: &BipartiteGraph) -> Result<u64> {
    // Aggregate over the layer whose opposite layer has smaller total wedge
    // work; for simplicity we pick the layer with fewer vertices to enumerate
    // wedge endpoints from the opposite side.
    let layer = if g.n_upper() <= g.n_lower() {
        Layer::Upper
    } else {
        Layer::Lower
    };
    let opposite = layer.opposite();

    // Count, for each unordered pair on `layer`, how many common neighbors it
    // has, by enumerating wedges centred on the opposite layer.
    let mut pair_counts: std::collections::HashMap<(VertexId, VertexId), u64> =
        std::collections::HashMap::new();
    for v in 0..g.layer_size(opposite) as VertexId {
        let neigh = g.neighbors(opposite, v);
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                *pair_counts.entry((neigh[i], neigh[j])).or_insert(0) += 1;
            }
        }
    }
    Ok(pair_counts
        .values()
        .map(|&c| c * c.saturating_sub(1) / 2)
        .sum())
}

/// The bipartite clustering coefficient of the graph.
///
/// Defined as `4 · #butterflies / #wedges` (the fraction of wedges that close
/// into a butterfly, counted from both layers), a standard normalisation in
/// the bipartite-network literature. Returns 0 for graphs with no wedges.
///
/// # Errors
///
/// Currently infallible; returns `Result` for API uniformity.
pub fn clustering_coefficient(g: &BipartiteGraph) -> Result<f64> {
    let wedges = wedge_count(g, Layer::Upper) + wedge_count(g, Layer::Lower);
    if wedges == 0 {
        return Ok(0.0);
    }
    let butterflies = butterfly_count(g)?;
    Ok(4.0 * butterflies as f64 / wedges as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A complete 2×2 biclique is exactly one butterfly.
    #[test]
    fn single_butterfly() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        assert_eq!(butterfly_count(&g).unwrap(), 1);
        assert_eq!(wedge_count(&g, Layer::Upper), 2);
        assert_eq!(wedge_count(&g, Layer::Lower), 2);
        assert!((clustering_coefficient(&g).unwrap() - 1.0).abs() < 1e-12);
    }

    /// A complete bipartite graph K_{a,b} has C(a,2)·C(b,2) butterflies.
    #[test]
    fn complete_bipartite_counts() {
        let a = 4usize;
        let b = 5usize;
        let edges = (0..a as u32).flat_map(|u| (0..b as u32).map(move |v| (u, v)));
        let g = BipartiteGraph::from_edges(a, b, edges).unwrap();
        let choose2 = |n: u64| n * (n - 1) / 2;
        assert_eq!(
            butterfly_count(&g).unwrap(),
            choose2(a as u64) * choose2(b as u64)
        );
        assert_eq!(wedge_count(&g, Layer::Upper), a as u64 * choose2(b as u64));
        assert_eq!(wedge_count(&g, Layer::Lower), b as u64 * choose2(a as u64));
    }

    /// A path u0-v0-u1-v1 has no butterflies and two wedges.
    #[test]
    fn path_has_no_butterflies() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (1, 0), (1, 1)]).unwrap();
        assert_eq!(butterfly_count(&g).unwrap(), 0);
        assert_eq!(wedge_count(&g, Layer::Upper), 1); // centred on u1
        assert_eq!(wedge_count(&g, Layer::Lower), 1); // centred on v0
        assert_eq!(clustering_coefficient(&g).unwrap(), 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(3, 3, std::iter::empty()).unwrap();
        assert_eq!(butterfly_count(&g).unwrap(), 0);
        assert_eq!(wedge_count(&g, Layer::Upper), 0);
        assert_eq!(clustering_coefficient(&g).unwrap(), 0.0);
    }

    /// Butterfly counting is independent of which layer is larger.
    #[test]
    fn butterfly_layer_choice_is_transparent() {
        // Wide graph: 2 upper, 6 lower, two butterflies sharing an edge pair.
        let g = BipartiteGraph::from_edges(
            2,
            6,
            [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (1, 5)],
        )
        .unwrap();
        // Common neighbors of u0,u1 = {v0,v1,v2} -> C(3,2)=3 butterflies.
        assert_eq!(butterfly_count(&g).unwrap(), 3);

        // Transposed graph (6 upper, 2 lower) must give the same count.
        let gt = BipartiteGraph::from_edges(
            6,
            2,
            [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1), (5, 1)],
        )
        .unwrap();
        assert_eq!(butterfly_count(&gt).unwrap(), 3);
    }
}

//! Bit-packed vertex sets with word-parallel (popcount) intersection.
//!
//! Randomized-response noisy neighbor lists are *dense*: a vertex with true
//! degree `d` in an opposite layer of size `n` reports `≈ d + p·n` noisy
//! neighbors, and at ε = 1 the flip probability `p ≈ 0.27` makes the noisy
//! list a constant fraction of the whole layer. Intersecting two such lists
//! with a sorted merge costs one branchy comparison per element; packing each
//! list into `⌈n/64⌉` machine words turns the same intersection into an
//! `AND` + `popcount` loop that processes 64 candidates per instruction.
//!
//! [`intersection_size_degree_aware`] picks the cheapest of the three
//! available strategies (sorted merge, one-sided membership probes into a
//! packed set, word-parallel popcount) from the operand densities; the `ldp`
//! crate's noisy-neighborhood views and the `cne` batch engine both route
//! their common-neighbor counts through it.
//!
//! # Kernel dispatch
//!
//! [`popcount_and`] and [`popcount`] are dispatching entry points: the first
//! call detects the CPU once and caches a kernel function pointer, so every
//! later call is one indirect jump with zero feature checks. Three kernel
//! tiers exist:
//!
//! * **avx2** — Harley–Seal carry-save accumulation on 256-bit vectors with
//!   a `vpshufb` nibble-table popcount (selected when AVX2 is available),
//! * **popcnt** — an unrolled loop over the hardware `popcnt` instruction
//!   (selected when only SSE4.2-era popcount is available),
//! * **portable** — the original scalar Harley–Seal kernel
//!   ([`popcount_and_portable`] / [`popcount_portable`]), selected on
//!   non-x86 targets and whenever `CNE_FORCE_PORTABLE_KERNELS=1` is set in
//!   the environment at first use.
//!
//! Every kernel returns the exact population count, so dispatch is
//! invisible to callers: results are bit-identical across tiers (asserted
//! by the adversarial-length equivalence tests below, and transitively by
//! the pinned end-to-end estimate fingerprints in `cne`). The active tier
//! is reported by [`active_popcount_kernel`] for bench headers and
//! diagnostics.

use crate::vertex::VertexId;
use std::sync::OnceLock;

/// A fixed-universe set of vertex ids packed into 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl PackedSet {
    /// Packs a sorted, deduplicated, in-range id list over `0..universe`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `ids` is unsorted or contains an id `≥ universe`.
    #[must_use]
    pub fn from_sorted(ids: &[VertexId], universe: usize) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let mut words = vec![0u64; universe.div_ceil(64)];
        for &id in ids {
            debug_assert!(
                (id as usize) < universe,
                "id {id} out of universe {universe}"
            );
            words[id as usize / 64] |= 1u64 << (id as usize % 64);
        }
        Self {
            words,
            universe,
            len: ids.len(),
        }
    }

    /// Wraps an already-built word buffer as a set over `0..universe`,
    /// counting the population in one popcount pass. The entry point for
    /// kernels that produce bitmaps natively (e.g. the packed randomized-
    /// response perturbation in `ldp`), where a round-trip through a sorted
    /// id list would cost the very allocation the kernel exists to avoid.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != ⌈universe/64⌉` or if any bit beyond
    /// `universe` is set (the universe contract every kernel relies on).
    #[must_use]
    pub fn from_words(words: Vec<u64>, universe: usize) -> Self {
        assert_eq!(
            words.len(),
            universe.div_ceil(64),
            "word count must match the universe"
        );
        if !universe.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                assert_eq!(
                    last >> (universe % 64),
                    0,
                    "bits beyond the universe must be clear"
                );
            }
        }
        let len = popcount(&words) as usize;
        Self {
            words,
            universe,
            len,
        }
    }

    /// The number of vertex slots this set ranges over.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The number of ids in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words (`⌈universe/64⌉` of them), for callers composing
    /// custom word-parallel kernels (e.g. [`popcount_and`] against a
    /// scratch-packed operand).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Constant-time membership test.
    #[must_use]
    pub fn contains(&self, id: VertexId) -> bool {
        let idx = id as usize;
        idx < self.universe && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Word-parallel intersection size: `AND` + popcount over the packed
    /// words, evaluated by the runtime-dispatched [`popcount_and`] kernel.
    /// `O(universe / 64)` regardless of the operand densities.
    ///
    /// # Panics
    ///
    /// Panics if the two sets range over different universes.
    #[must_use]
    pub fn intersection_size(&self, other: &PackedSet) -> u64 {
        assert_eq!(
            self.universe, other.universe,
            "packed sets must share a universe"
        );
        popcount_and(&self.words, &other.words)
    }

    /// Intersection size against a sorted id list: one `O(1)` membership
    /// probe per element of `ids`. The cheap path when `ids` is much
    /// sparser than `universe / 64` words.
    #[must_use]
    pub fn intersection_size_sorted(&self, ids: &[VertexId]) -> u64 {
        ids.iter().filter(|&&id| self.contains(id)).count() as u64
    }

    /// Unpacks back to a sorted id list (mainly for tests and debugging).
    #[must_use]
    pub fn to_sorted_ids(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.len);
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push((w * 64 + b) as VertexId);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// One carry-save-adder step: `a + b + c` as a (sum, carry) bit pair.
#[inline]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let partial = a ^ b;
    (partial ^ c, (a & b) | (partial & c))
}

/// The environment variable that pins dispatch to the portable kernels
/// (checked once, at first use): `CNE_FORCE_PORTABLE_KERNELS=1`.
pub const FORCE_PORTABLE_ENV: &str = "CNE_FORCE_PORTABLE_KERNELS";

/// The resolved popcount kernel family: one function pointer per entry
/// point, picked once at first use and cached for the process lifetime.
struct PopcountKernels {
    and: fn(&[u64], &[u64]) -> u64,
    plain: fn(&[u64]) -> u64,
    name: &'static str,
}

/// Selects the kernel tier. `force_portable` short-circuits feature
/// detection (the `CNE_FORCE_PORTABLE_KERNELS=1` escape hatch, split out so
/// tests can exercise the selection logic without mutating the process
/// environment).
fn select_popcount_kernels(force_portable: bool) -> PopcountKernels {
    #[cfg(target_arch = "x86_64")]
    {
        if !force_portable {
            if is_x86_feature_detected!("avx2") {
                return PopcountKernels {
                    and: x86::popcount_and_avx2_safe,
                    plain: x86::popcount_avx2_safe,
                    name: "avx2",
                };
            }
            if is_x86_feature_detected!("popcnt") {
                return PopcountKernels {
                    and: x86::popcount_and_popcnt_safe,
                    plain: x86::popcount_popcnt_safe,
                    name: "popcnt",
                };
            }
        }
    }
    let _ = force_portable;
    PopcountKernels {
        and: popcount_and_portable,
        plain: popcount_portable,
        name: "portable",
    }
}

/// The detect-once cache behind [`popcount_and`] and [`popcount`].
fn popcount_kernels() -> &'static PopcountKernels {
    static KERNELS: OnceLock<PopcountKernels> = OnceLock::new();
    KERNELS.get_or_init(|| {
        let force = std::env::var(FORCE_PORTABLE_ENV).is_ok_and(|v| v == "1");
        select_popcount_kernels(force)
    })
}

/// The name of the popcount kernel tier runtime dispatch selected:
/// `"avx2"`, `"popcnt"`, or `"portable"`. Intended for bench report
/// headers, so cross-machine ratio comparisons are interpretable.
#[must_use]
pub fn active_popcount_kernel() -> &'static str {
    popcount_kernels().name
}

/// `AND`-then-popcount over two word slices, runtime-dispatched to the
/// fastest kernel the CPU supports (see the module-level *Kernel dispatch*
/// section). All tiers return the exact count, so the choice never changes
/// results — only throughput.
///
/// The shared kernel behind [`PackedSet::intersection_size`] and the scratch
/// pack path; counts `min(a.len(), b.len())` word pairs.
#[must_use]
pub fn popcount_and(a: &[u64], b: &[u64]) -> u64 {
    // Truncate both slices to the common length up front so every kernel
    // sees index-aligned operands regardless of input lengths.
    let len = a.len().min(b.len());
    (popcount_kernels().and)(&a[..len], &b[..len])
}

/// The portable baseline for [`popcount_and`]: the Harley–Seal carry-save
/// kernel. Blocks of 16 word pairs are folded into ones/twos/fours/eights
/// counter planes with pure bit operations, so only one full `count_ones`
/// runs per 16 words (plus four at the end). On targets where `count_ones`
/// lowers to a ~13-op SWAR sequence this measures ~1.4× faster than the
/// straight per-word loop ([`popcount_and_scalar`]). No `unsafe`, counts
/// are exact, and the chunked shape keeps the bit-plane chains independent
/// for the out-of-order core.
///
/// Requires `a.len() == b.len()` only in the sense that extra words of the
/// longer slice are ignored (same min-length contract as the dispatcher).
#[must_use]
pub fn popcount_and_portable(a: &[u64], b: &[u64]) -> u64 {
    let len = a.len().min(b.len());
    let (a, b) = (&a[..len], &b[..len]);
    let a_chunks = a.chunks_exact(16);
    let b_chunks = b.chunks_exact(16);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    let mut total = 0u64;
    let (mut ones, mut twos, mut fours, mut eights) = (0u64, 0u64, 0u64, 0u64);
    for (ca, cb) in a_chunks.zip(b_chunks) {
        let w = |i: usize| ca[i] & cb[i];
        let (s, twos_a) = csa(ones, w(0), w(1));
        let (s, twos_b) = csa(s, w(2), w(3));
        ones = s;
        let (t, fours_a) = csa(twos, twos_a, twos_b);
        let (s, twos_a) = csa(ones, w(4), w(5));
        let (s, twos_b) = csa(s, w(6), w(7));
        ones = s;
        let (t, fours_b) = csa(t, twos_a, twos_b);
        twos = t;
        let (f, eights_a) = csa(fours, fours_a, fours_b);
        let (s, twos_a) = csa(ones, w(8), w(9));
        let (s, twos_b) = csa(s, w(10), w(11));
        ones = s;
        let (t, fours_a) = csa(twos, twos_a, twos_b);
        let (s, twos_a) = csa(ones, w(12), w(13));
        let (s, twos_b) = csa(s, w(14), w(15));
        ones = s;
        let (t, fours_b) = csa(t, twos_a, twos_b);
        twos = t;
        let (f, eights_b) = csa(f, fours_a, fours_b);
        fours = f;
        let (e, sixteens) = csa(eights, eights_a, eights_b);
        eights = e;
        total += u64::from(sixteens.count_ones());
    }
    let tail: u64 = a_rem
        .iter()
        .zip(b_rem)
        .map(|(x, y)| u64::from((x & y).count_ones()))
        .sum();
    16 * total
        + 8 * u64::from(eights.count_ones())
        + 4 * u64::from(fours.count_ones())
        + 2 * u64::from(twos.count_ones())
        + u64::from(ones.count_ones())
        + tail
}

/// The straight-line scalar reference for [`popcount_and`]: one
/// `AND` + `count_ones` per word, no unrolling.
///
/// Kept as the ground truth the unrolled kernel is tested against, and as
/// the comparison point for the popcount micro benchmark.
#[must_use]
pub fn popcount_and_scalar(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x & y).count_ones()))
        .sum()
}

/// Population count of one word slice, runtime-dispatched exactly like
/// [`popcount_and`]. Used by [`PackedSet::from_words`] (the packed
/// randomized-response entry point) and the engine's layer-density stats.
#[must_use]
pub fn popcount(a: &[u64]) -> u64 {
    (popcount_kernels().plain)(a)
}

/// The portable baseline for [`popcount`] (`Σ count_ones`).
#[must_use]
pub fn popcount_portable(a: &[u64]) -> u64 {
    a.iter().map(|x| u64::from(x.count_ones())).sum()
}

/// Hardware kernels, selected by [`select_popcount_kernels`] only after the
/// matching CPUID feature check succeeded.
///
/// The only `unsafe` in the crate: `#[target_feature]` functions and the
/// intrinsics they wrap. Safety rests on the dispatch contract — a kernel's
/// safe shim is placed in the process-wide table exclusively behind its
/// `is_x86_feature_detected!` check.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_loadu_si256,
        _mm256_or_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8, _mm256_setzero_si256,
        _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Per-byte popcount of a 256-bit vector via two `vpshufb` nibble
    /// lookups, horizontally folded into four 64-bit lane sums by
    /// `vpsadbw` (Muła's method).
    #[inline(always)]
    unsafe fn popcount_256(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// Vector carry-save-adder step: `(h, l) = a + b + c` as bit planes.
    #[inline(always)]
    unsafe fn csa_256(a: __m256i, b: __m256i, c: __m256i) -> (__m256i, __m256i) {
        let u = _mm256_xor_si256(a, b);
        (
            _mm256_xor_si256(u, c),
            _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c)),
        )
    }

    /// Sums the four 64-bit lanes of an accumulator vector.
    #[inline(always)]
    unsafe fn hsum_epi64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), v);
        lanes[0] + lanes[1] + lanes[2] + lanes[3]
    }

    /// Harley–Seal popcount on 256-bit vectors: 16 vectors (64 words) per
    /// block are CSA-folded so only one `popcount_256` runs per block; the
    /// residual bit planes and the scalar tail use hardware `popcnt`.
    ///
    /// `LOAD` produces the next vector (an `AND` of two streams for the
    /// intersection kernel, a single load for the plain one); generic so
    /// both entry points share the one carefully-checked accumulation loop.
    #[inline(always)]
    unsafe fn harley_seal_256<const AND: bool>(a: &[u64], b: &[u64]) -> u64 {
        debug_assert!(!AND || b.len() >= a.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let load = |i: usize| {
            let va = _mm256_loadu_si256(ap.add(i).cast::<__m256i>());
            if AND {
                _mm256_and_si256(va, _mm256_loadu_si256(bp.add(i).cast::<__m256i>()))
            } else {
                va
            }
        };
        let mut acc = _mm256_setzero_si256();
        let mut ones = _mm256_setzero_si256();
        let mut twos = _mm256_setzero_si256();
        let mut fours = _mm256_setzero_si256();
        let mut eights = _mm256_setzero_si256();
        let mut i = 0usize;
        // 16 vectors x 4 words = 64 words per Harley-Seal block.
        while i + 64 <= n {
            let (s, twos_a) = csa_256(ones, load(i), load(i + 4));
            let (s, twos_b) = csa_256(s, load(i + 8), load(i + 12));
            ones = s;
            let (t, fours_a) = csa_256(twos, twos_a, twos_b);
            let (s, twos_a) = csa_256(ones, load(i + 16), load(i + 20));
            let (s, twos_b) = csa_256(s, load(i + 24), load(i + 28));
            ones = s;
            let (t, fours_b) = csa_256(t, twos_a, twos_b);
            twos = t;
            let (f, eights_a) = csa_256(fours, fours_a, fours_b);
            let (s, twos_a) = csa_256(ones, load(i + 32), load(i + 36));
            let (s, twos_b) = csa_256(s, load(i + 40), load(i + 44));
            ones = s;
            let (t, fours_a) = csa_256(twos, twos_a, twos_b);
            let (s, twos_a) = csa_256(ones, load(i + 48), load(i + 52));
            let (s, twos_b) = csa_256(s, load(i + 56), load(i + 60));
            ones = s;
            let (t, fours_b) = csa_256(t, twos_a, twos_b);
            twos = t;
            let (f, eights_b) = csa_256(f, fours_a, fours_b);
            fours = f;
            let (e, sixteens) = csa_256(eights, eights_a, eights_b);
            eights = e;
            acc = _mm256_add_epi64(acc, popcount_256(sixteens));
            i += 64;
        }
        let mut total = 16 * hsum_epi64(acc)
            + 8 * hsum_epi64(popcount_256(eights))
            + 4 * hsum_epi64(popcount_256(fours))
            + 2 * hsum_epi64(popcount_256(twos))
            + hsum_epi64(popcount_256(ones));
        while i < n {
            let w = if AND { a[i] & b[i] } else { a[i] };
            total += u64::from(w.count_ones());
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn popcount_and_avx2(a: &[u64], b: &[u64]) -> u64 {
        harley_seal_256::<true>(a, b)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn popcount_avx2(a: &[u64]) -> u64 {
        harley_seal_256::<false>(a, &[])
    }

    /// Unrolled hardware-popcnt loop: four independent accumulators keep
    /// the `popcnt` dependency chains apart (the instruction's
    /// false output dependency on older cores serializes a single chain).
    #[target_feature(enable = "popcnt")]
    unsafe fn popcount_and_popcnt(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let ac = a.chunks_exact(4);
        let bc = b.chunks_exact(4);
        let (ar, br) = (ac.remainder(), bc.remainder());
        for (x, y) in ac.zip(bc) {
            acc[0] += u64::from((x[0] & y[0]).count_ones());
            acc[1] += u64::from((x[1] & y[1]).count_ones());
            acc[2] += u64::from((x[2] & y[2]).count_ones());
            acc[3] += u64::from((x[3] & y[3]).count_ones());
        }
        let tail: u64 = ar
            .iter()
            .zip(br)
            .map(|(x, y)| u64::from((x & y).count_ones()))
            .sum();
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    #[target_feature(enable = "popcnt")]
    unsafe fn popcount_popcnt(a: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let ac = a.chunks_exact(4);
        let tail: u64 = ac
            .remainder()
            .iter()
            .map(|x| u64::from(x.count_ones()))
            .sum();
        for x in ac {
            acc[0] += u64::from(x[0].count_ones());
            acc[1] += u64::from(x[1].count_ones());
            acc[2] += u64::from(x[2].count_ones());
            acc[3] += u64::from(x[3].count_ones());
        }
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    // Safe fn-pointer shims: stored in the dispatch table only after the
    // matching `is_x86_feature_detected!` check succeeded, which is exactly
    // the safety contract of the `#[target_feature]` functions they call.
    pub(super) fn popcount_and_avx2_safe(a: &[u64], b: &[u64]) -> u64 {
        unsafe { popcount_and_avx2(a, b) }
    }
    pub(super) fn popcount_avx2_safe(a: &[u64]) -> u64 {
        unsafe { popcount_avx2(a) }
    }
    pub(super) fn popcount_and_popcnt_safe(a: &[u64], b: &[u64]) -> u64 {
        unsafe { popcount_and_popcnt(a, b) }
    }
    pub(super) fn popcount_popcnt_safe(a: &[u64]) -> u64 {
        unsafe { popcount_popcnt(a) }
    }
}

/// Sets bit `id` in a packed word buffer.
#[inline]
pub fn set_bit(words: &mut [u64], id: usize) {
    words[id / 64] |= 1u64 << (id % 64);
}

/// Clears bit `id` in a packed word buffer.
#[inline]
pub fn clear_bit(words: &mut [u64], id: usize) {
    words[id / 64] &= !(1u64 << (id % 64));
}

/// A reusable word buffer for pack-then-popcount intersections.
///
/// The uncached batch path packs a candidate's sorted id list into a fresh
/// `⌈universe/64⌉`-word bitmap on every call. Holding one `PackScratch` per
/// worker (see `cne::engine`'s scratch arena) re-zeroes the same buffer
/// instead, so the per-candidate loop performs zero heap allocations after
/// the first pack at each universe size.
#[derive(Debug, Clone, Default)]
pub struct PackScratch {
    words: Vec<u64>,
}

impl PackScratch {
    /// Creates an empty scratch (no buffer allocated yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs a sorted id list over `0..universe` into the scratch buffer,
    /// returning the packed words. Reuses (re-zeroing) the existing buffer
    /// whenever its capacity suffices.
    ///
    /// # Panics
    ///
    /// Panics (debug) under the same contract as
    /// [`PackedSet::from_sorted`]: `ids` sorted, strictly increasing, and
    /// in range.
    pub fn pack(&mut self, ids: &[VertexId], universe: usize) -> &[u64] {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let words = universe.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        for &id in ids {
            debug_assert!(
                (id as usize) < universe,
                "id {id} out of universe {universe}"
            );
            self.words[id as usize / 64] |= 1u64 << (id as usize % 64);
        }
        &self.words
    }
}

/// Degree-aware intersection: chooses the cheapest strategy for counting
/// `|a ∩ b|` given that a packed form of `b` is already available.
///
/// * `a` much sparser than one probe per packed word → membership probes,
/// * otherwise the caller should pack `a` too and use popcount; this
///   function does that packing when it pays off (`|a|` greater than
///   roughly twice the word count, the break-even point of one pack pass
///   plus the popcount loop versus per-element probes).
#[must_use]
pub fn intersection_size_degree_aware(a: &[VertexId], b_packed: &PackedSet) -> u64 {
    let words = b_packed.universe().div_ceil(64);
    if a.len() <= 2 * words {
        b_packed.intersection_size_sorted(a)
    } else {
        PackedSet::from_sorted(a, b_packed.universe()).intersection_size(b_packed)
    }
}

/// Words per tile of [`popcount_and_multi`]: 8 KiB of `a`, small enough to
/// stay L1-resident across all row passes of the tile.
const MULTI_TILE_WORDS: usize = 1024;

/// Counts `|a ∩ rowᵢ|` for several packed rows against one shared word
/// stream, writing one count per row into `out`.
///
/// Equal to `out[i] = popcount_and(a, rows[i])` for every row (including
/// the shorter-operand truncation), but computed tile-by-tile: an 8 KiB
/// tile of `a` is counted against every row before moving on, so `a` is
/// streamed from memory **once** instead of once per row — the memory-
/// bound case this exists for is one candidate adjacency intersected
/// against many noisy target rows. Each tile count goes through the same
/// runtime-dispatched kernel as [`popcount_and`]; counts are exact
/// integers, so tiling cannot change any result.
///
/// # Panics
///
/// Panics if `rows` and `out` have different lengths.
pub fn popcount_and_multi(a: &[u64], rows: &[&[u64]], out: &mut [u64]) {
    assert_eq!(rows.len(), out.len(), "one output count per row");
    out.fill(0);
    let mut start = 0usize;
    while start < a.len() {
        let end = (start + MULTI_TILE_WORDS).min(a.len());
        let tile = &a[start..end];
        for (slot, row) in out.iter_mut().zip(rows.iter()) {
            let row_tile = &row[start.min(row.len())..end.min(row.len())];
            *slot += popcount_and(tile, row_tile);
        }
        start = end;
    }
}

/// [`intersection_size_degree_aware`] with a caller-provided pack buffer:
/// the dense branch packs `a` into `scratch` instead of allocating a fresh
/// `PackedSet`. Strategy threshold and count are identical, so the result
/// is bit-for-bit the same.
#[must_use]
pub fn intersection_size_degree_aware_into(
    a: &[VertexId],
    b_packed: &PackedSet,
    scratch: &mut PackScratch,
) -> u64 {
    let words = b_packed.universe().div_ceil(64);
    if a.len() <= 2 * words {
        b_packed.intersection_size_sorted(a)
    } else {
        popcount_and(scratch.pack(a, b_packed.universe()), &b_packed.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common_neighbors::intersection_size;

    #[test]
    fn pack_and_unpack_round_trip() {
        let ids: Vec<VertexId> = vec![0, 1, 63, 64, 65, 127, 200];
        let packed = PackedSet::from_sorted(&ids, 256);
        assert_eq!(packed.len(), ids.len());
        assert_eq!(packed.universe(), 256);
        assert_eq!(packed.to_sorted_ids(), ids);
        for id in 0..256u32 {
            assert_eq!(packed.contains(id), ids.binary_search(&id).is_ok());
        }
    }

    #[test]
    fn popcount_intersection_matches_merge() {
        let a: Vec<VertexId> = (0..500).step_by(3).collect();
        let b: Vec<VertexId> = (0..500).step_by(5).collect();
        let pa = PackedSet::from_sorted(&a, 500);
        let pb = PackedSet::from_sorted(&b, 500);
        assert_eq!(pa.intersection_size(&pb), intersection_size(&a, &b));
        assert_eq!(pa.intersection_size(&pb), pb.intersection_size(&pa));
    }

    #[test]
    fn sorted_probe_intersection_matches_merge() {
        let sparse: Vec<VertexId> = vec![7, 90, 333, 499];
        let dense: Vec<VertexId> = (0..500).filter(|v| v % 2 == 1).collect();
        let packed = PackedSet::from_sorted(&dense, 500);
        assert_eq!(
            packed.intersection_size_sorted(&sparse),
            intersection_size(&sparse, &dense)
        );
    }

    #[test]
    fn degree_aware_matches_merge_on_both_branches() {
        let universe = 1000;
        let dense: Vec<VertexId> = (0..1000).filter(|v| v % 3 != 0).collect();
        let packed = PackedSet::from_sorted(&dense, universe);
        // Sparse probe branch.
        let sparse: Vec<VertexId> = vec![1, 2, 3, 500, 999];
        assert_eq!(
            intersection_size_degree_aware(&sparse, &packed),
            intersection_size(&sparse, &dense)
        );
        // Pack-and-popcount branch.
        let medium: Vec<VertexId> = (0..1000).step_by(2).collect();
        assert_eq!(
            intersection_size_degree_aware(&medium, &packed),
            intersection_size(&medium, &dense)
        );
    }

    #[test]
    fn unrolled_popcount_matches_scalar_reference() {
        // Word counts straddling the 16-word Harley–Seal block boundary
        // (0..=9 exercises the pure-remainder path; 16..=40 covers one and
        // two blocks plus remainders).
        for words in (0..10usize).chain(16..41) {
            let a: Vec<u64> = (0..words as u64)
                .map(|w| w.wrapping_mul(0x9E37_79B9))
                .collect();
            let b: Vec<u64> = (0..words as u64)
                .map(|w| (w ^ 0x5555).wrapping_mul(0x0101_0101_0101_0101))
                .collect();
            assert_eq!(
                popcount_and(&a, &b),
                popcount_and_scalar(&a, &b),
                "{words} words"
            );
        }
        // Unequal lengths pair words by index over the common prefix
        // (min-length contract), never by misaligned remainders.
        let a = vec![u64::MAX; 20];
        let b: Vec<u64> = (0..36u64).map(|i| (1u64 << (i % 63)) - 1).collect();
        assert_eq!(popcount_and(&a, &b), popcount_and(&a, &b[..20]));
        assert_eq!(popcount_and(&a, &b), popcount_and_scalar(&a, &b));
    }

    #[test]
    fn scratch_pack_matches_fresh_pack() {
        let universe = 777usize; // 13 words, remainder path exercised
        let dense: Vec<VertexId> = (0..777).filter(|v| v % 3 != 0).collect();
        let packed = PackedSet::from_sorted(&dense, universe);
        let mut scratch = PackScratch::new();
        for step in [2usize, 5, 7] {
            let a: Vec<VertexId> = (0..777).step_by(step).collect();
            assert_eq!(
                intersection_size_degree_aware_into(&a, &packed, &mut scratch),
                intersection_size_degree_aware(&a, &packed),
                "step {step}"
            );
        }
        // Sparse probe branch also agrees (scratch untouched there).
        let sparse: Vec<VertexId> = vec![3, 100, 776];
        assert_eq!(
            intersection_size_degree_aware_into(&sparse, &packed, &mut scratch),
            intersection_size(&sparse, &dense)
        );
        // Reuse across shrinking universes re-zeroes correctly.
        let small_dense: Vec<VertexId> = (0..100).collect();
        let small_packed = PackedSet::from_sorted(&small_dense, 100);
        let a: Vec<VertexId> = (0..100).step_by(2).collect();
        assert_eq!(
            intersection_size_degree_aware_into(&a, &small_packed, &mut scratch),
            50
        );
    }

    #[test]
    fn from_words_matches_from_sorted() {
        let ids: Vec<VertexId> = vec![0, 1, 63, 64, 65, 127, 200];
        let packed = PackedSet::from_sorted(&ids, 256);
        let rebuilt = PackedSet::from_words(packed.as_words().to_vec(), 256);
        assert_eq!(rebuilt, packed);
        assert_eq!(rebuilt.len(), ids.len());
        assert_eq!(rebuilt.to_sorted_ids(), ids);
        // Non-multiple-of-64 universe keeps its trailing-bit invariant.
        let small = PackedSet::from_sorted(&[0, 76], 77);
        let again = PackedSet::from_words(small.as_words().to_vec(), 77);
        assert_eq!(again.len(), 2);
        assert!(again.contains(76));
    }

    #[test]
    #[should_panic(expected = "beyond the universe")]
    fn from_words_rejects_out_of_universe_bits() {
        let _ = PackedSet::from_words(vec![1u64 << 40], 33);
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn from_words_rejects_wrong_word_count() {
        let _ = PackedSet::from_words(vec![0u64; 3], 100);
    }

    #[test]
    fn bit_helpers_and_popcount() {
        let mut words = vec![0u64; 4];
        set_bit(&mut words, 0);
        set_bit(&mut words, 65);
        set_bit(&mut words, 255);
        assert_eq!(popcount(&words), 3);
        clear_bit(&mut words, 65);
        assert_eq!(popcount(&words), 2);
        assert_eq!(words[1], 0);
    }

    #[test]
    fn empty_sets() {
        let empty = PackedSet::from_sorted(&[], 100);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        let other = PackedSet::from_sorted(&[5, 50], 100);
        assert_eq!(empty.intersection_size(&other), 0);
        assert_eq!(other.intersection_size_sorted(&[]), 0);
        assert!(empty.to_sorted_ids().is_empty());
    }

    #[test]
    fn zero_universe() {
        let s = PackedSet::from_sorted(&[], 0);
        assert_eq!(s.universe(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    #[should_panic(expected = "share a universe")]
    fn mismatched_universes_panic() {
        let a = PackedSet::from_sorted(&[1], 100);
        let b = PackedSet::from_sorted(&[1], 200);
        let _ = a.intersection_size(&b);
    }

    /// Deterministic word-pattern generator for the kernel equivalence
    /// tests: a SplitMix64-style stream keyed by (salt, index).
    fn pattern(salt: u64, i: u64) -> u64 {
        let mut z = salt
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Dispatcher == Harley–Seal == scalar on adversarial word lengths:
    /// 0 and 1 (degenerate), 15/16/17 (the popcnt unroll and the scalar
    /// Harley–Seal block boundary), 63/64/65 (the AVX2 block boundary),
    /// and 4096 (many full blocks), over random, all-ones, and all-zeros
    /// planes.
    #[test]
    fn dispatched_kernels_match_portable_and_scalar() {
        for words in [0usize, 1, 15, 16, 17, 63, 64, 65, 4096] {
            let mut planes: Vec<(Vec<u64>, Vec<u64>)> = vec![
                (vec![u64::MAX; words], vec![u64::MAX; words]),
                (vec![0u64; words], vec![u64::MAX; words]),
                (vec![0u64; words], vec![0u64; words]),
            ];
            for salt in 0..4u64 {
                let a: Vec<u64> = (0..words as u64).map(|i| pattern(salt, i)).collect();
                let b: Vec<u64> = (0..words as u64)
                    .map(|i| pattern(salt ^ 0xDEAD, i))
                    .collect();
                planes.push((a, b));
            }
            for (a, b) in &planes {
                let reference = popcount_and_scalar(a, b);
                assert_eq!(popcount_and(a, b), reference, "dispatch, {words} words");
                assert_eq!(
                    popcount_and_portable(a, b),
                    reference,
                    "portable, {words} words"
                );
                let plain_ref: u64 = a.iter().map(|x| u64::from(x.count_ones())).sum();
                assert_eq!(popcount(a), plain_ref, "plain dispatch, {words} words");
                assert_eq!(
                    popcount_portable(a),
                    plain_ref,
                    "plain portable, {words} words"
                );
            }
        }
    }

    /// Tiled multi-row counting == per-row `popcount_and` on lengths that
    /// straddle the tile boundary (1023/1024/1025), with rows both shorter
    /// and longer than `a`, and with zero rows.
    #[test]
    fn popcount_and_multi_matches_per_row() {
        for words in [0usize, 1, 65, 1023, 1024, 1025, 3000] {
            let a: Vec<u64> = (0..words as u64).map(|i| pattern(21, i)).collect();
            let rows: Vec<Vec<u64>> = [words, words / 2, words + 200, 0]
                .iter()
                .enumerate()
                .map(|(r, &len)| {
                    (0..len as u64)
                        .map(|i| pattern(100 + r as u64, i))
                        .collect()
                })
                .collect();
            let row_refs: Vec<&[u64]> = rows.iter().map(Vec::as_slice).collect();
            let mut out = vec![u64::MAX; row_refs.len()];
            popcount_and_multi(&a, &row_refs, &mut out);
            for (r, row) in row_refs.iter().enumerate() {
                assert_eq!(out[r], popcount_and(&a, row), "{words} words, row {r}");
            }
            let mut empty: [u64; 0] = [];
            popcount_and_multi(&a, &[], &mut empty);
        }
    }

    /// All selectable kernel tiers agree with the scalar reference (the
    /// dispatch-table variant of the test above: exercises the hardware
    /// tiers even when the cached process-wide choice is pinned portable
    /// via `CNE_FORCE_PORTABLE_KERNELS`).
    #[test]
    fn every_selectable_tier_matches_scalar() {
        let forced = select_popcount_kernels(true);
        assert_eq!(forced.name, "portable");
        let detected = select_popcount_kernels(false);
        let a: Vec<u64> = (0..257u64).map(|i| pattern(7, i)).collect();
        let b: Vec<u64> = (0..257u64).map(|i| pattern(13, i)).collect();
        let reference = popcount_and_scalar(&a, &b);
        for k in [&forced, &detected] {
            assert_eq!((k.and)(&a, &b), reference, "tier {}", k.name);
            assert_eq!(
                (k.plain)(&a),
                a.iter().map(|x| u64::from(x.count_ones())).sum::<u64>(),
                "tier {}",
                k.name
            );
        }
        assert!(["avx2", "popcnt", "portable"].contains(&active_popcount_kernel()));
    }
}

//! Bit-packed vertex sets with word-parallel (popcount) intersection.
//!
//! Randomized-response noisy neighbor lists are *dense*: a vertex with true
//! degree `d` in an opposite layer of size `n` reports `≈ d + p·n` noisy
//! neighbors, and at ε = 1 the flip probability `p ≈ 0.27` makes the noisy
//! list a constant fraction of the whole layer. Intersecting two such lists
//! with a sorted merge costs one branchy comparison per element; packing each
//! list into `⌈n/64⌉` machine words turns the same intersection into an
//! `AND` + `popcount` loop that processes 64 candidates per instruction.
//!
//! [`intersection_size_degree_aware`] picks the cheapest of the three
//! available strategies (sorted merge, one-sided membership probes into a
//! packed set, word-parallel popcount) from the operand densities; the `ldp`
//! crate's noisy-neighborhood views and the `cne` batch engine both route
//! their common-neighbor counts through it.

use crate::vertex::VertexId;

/// A fixed-universe set of vertex ids packed into 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl PackedSet {
    /// Packs a sorted, deduplicated, in-range id list over `0..universe`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `ids` is unsorted or contains an id `≥ universe`.
    #[must_use]
    pub fn from_sorted(ids: &[VertexId], universe: usize) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let mut words = vec![0u64; universe.div_ceil(64)];
        for &id in ids {
            debug_assert!(
                (id as usize) < universe,
                "id {id} out of universe {universe}"
            );
            words[id as usize / 64] |= 1u64 << (id as usize % 64);
        }
        Self {
            words,
            universe,
            len: ids.len(),
        }
    }

    /// The number of vertex slots this set ranges over.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The number of ids in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Constant-time membership test.
    #[must_use]
    pub fn contains(&self, id: VertexId) -> bool {
        let idx = id as usize;
        idx < self.universe && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Word-parallel intersection size: `AND` + popcount over the packed
    /// words. `O(universe / 64)` regardless of the operand densities.
    ///
    /// # Panics
    ///
    /// Panics if the two sets range over different universes.
    #[must_use]
    pub fn intersection_size(&self, other: &PackedSet) -> u64 {
        assert_eq!(
            self.universe, other.universe,
            "packed sets must share a universe"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| u64::from((a & b).count_ones()))
            .sum()
    }

    /// Intersection size against a sorted id list: one `O(1)` membership
    /// probe per element of `ids`. The cheap path when `ids` is much
    /// sparser than `universe / 64` words.
    #[must_use]
    pub fn intersection_size_sorted(&self, ids: &[VertexId]) -> u64 {
        ids.iter().filter(|&&id| self.contains(id)).count() as u64
    }

    /// Unpacks back to a sorted id list (mainly for tests and debugging).
    #[must_use]
    pub fn to_sorted_ids(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.len);
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push((w * 64 + b) as VertexId);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// Degree-aware intersection: chooses the cheapest strategy for counting
/// `|a ∩ b|` given that a packed form of `b` is already available.
///
/// * `a` much sparser than one probe per packed word → membership probes,
/// * otherwise the caller should pack `a` too and use popcount; this
///   function does that packing when it pays off (`|a|` greater than
///   roughly twice the word count, the break-even point of one pack pass
///   plus the popcount loop versus per-element probes).
#[must_use]
pub fn intersection_size_degree_aware(a: &[VertexId], b_packed: &PackedSet) -> u64 {
    let words = b_packed.universe().div_ceil(64);
    if a.len() <= 2 * words {
        b_packed.intersection_size_sorted(a)
    } else {
        PackedSet::from_sorted(a, b_packed.universe()).intersection_size(b_packed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common_neighbors::intersection_size;

    #[test]
    fn pack_and_unpack_round_trip() {
        let ids: Vec<VertexId> = vec![0, 1, 63, 64, 65, 127, 200];
        let packed = PackedSet::from_sorted(&ids, 256);
        assert_eq!(packed.len(), ids.len());
        assert_eq!(packed.universe(), 256);
        assert_eq!(packed.to_sorted_ids(), ids);
        for id in 0..256u32 {
            assert_eq!(packed.contains(id), ids.binary_search(&id).is_ok());
        }
    }

    #[test]
    fn popcount_intersection_matches_merge() {
        let a: Vec<VertexId> = (0..500).step_by(3).collect();
        let b: Vec<VertexId> = (0..500).step_by(5).collect();
        let pa = PackedSet::from_sorted(&a, 500);
        let pb = PackedSet::from_sorted(&b, 500);
        assert_eq!(pa.intersection_size(&pb), intersection_size(&a, &b));
        assert_eq!(pa.intersection_size(&pb), pb.intersection_size(&pa));
    }

    #[test]
    fn sorted_probe_intersection_matches_merge() {
        let sparse: Vec<VertexId> = vec![7, 90, 333, 499];
        let dense: Vec<VertexId> = (0..500).filter(|v| v % 2 == 1).collect();
        let packed = PackedSet::from_sorted(&dense, 500);
        assert_eq!(
            packed.intersection_size_sorted(&sparse),
            intersection_size(&sparse, &dense)
        );
    }

    #[test]
    fn degree_aware_matches_merge_on_both_branches() {
        let universe = 1000;
        let dense: Vec<VertexId> = (0..1000).filter(|v| v % 3 != 0).collect();
        let packed = PackedSet::from_sorted(&dense, universe);
        // Sparse probe branch.
        let sparse: Vec<VertexId> = vec![1, 2, 3, 500, 999];
        assert_eq!(
            intersection_size_degree_aware(&sparse, &packed),
            intersection_size(&sparse, &dense)
        );
        // Pack-and-popcount branch.
        let medium: Vec<VertexId> = (0..1000).step_by(2).collect();
        assert_eq!(
            intersection_size_degree_aware(&medium, &packed),
            intersection_size(&medium, &dense)
        );
    }

    #[test]
    fn empty_sets() {
        let empty = PackedSet::from_sorted(&[], 100);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        let other = PackedSet::from_sorted(&[5, 50], 100);
        assert_eq!(empty.intersection_size(&other), 0);
        assert_eq!(other.intersection_size_sorted(&[]), 0);
        assert!(empty.to_sorted_ids().is_empty());
    }

    #[test]
    fn zero_universe() {
        let s = PackedSet::from_sorted(&[], 0);
        assert_eq!(s.universe(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    #[should_panic(expected = "share a universe")]
    fn mismatched_universes_panic() {
        let a = PackedSet::from_sorted(&[1], 100);
        let b = PackedSet::from_sorted(&[1], 200);
        let _ = a.intersection_size(&b);
    }
}

//! Bit-packed vertex sets with word-parallel (popcount) intersection.
//!
//! Randomized-response noisy neighbor lists are *dense*: a vertex with true
//! degree `d` in an opposite layer of size `n` reports `≈ d + p·n` noisy
//! neighbors, and at ε = 1 the flip probability `p ≈ 0.27` makes the noisy
//! list a constant fraction of the whole layer. Intersecting two such lists
//! with a sorted merge costs one branchy comparison per element; packing each
//! list into `⌈n/64⌉` machine words turns the same intersection into an
//! `AND` + `popcount` loop that processes 64 candidates per instruction.
//!
//! [`intersection_size_degree_aware`] picks the cheapest of the three
//! available strategies (sorted merge, one-sided membership probes into a
//! packed set, word-parallel popcount) from the operand densities; the `ldp`
//! crate's noisy-neighborhood views and the `cne` batch engine both route
//! their common-neighbor counts through it.

use crate::vertex::VertexId;

/// A fixed-universe set of vertex ids packed into 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl PackedSet {
    /// Packs a sorted, deduplicated, in-range id list over `0..universe`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `ids` is unsorted or contains an id `≥ universe`.
    #[must_use]
    pub fn from_sorted(ids: &[VertexId], universe: usize) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let mut words = vec![0u64; universe.div_ceil(64)];
        for &id in ids {
            debug_assert!(
                (id as usize) < universe,
                "id {id} out of universe {universe}"
            );
            words[id as usize / 64] |= 1u64 << (id as usize % 64);
        }
        Self {
            words,
            universe,
            len: ids.len(),
        }
    }

    /// Wraps an already-built word buffer as a set over `0..universe`,
    /// counting the population in one popcount pass. The entry point for
    /// kernels that produce bitmaps natively (e.g. the packed randomized-
    /// response perturbation in `ldp`), where a round-trip through a sorted
    /// id list would cost the very allocation the kernel exists to avoid.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != ⌈universe/64⌉` or if any bit beyond
    /// `universe` is set (the universe contract every kernel relies on).
    #[must_use]
    pub fn from_words(words: Vec<u64>, universe: usize) -> Self {
        assert_eq!(
            words.len(),
            universe.div_ceil(64),
            "word count must match the universe"
        );
        if !universe.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                assert_eq!(
                    last >> (universe % 64),
                    0,
                    "bits beyond the universe must be clear"
                );
            }
        }
        let len = popcount(&words) as usize;
        Self {
            words,
            universe,
            len,
        }
    }

    /// The number of vertex slots this set ranges over.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The number of ids in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words (`⌈universe/64⌉` of them), for callers composing
    /// custom word-parallel kernels (e.g. [`popcount_and`] against a
    /// scratch-packed operand).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Constant-time membership test.
    #[must_use]
    pub fn contains(&self, id: VertexId) -> bool {
        let idx = id as usize;
        idx < self.universe && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Word-parallel intersection size: `AND` + popcount over the packed
    /// words, evaluated with the Harley–Seal carry-save kernel
    /// ([`popcount_and`]). `O(universe / 64)` regardless of the operand
    /// densities.
    ///
    /// # Panics
    ///
    /// Panics if the two sets range over different universes.
    #[must_use]
    pub fn intersection_size(&self, other: &PackedSet) -> u64 {
        assert_eq!(
            self.universe, other.universe,
            "packed sets must share a universe"
        );
        popcount_and(&self.words, &other.words)
    }

    /// Intersection size against a sorted id list: one `O(1)` membership
    /// probe per element of `ids`. The cheap path when `ids` is much
    /// sparser than `universe / 64` words.
    #[must_use]
    pub fn intersection_size_sorted(&self, ids: &[VertexId]) -> u64 {
        ids.iter().filter(|&&id| self.contains(id)).count() as u64
    }

    /// Unpacks back to a sorted id list (mainly for tests and debugging).
    #[must_use]
    pub fn to_sorted_ids(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.len);
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push((w * 64 + b) as VertexId);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// One carry-save-adder step: `a + b + c` as a (sum, carry) bit pair.
#[inline]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let partial = a ^ b;
    (partial ^ c, (a & b) | (partial & c))
}

/// `AND`-then-popcount over two word slices, evaluated with the
/// Harley–Seal carry-save kernel: blocks of 16 word pairs are folded into
/// ones/twos/fours/eights counter planes with pure bit operations, so only
/// one full `count_ones` runs per 16 words (plus four at the end). On the
/// portable baseline — where `count_ones` lowers to a ~13-op SWAR sequence
/// — this measures ~1.4× faster than the straight per-word loop
/// ([`popcount_and_scalar`]); with a hardware popcount it stays
/// competitive. No `unsafe`, counts are exact, and the chunked shape keeps
/// the bit-plane chains independent for the out-of-order core.
///
/// The shared kernel behind [`PackedSet::intersection_size`] and the scratch
/// pack path; counts `min(a.len(), b.len())` word pairs.
#[must_use]
pub fn popcount_and(a: &[u64], b: &[u64]) -> u64 {
    // Truncate both slices to the common length up front so the chunked
    // pass and the remainder pass stay index-aligned when the inputs
    // differ in length.
    let len = a.len().min(b.len());
    let (a, b) = (&a[..len], &b[..len]);
    let a_chunks = a.chunks_exact(16);
    let b_chunks = b.chunks_exact(16);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    let mut total = 0u64;
    let (mut ones, mut twos, mut fours, mut eights) = (0u64, 0u64, 0u64, 0u64);
    for (ca, cb) in a_chunks.zip(b_chunks) {
        let w = |i: usize| ca[i] & cb[i];
        let (s, twos_a) = csa(ones, w(0), w(1));
        let (s, twos_b) = csa(s, w(2), w(3));
        ones = s;
        let (t, fours_a) = csa(twos, twos_a, twos_b);
        let (s, twos_a) = csa(ones, w(4), w(5));
        let (s, twos_b) = csa(s, w(6), w(7));
        ones = s;
        let (t, fours_b) = csa(t, twos_a, twos_b);
        twos = t;
        let (f, eights_a) = csa(fours, fours_a, fours_b);
        let (s, twos_a) = csa(ones, w(8), w(9));
        let (s, twos_b) = csa(s, w(10), w(11));
        ones = s;
        let (t, fours_a) = csa(twos, twos_a, twos_b);
        let (s, twos_a) = csa(ones, w(12), w(13));
        let (s, twos_b) = csa(s, w(14), w(15));
        ones = s;
        let (t, fours_b) = csa(t, twos_a, twos_b);
        twos = t;
        let (f, eights_b) = csa(f, fours_a, fours_b);
        fours = f;
        let (e, sixteens) = csa(eights, eights_a, eights_b);
        eights = e;
        total += u64::from(sixteens.count_ones());
    }
    let tail: u64 = a_rem
        .iter()
        .zip(b_rem)
        .map(|(x, y)| u64::from((x & y).count_ones()))
        .sum();
    16 * total
        + 8 * u64::from(eights.count_ones())
        + 4 * u64::from(fours.count_ones())
        + 2 * u64::from(twos.count_ones())
        + u64::from(ones.count_ones())
        + tail
}

/// The straight-line scalar reference for [`popcount_and`]: one
/// `AND` + `count_ones` per word, no unrolling.
///
/// Kept as the ground truth the unrolled kernel is tested against, and as
/// the comparison point for the popcount micro benchmark.
#[must_use]
pub fn popcount_and_scalar(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x & y).count_ones()))
        .sum()
}

/// Population count of one word slice (`Σ count_ones`).
#[must_use]
pub fn popcount(a: &[u64]) -> u64 {
    a.iter().map(|x| u64::from(x.count_ones())).sum()
}

/// Sets bit `id` in a packed word buffer.
#[inline]
pub fn set_bit(words: &mut [u64], id: usize) {
    words[id / 64] |= 1u64 << (id % 64);
}

/// Clears bit `id` in a packed word buffer.
#[inline]
pub fn clear_bit(words: &mut [u64], id: usize) {
    words[id / 64] &= !(1u64 << (id % 64));
}

/// A reusable word buffer for pack-then-popcount intersections.
///
/// The uncached batch path packs a candidate's sorted id list into a fresh
/// `⌈universe/64⌉`-word bitmap on every call. Holding one `PackScratch` per
/// worker (see `cne::engine`'s scratch arena) re-zeroes the same buffer
/// instead, so the per-candidate loop performs zero heap allocations after
/// the first pack at each universe size.
#[derive(Debug, Clone, Default)]
pub struct PackScratch {
    words: Vec<u64>,
}

impl PackScratch {
    /// Creates an empty scratch (no buffer allocated yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs a sorted id list over `0..universe` into the scratch buffer,
    /// returning the packed words. Reuses (re-zeroing) the existing buffer
    /// whenever its capacity suffices.
    ///
    /// # Panics
    ///
    /// Panics (debug) under the same contract as
    /// [`PackedSet::from_sorted`]: `ids` sorted, strictly increasing, and
    /// in range.
    pub fn pack(&mut self, ids: &[VertexId], universe: usize) -> &[u64] {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let words = universe.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        for &id in ids {
            debug_assert!(
                (id as usize) < universe,
                "id {id} out of universe {universe}"
            );
            self.words[id as usize / 64] |= 1u64 << (id as usize % 64);
        }
        &self.words
    }
}

/// Degree-aware intersection: chooses the cheapest strategy for counting
/// `|a ∩ b|` given that a packed form of `b` is already available.
///
/// * `a` much sparser than one probe per packed word → membership probes,
/// * otherwise the caller should pack `a` too and use popcount; this
///   function does that packing when it pays off (`|a|` greater than
///   roughly twice the word count, the break-even point of one pack pass
///   plus the popcount loop versus per-element probes).
#[must_use]
pub fn intersection_size_degree_aware(a: &[VertexId], b_packed: &PackedSet) -> u64 {
    let words = b_packed.universe().div_ceil(64);
    if a.len() <= 2 * words {
        b_packed.intersection_size_sorted(a)
    } else {
        PackedSet::from_sorted(a, b_packed.universe()).intersection_size(b_packed)
    }
}

/// [`intersection_size_degree_aware`] with a caller-provided pack buffer:
/// the dense branch packs `a` into `scratch` instead of allocating a fresh
/// `PackedSet`. Strategy threshold and count are identical, so the result
/// is bit-for-bit the same.
#[must_use]
pub fn intersection_size_degree_aware_into(
    a: &[VertexId],
    b_packed: &PackedSet,
    scratch: &mut PackScratch,
) -> u64 {
    let words = b_packed.universe().div_ceil(64);
    if a.len() <= 2 * words {
        b_packed.intersection_size_sorted(a)
    } else {
        popcount_and(scratch.pack(a, b_packed.universe()), &b_packed.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common_neighbors::intersection_size;

    #[test]
    fn pack_and_unpack_round_trip() {
        let ids: Vec<VertexId> = vec![0, 1, 63, 64, 65, 127, 200];
        let packed = PackedSet::from_sorted(&ids, 256);
        assert_eq!(packed.len(), ids.len());
        assert_eq!(packed.universe(), 256);
        assert_eq!(packed.to_sorted_ids(), ids);
        for id in 0..256u32 {
            assert_eq!(packed.contains(id), ids.binary_search(&id).is_ok());
        }
    }

    #[test]
    fn popcount_intersection_matches_merge() {
        let a: Vec<VertexId> = (0..500).step_by(3).collect();
        let b: Vec<VertexId> = (0..500).step_by(5).collect();
        let pa = PackedSet::from_sorted(&a, 500);
        let pb = PackedSet::from_sorted(&b, 500);
        assert_eq!(pa.intersection_size(&pb), intersection_size(&a, &b));
        assert_eq!(pa.intersection_size(&pb), pb.intersection_size(&pa));
    }

    #[test]
    fn sorted_probe_intersection_matches_merge() {
        let sparse: Vec<VertexId> = vec![7, 90, 333, 499];
        let dense: Vec<VertexId> = (0..500).filter(|v| v % 2 == 1).collect();
        let packed = PackedSet::from_sorted(&dense, 500);
        assert_eq!(
            packed.intersection_size_sorted(&sparse),
            intersection_size(&sparse, &dense)
        );
    }

    #[test]
    fn degree_aware_matches_merge_on_both_branches() {
        let universe = 1000;
        let dense: Vec<VertexId> = (0..1000).filter(|v| v % 3 != 0).collect();
        let packed = PackedSet::from_sorted(&dense, universe);
        // Sparse probe branch.
        let sparse: Vec<VertexId> = vec![1, 2, 3, 500, 999];
        assert_eq!(
            intersection_size_degree_aware(&sparse, &packed),
            intersection_size(&sparse, &dense)
        );
        // Pack-and-popcount branch.
        let medium: Vec<VertexId> = (0..1000).step_by(2).collect();
        assert_eq!(
            intersection_size_degree_aware(&medium, &packed),
            intersection_size(&medium, &dense)
        );
    }

    #[test]
    fn unrolled_popcount_matches_scalar_reference() {
        // Word counts straddling the 16-word Harley–Seal block boundary
        // (0..=9 exercises the pure-remainder path; 16..=40 covers one and
        // two blocks plus remainders).
        for words in (0..10usize).chain(16..41) {
            let a: Vec<u64> = (0..words as u64)
                .map(|w| w.wrapping_mul(0x9E37_79B9))
                .collect();
            let b: Vec<u64> = (0..words as u64)
                .map(|w| (w ^ 0x5555).wrapping_mul(0x0101_0101_0101_0101))
                .collect();
            assert_eq!(
                popcount_and(&a, &b),
                popcount_and_scalar(&a, &b),
                "{words} words"
            );
        }
        // Unequal lengths pair words by index over the common prefix
        // (min-length contract), never by misaligned remainders.
        let a = vec![u64::MAX; 20];
        let b: Vec<u64> = (0..36u64).map(|i| (1u64 << (i % 63)) - 1).collect();
        assert_eq!(popcount_and(&a, &b), popcount_and(&a, &b[..20]));
        assert_eq!(popcount_and(&a, &b), popcount_and_scalar(&a, &b));
    }

    #[test]
    fn scratch_pack_matches_fresh_pack() {
        let universe = 777usize; // 13 words, remainder path exercised
        let dense: Vec<VertexId> = (0..777).filter(|v| v % 3 != 0).collect();
        let packed = PackedSet::from_sorted(&dense, universe);
        let mut scratch = PackScratch::new();
        for step in [2usize, 5, 7] {
            let a: Vec<VertexId> = (0..777).step_by(step).collect();
            assert_eq!(
                intersection_size_degree_aware_into(&a, &packed, &mut scratch),
                intersection_size_degree_aware(&a, &packed),
                "step {step}"
            );
        }
        // Sparse probe branch also agrees (scratch untouched there).
        let sparse: Vec<VertexId> = vec![3, 100, 776];
        assert_eq!(
            intersection_size_degree_aware_into(&sparse, &packed, &mut scratch),
            intersection_size(&sparse, &dense)
        );
        // Reuse across shrinking universes re-zeroes correctly.
        let small_dense: Vec<VertexId> = (0..100).collect();
        let small_packed = PackedSet::from_sorted(&small_dense, 100);
        let a: Vec<VertexId> = (0..100).step_by(2).collect();
        assert_eq!(
            intersection_size_degree_aware_into(&a, &small_packed, &mut scratch),
            50
        );
    }

    #[test]
    fn from_words_matches_from_sorted() {
        let ids: Vec<VertexId> = vec![0, 1, 63, 64, 65, 127, 200];
        let packed = PackedSet::from_sorted(&ids, 256);
        let rebuilt = PackedSet::from_words(packed.as_words().to_vec(), 256);
        assert_eq!(rebuilt, packed);
        assert_eq!(rebuilt.len(), ids.len());
        assert_eq!(rebuilt.to_sorted_ids(), ids);
        // Non-multiple-of-64 universe keeps its trailing-bit invariant.
        let small = PackedSet::from_sorted(&[0, 76], 77);
        let again = PackedSet::from_words(small.as_words().to_vec(), 77);
        assert_eq!(again.len(), 2);
        assert!(again.contains(76));
    }

    #[test]
    #[should_panic(expected = "beyond the universe")]
    fn from_words_rejects_out_of_universe_bits() {
        let _ = PackedSet::from_words(vec![1u64 << 40], 33);
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn from_words_rejects_wrong_word_count() {
        let _ = PackedSet::from_words(vec![0u64; 3], 100);
    }

    #[test]
    fn bit_helpers_and_popcount() {
        let mut words = vec![0u64; 4];
        set_bit(&mut words, 0);
        set_bit(&mut words, 65);
        set_bit(&mut words, 255);
        assert_eq!(popcount(&words), 3);
        clear_bit(&mut words, 65);
        assert_eq!(popcount(&words), 2);
        assert_eq!(words[1], 0);
    }

    #[test]
    fn empty_sets() {
        let empty = PackedSet::from_sorted(&[], 100);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        let other = PackedSet::from_sorted(&[5, 50], 100);
        assert_eq!(empty.intersection_size(&other), 0);
        assert_eq!(other.intersection_size_sorted(&[]), 0);
        assert!(empty.to_sorted_ids().is_empty());
    }

    #[test]
    fn zero_universe() {
        let s = PackedSet::from_sorted(&[], 0);
        assert_eq!(s.universe(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    #[should_panic(expected = "share a universe")]
    fn mismatched_universes_panic() {
        let a = PackedSet::from_sorted(&[1], 100);
        let b = PackedSet::from_sorted(&[1], 200);
        let _ = a.intersection_size(&b);
    }
}

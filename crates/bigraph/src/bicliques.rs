//! Exact (p,q)-biclique counting for small `p` and `q`.
//!
//! A `(p,q)`-biclique is a complete bipartite subgraph with `p` vertices on
//! one layer and `q` on the other. The paper motivates common-neighbor
//! counting as the pruning primitive of `(p,q)`-biclique counting; this module
//! provides the exact counts (for the small `p`, `q` that are practical to
//! enumerate) so examples and tests can relate the private estimates to that
//! downstream task. `(2,2)`-bicliques are butterflies — see [`crate::motifs`].

use crate::common_neighbors;
use crate::error::{GraphError, Result};
use crate::graph::BipartiteGraph;
use crate::vertex::{Layer, VertexId};

/// Maximum `p` supported by the exact enumerator; larger values would need the
/// specialised algorithms of the biclique-counting literature.
pub const MAX_P: usize = 3;

/// Counts `(p, q)`-bicliques: `p` vertices on `layer`, `q` on the opposite
/// layer, all `p·q` edges present.
///
/// The enumeration picks each `p`-subset of `layer` vertices (for `p ≤ 3`),
/// computes the size `c` of their common neighborhood by iterated sorted-list
/// intersection, and adds `C(c, q)`.
///
/// # Errors
///
/// Returns [`GraphError::Malformed`] when `p` is 0, larger than [`MAX_P`], or
/// `q` is 0.
pub fn count_bicliques(g: &BipartiteGraph, layer: Layer, p: usize, q: usize) -> Result<u64> {
    if p == 0 || q == 0 {
        return Err(GraphError::Malformed {
            reason: "p and q must be at least 1".into(),
        });
    }
    if p > MAX_P {
        return Err(GraphError::Malformed {
            reason: format!("p = {p} exceeds the supported maximum of {MAX_P}"),
        });
    }
    let n = g.layer_size(layer) as VertexId;
    let mut total = 0u64;
    match p {
        1 => {
            for a in 0..n {
                total += choose(g.degree(layer, a) as u64, q as u64);
            }
        }
        2 => {
            for a in 0..n {
                // Only enumerate partners sharing at least one neighbor, via
                // the two-hop neighborhood, to avoid the dense O(n²) loop.
                for b in two_hop_partners(g, layer, a) {
                    if b <= a {
                        continue;
                    }
                    let c = common_neighbors::intersection_size(
                        g.neighbors(layer, a),
                        g.neighbors(layer, b),
                    );
                    total += choose(c, q as u64);
                }
            }
        }
        3 => {
            for a in 0..n {
                let partners: Vec<VertexId> = two_hop_partners(g, layer, a)
                    .into_iter()
                    .filter(|&b| b > a)
                    .collect();
                for (i, &b) in partners.iter().enumerate() {
                    let ab: Vec<VertexId> = intersect(g.neighbors(layer, a), g.neighbors(layer, b));
                    if ab.is_empty() {
                        continue;
                    }
                    for &c_v in &partners[i + 1..] {
                        let abc = common_neighbors::intersection_size(&ab, g.neighbors(layer, c_v));
                        total += choose(abc, q as u64);
                    }
                }
            }
        }
        _ => unreachable!("guarded above"),
    }
    Ok(total)
}

/// Vertices on the same layer as `a` that share at least one neighbor with it.
fn two_hop_partners(g: &BipartiteGraph, layer: Layer, a: VertexId) -> Vec<VertexId> {
    let mut partners: Vec<VertexId> = g
        .neighbors(layer, a)
        .iter()
        .flat_map(|&mid| g.neighbors(layer.opposite(), mid).iter().copied())
        .filter(|&b| b != a)
        .collect();
    partners.sort_unstable();
    partners.dedup();
    partners
}

fn intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Binomial coefficient `C(n, k)` with saturation, sufficient for motif counts.
#[must_use]
pub fn choose(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1u64;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motifs;

    fn complete(a: usize, b: usize) -> BipartiteGraph {
        let edges = (0..a as u32).flat_map(|u| (0..b as u32).map(move |v| (u, v)));
        BipartiteGraph::from_edges(a, b, edges).unwrap()
    }

    #[test]
    fn choose_basics() {
        assert_eq!(choose(5, 0), 1);
        assert_eq!(choose(5, 2), 10);
        assert_eq!(choose(5, 5), 1);
        assert_eq!(choose(3, 4), 0);
        assert_eq!(choose(0, 0), 1);
    }

    #[test]
    fn complete_graph_counts_match_binomials() {
        let g = complete(4, 5);
        // #(p,q)-bicliques in K_{4,5} anchored on the upper layer = C(4,p)·C(5,q)
        for p in 1..=3usize {
            for q in 1..=3usize {
                let expected = choose(4, p as u64) * choose(5, q as u64);
                assert_eq!(
                    count_bicliques(&g, Layer::Upper, p, q).unwrap(),
                    expected,
                    "p={p}, q={q}"
                );
            }
        }
    }

    #[test]
    fn two_two_bicliques_equal_butterflies() {
        let edges = [
            (0u32, 0u32),
            (0, 1),
            (0, 2),
            (1, 1),
            (1, 2),
            (2, 2),
            (2, 0),
            (1, 3),
        ];
        let g = BipartiteGraph::from_edges(3, 4, edges).unwrap();
        let butterflies = motifs::butterfly_count(&g).unwrap();
        assert_eq!(
            count_bicliques(&g, Layer::Upper, 2, 2).unwrap(),
            butterflies
        );
        assert_eq!(
            count_bicliques(&g, Layer::Lower, 2, 2).unwrap(),
            butterflies
        );
    }

    #[test]
    fn one_q_counts_are_degree_binomials() {
        let g = BipartiteGraph::from_edges(2, 5, [(0, 0), (0, 1), (0, 2), (1, 3)]).unwrap();
        // p=1, q=2: C(3,2) + C(1,2) = 3
        assert_eq!(count_bicliques(&g, Layer::Upper, 1, 2).unwrap(), 3);
        // Anchoring on the lower layer: every lower vertex has degree <= 1.
        assert_eq!(count_bicliques(&g, Layer::Lower, 1, 2).unwrap(), 0);
    }

    #[test]
    fn empty_and_sparse_graphs() {
        let g = BipartiteGraph::from_edges(3, 3, std::iter::empty()).unwrap();
        assert_eq!(count_bicliques(&g, Layer::Upper, 2, 2).unwrap(), 0);
        let path = BipartiteGraph::from_edges(2, 2, [(0, 0), (1, 0), (1, 1)]).unwrap();
        assert_eq!(count_bicliques(&path, Layer::Upper, 2, 2).unwrap(), 0);
        assert_eq!(count_bicliques(&path, Layer::Upper, 2, 1).unwrap(), 1);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let g = complete(2, 2);
        assert!(count_bicliques(&g, Layer::Upper, 0, 1).is_err());
        assert!(count_bicliques(&g, Layer::Upper, 1, 0).is_err());
        assert!(count_bicliques(&g, Layer::Upper, 4, 1).is_err());
    }

    #[test]
    fn three_q_on_asymmetric_graph() {
        // u0, u1, u2 all share v0 and v1; u2 additionally has v2.
        let g = BipartiteGraph::from_edges(
            3,
            3,
            [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)],
        )
        .unwrap();
        // (3,1): common neighborhood of {u0,u1,u2} = {v0,v1} -> C(2,1) = 2.
        assert_eq!(count_bicliques(&g, Layer::Upper, 3, 1).unwrap(), 2);
        // (3,2): C(2,2) = 1.
        assert_eq!(count_bicliques(&g, Layer::Upper, 3, 2).unwrap(), 1);
        // (3,3): C(2,3) = 0.
        assert_eq!(count_bicliques(&g, Layer::Upper, 3, 3).unwrap(), 0);
    }
}

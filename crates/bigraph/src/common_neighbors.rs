//! Exact (non-private) common-neighborhood operators.
//!
//! These are the ground-truth computations against which the privacy-preserving
//! estimators in the `cne` crate are evaluated, plus the vertex-similarity
//! measures the paper lists as downstream applications (Jaccard, cosine).

use crate::error::{GraphError, Result};
use crate::graph::BipartiteGraph;
use crate::vertex::{Layer, VertexId};

/// Validates that `u` and `w` form a legal same-layer query pair.
///
/// # Errors
///
/// * [`GraphError::VertexOutOfRange`] if either vertex does not exist.
/// * [`GraphError::InvalidQueryPair`] if `u == w`.
pub fn check_query_pair(g: &BipartiteGraph, layer: Layer, u: VertexId, w: VertexId) -> Result<()> {
    g.check_vertex(layer, u)?;
    g.check_vertex(layer, w)?;
    if u == w {
        return Err(GraphError::InvalidQueryPair {
            reason: format!("query vertices must be distinct, both are {u}"),
        });
    }
    Ok(())
}

/// Exact number of common neighbors `C2(u, w)` of two vertices on `layer`.
///
/// Runs a linear merge over the two sorted adjacency lists, falling back to
/// galloping (binary) search when the degree imbalance is large.
///
/// # Errors
///
/// See [`check_query_pair`].
pub fn count(g: &BipartiteGraph, layer: Layer, u: VertexId, w: VertexId) -> Result<u64> {
    check_query_pair(g, layer, u, w)?;
    let a = g.neighbors(layer, u);
    let b = g.neighbors(layer, w);
    Ok(intersection_size(a, b))
}

/// Exact common-neighbor *set* of two vertices on `layer`.
///
/// # Errors
///
/// See [`check_query_pair`].
pub fn list(g: &BipartiteGraph, layer: Layer, u: VertexId, w: VertexId) -> Result<Vec<VertexId>> {
    check_query_pair(g, layer, u, w)?;
    let a = g.neighbors(layer, u);
    let b = g.neighbors(layer, w);
    let mut out = Vec::new();
    merge_visit(a, b, |x| out.push(x));
    Ok(out)
}

/// The size of the union `|N(u) ∪ N(w)|`.
///
/// # Errors
///
/// See [`check_query_pair`].
pub fn union_size(g: &BipartiteGraph, layer: Layer, u: VertexId, w: VertexId) -> Result<u64> {
    check_query_pair(g, layer, u, w)?;
    let a = g.neighbors(layer, u);
    let b = g.neighbors(layer, w);
    let inter = intersection_size(a, b);
    Ok(a.len() as u64 + b.len() as u64 - inter)
}

/// Jaccard similarity `|N(u) ∩ N(w)| / |N(u) ∪ N(w)|`.
///
/// Returns `0.0` when both neighborhoods are empty.
///
/// # Errors
///
/// See [`check_query_pair`].
pub fn jaccard(g: &BipartiteGraph, layer: Layer, u: VertexId, w: VertexId) -> Result<f64> {
    check_query_pair(g, layer, u, w)?;
    let inter = count(g, layer, u, w)? as f64;
    let uni = union_size(g, layer, u, w)? as f64;
    Ok(if uni == 0.0 { 0.0 } else { inter / uni })
}

/// Cosine similarity `|N(u) ∩ N(w)| / sqrt(deg(u) · deg(w))`.
///
/// Returns `0.0` when either vertex is isolated.
///
/// # Errors
///
/// See [`check_query_pair`].
pub fn cosine(g: &BipartiteGraph, layer: Layer, u: VertexId, w: VertexId) -> Result<f64> {
    check_query_pair(g, layer, u, w)?;
    let du = g.degree(layer, u) as f64;
    let dw = g.degree(layer, w) as f64;
    if du == 0.0 || dw == 0.0 {
        return Ok(0.0);
    }
    let inter = count(g, layer, u, w)? as f64;
    Ok(inter / (du * dw).sqrt())
}

/// Size of the intersection of two sorted, deduplicated slices.
///
/// Uses a linear merge when degrees are comparable and a galloping search of
/// the smaller list into the larger when the ratio exceeds a small threshold —
/// the same adaptive strategy production set-intersection kernels use.
#[must_use]
pub fn intersection_size(a: &[VertexId], b: &[VertexId]) -> u64 {
    let mut n = 0u64;
    merge_visit(a, b, |_| n += 1);
    n
}

/// Visits every element of the intersection of two sorted slices in order.
fn merge_visit(a: &[VertexId], b: &[VertexId], mut visit: impl FnMut(VertexId)) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    // Galloping pays off roughly when |large| / |small| exceeds log2 |large|.
    let ratio_threshold = 8 * (usize::BITS - large.len().leading_zeros()).max(1) as usize;
    if large.len() >= small.len().saturating_mul(ratio_threshold) {
        // Galloping: binary search each element of the small list.
        let mut lo = 0usize;
        for &x in small {
            match large[lo..].binary_search(&x) {
                Ok(pos) => {
                    visit(x);
                    lo += pos + 1;
                }
                Err(pos) => {
                    lo += pos;
                }
            }
            if lo >= large.len() {
                break;
            }
        }
    } else {
        // Linear merge.
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    visit(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn paper_figure_one() -> BipartiteGraph {
        // Figure 1 of the paper (abstracted): u1, u2 share v1, v2, v4 among
        // 100 lower vertices; u2 additionally connects to v100.
        // We use 0-based ids: upper {0,1,2}, lower {0..100}.
        let mut b = GraphBuilder::new(3, 100);
        for v in [0, 1, 3] {
            b.add_edge(0, v).unwrap();
            b.add_edge(1, v).unwrap();
        }
        b.add_edge(1, 99).unwrap();
        b.add_edge(2, 2).unwrap();
        b.build()
    }

    #[test]
    fn counts_match_figure_one() {
        let g = paper_figure_one();
        assert_eq!(count(&g, Layer::Upper, 0, 1).unwrap(), 3);
        assert_eq!(count(&g, Layer::Upper, 0, 2).unwrap(), 0);
        assert_eq!(list(&g, Layer::Upper, 0, 1).unwrap(), vec![0, 1, 3]);
    }

    #[test]
    fn count_is_symmetric() {
        let g = paper_figure_one();
        assert_eq!(
            count(&g, Layer::Upper, 0, 1).unwrap(),
            count(&g, Layer::Upper, 1, 0).unwrap()
        );
    }

    #[test]
    fn union_and_jaccard() {
        let g = paper_figure_one();
        assert_eq!(union_size(&g, Layer::Upper, 0, 1).unwrap(), 4);
        let j = jaccard(&g, Layer::Upper, 0, 1).unwrap();
        assert!((j - 3.0 / 4.0).abs() < 1e-12);
        let c = cosine(&g, Layer::Upper, 0, 1).unwrap();
        assert!((c - 3.0 / (3.0f64 * 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices_have_zero_similarity() {
        let g = BipartiteGraph::from_edges(3, 3, [(0, 0)]).unwrap();
        assert_eq!(count(&g, Layer::Upper, 1, 2).unwrap(), 0);
        assert_eq!(jaccard(&g, Layer::Upper, 1, 2).unwrap(), 0.0);
        assert_eq!(cosine(&g, Layer::Upper, 0, 1).unwrap(), 0.0);
    }

    #[test]
    fn identical_vertices_rejected() {
        let g = paper_figure_one();
        assert!(matches!(
            count(&g, Layer::Upper, 1, 1),
            Err(GraphError::InvalidQueryPair { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let g = paper_figure_one();
        assert!(matches!(
            count(&g, Layer::Upper, 0, 50),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn lower_layer_queries_work() {
        let g = paper_figure_one();
        // v0 and v1 are both adjacent to u0 and u1.
        assert_eq!(count(&g, Layer::Lower, 0, 1).unwrap(), 2);
        assert_eq!(list(&g, Layer::Lower, 0, 1).unwrap(), vec![0, 1]);
    }

    #[test]
    fn intersection_galloping_matches_merge() {
        // Small list vs much larger list to exercise the galloping branch.
        let small: Vec<VertexId> = vec![5, 100, 2_000, 50_000];
        let large: Vec<VertexId> = (0..100_000).step_by(5).collect();
        let expected = small
            .iter()
            .filter(|x| large.binary_search(x).is_ok())
            .count() as u64;
        assert_eq!(intersection_size(&small, &large), expected);
        assert_eq!(intersection_size(&large, &small), expected);
    }

    #[test]
    fn intersection_empty_slices() {
        assert_eq!(intersection_size(&[], &[]), 0);
        assert_eq!(intersection_size(&[1, 2, 3], &[]), 0);
        assert_eq!(intersection_size(&[], &[1]), 0);
    }
}

//! Vertex and vertex-pair samplers used by the experiment harness.
//!
//! The paper's evaluation samples (i) 100 uniform same-layer vertex pairs per
//! dataset, (ii) pairs whose degree imbalance exceeds a threshold κ (Fig. 9),
//! and (iii) induced subgraphs on 20–100 % of the vertices (Fig. 11). This
//! module implements all three with deterministic, seedable RNGs.

use crate::error::{GraphError, Result};
use crate::graph::BipartiteGraph;
use crate::vertex::{Layer, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A sampled same-layer query pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPair {
    /// The layer both query vertices live on.
    pub layer: Layer,
    /// First query vertex.
    pub u: VertexId,
    /// Second query vertex.
    pub w: VertexId,
}

impl QueryPair {
    /// Creates a new pair (no validation; see [`crate::common_neighbors::check_query_pair`]).
    #[must_use]
    pub fn new(layer: Layer, u: VertexId, w: VertexId) -> Self {
        Self { layer, u, w }
    }
}

/// Samples `count` uniform random pairs of distinct vertices on `layer`.
///
/// Pairs may repeat across draws (sampling with replacement over pairs), which
/// matches the paper's "uniformly sample 100 vertex pairs" protocol.
///
/// # Errors
///
/// Returns [`GraphError::EmptyLayer`] if the layer has fewer than two vertices.
pub fn uniform_pairs<R: Rng + ?Sized>(
    g: &BipartiteGraph,
    layer: Layer,
    count: usize,
    rng: &mut R,
) -> Result<Vec<QueryPair>> {
    let n = g.layer_size(layer);
    if n < 2 {
        return Err(GraphError::EmptyLayer { layer });
    }
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let u = rng.gen_range(0..n) as VertexId;
        let mut w = rng.gen_range(0..n) as VertexId;
        while w == u {
            w = rng.gen_range(0..n) as VertexId;
        }
        pairs.push(QueryPair::new(layer, u, w));
    }
    Ok(pairs)
}

/// Samples `count` pairs whose degree imbalance exceeds `kappa`:
/// `max(deg u, deg w) > kappa · min(deg u, deg w)` with both degrees positive.
///
/// Used for the Fig. 9 robustness experiment. Falls back to rejection
/// sampling with a bounded number of attempts; if not enough qualifying pairs
/// are found the function returns however many it found (possibly fewer than
/// `count`) — callers that need an exact number should check the length.
///
/// # Errors
///
/// Returns [`GraphError::EmptyLayer`] if the layer has fewer than two vertices.
pub fn imbalanced_pairs<R: Rng + ?Sized>(
    g: &BipartiteGraph,
    layer: Layer,
    kappa: f64,
    count: usize,
    rng: &mut R,
) -> Result<Vec<QueryPair>> {
    let n = g.layer_size(layer);
    if n < 2 {
        return Err(GraphError::EmptyLayer { layer });
    }
    // Pre-split vertices by degree so that high-κ pairs can be drawn directly:
    // pick one low-degree and one high-degree endpoint.
    let degrees: Vec<usize> = (0..n as VertexId).map(|v| g.degree(layer, v)).collect();
    let positive: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| degrees[v as usize] > 0)
        .collect();
    if positive.len() < 2 {
        return Err(GraphError::EmptyLayer { layer });
    }

    let mut pairs = Vec::with_capacity(count);
    let max_attempts = count.saturating_mul(10_000).max(100_000);
    let mut attempts = 0usize;
    while pairs.len() < count && attempts < max_attempts {
        attempts += 1;
        let u = *positive.choose(rng).expect("non-empty");
        let w = *positive.choose(rng).expect("non-empty");
        if u == w {
            continue;
        }
        let du = degrees[u as usize] as f64;
        let dw = degrees[w as usize] as f64;
        if du.max(dw) > kappa * du.min(dw) {
            pairs.push(QueryPair::new(layer, u, w));
        }
    }
    Ok(pairs)
}

/// Uniformly samples a fraction of the vertices of each layer and returns the
/// induced subgraph together with the index maps from new ids to original ids.
///
/// This is the workload of the Fig. 11 scaling experiment (20 %–100 % of |V|).
///
/// # Errors
///
/// Returns [`GraphError::Malformed`] if `fraction` is not in `(0, 1]`.
pub fn induced_subgraph<R: Rng + ?Sized>(
    g: &BipartiteGraph,
    fraction: f64,
    rng: &mut R,
) -> Result<InducedSubgraph> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(GraphError::Malformed {
            reason: format!("sampling fraction {fraction} must be in (0, 1]"),
        });
    }
    let sample_layer = |n: usize, rng: &mut R| -> Vec<VertexId> {
        let keep = ((n as f64) * fraction).round() as usize;
        let keep = keep.clamp(usize::from(n > 0), n);
        let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
        ids.shuffle(rng);
        ids.truncate(keep);
        ids.sort_unstable();
        ids
    };
    let upper_kept = sample_layer(g.n_upper(), rng);
    let lower_kept = sample_layer(g.n_lower(), rng);

    // Old-id -> new-id maps.
    let upper_map = build_index_map(&upper_kept, g.n_upper());
    let lower_map = build_index_map(&lower_kept, g.n_lower());

    let mut builder = crate::GraphBuilder::new(upper_kept.len(), lower_kept.len());
    for &u_old in &upper_kept {
        let u_new = upper_map[u_old as usize].expect("kept vertex has new id");
        for &v_old in g.neighbors(Layer::Upper, u_old) {
            if let Some(v_new) = lower_map[v_old as usize] {
                builder
                    .add_edge(u_new, v_new)
                    .expect("remapped edge is in range");
            }
        }
    }
    Ok(InducedSubgraph {
        graph: builder.build(),
        upper_original: upper_kept,
        lower_original: lower_kept,
    })
}

/// Result of [`induced_subgraph`]: the sampled graph plus id provenance.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The induced subgraph with densely re-numbered vertex ids.
    pub graph: BipartiteGraph,
    /// `upper_original[new_id] = old_id` for kept upper vertices.
    pub upper_original: Vec<VertexId>,
    /// `lower_original[new_id] = old_id` for kept lower vertices.
    pub lower_original: Vec<VertexId>,
}

fn build_index_map(kept_sorted: &[VertexId], n: usize) -> Vec<Option<VertexId>> {
    let mut map = vec![None; n];
    for (new_id, &old_id) in kept_sorted.iter().enumerate() {
        map[old_id as usize] = Some(new_id as VertexId);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_graph() -> BipartiteGraph {
        // 10 upper x 20 lower with u-v edge iff v % (u+1) == 0: varied degrees.
        let edges = (0..10u32).flat_map(|u| {
            (0..20u32)
                .filter(move |v| v % (u + 1) == 0)
                .map(move |v| (u, v))
        });
        BipartiteGraph::from_edges(10, 20, edges).unwrap()
    }

    #[test]
    fn uniform_pairs_are_distinct_and_in_range() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = uniform_pairs(&g, Layer::Upper, 200, &mut rng).unwrap();
        assert_eq!(pairs.len(), 200);
        for p in &pairs {
            assert_ne!(p.u, p.w);
            assert!(g.contains_vertex(Layer::Upper, p.u));
            assert!(g.contains_vertex(Layer::Upper, p.w));
        }
    }

    #[test]
    fn uniform_pairs_deterministic_under_seed() {
        let g = grid_graph();
        let a = uniform_pairs(&g, Layer::Lower, 50, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = uniform_pairs(&g, Layer::Lower, 50, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_pairs_empty_layer_errors() {
        let g = BipartiteGraph::from_edges(1, 5, std::iter::empty()).unwrap();
        let err = uniform_pairs(&g, Layer::Upper, 3, &mut StdRng::seed_from_u64(0)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::EmptyLayer {
                layer: Layer::Upper
            }
        ));
    }

    #[test]
    fn imbalanced_pairs_respect_kappa() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let kappa = 3.0;
        let pairs = imbalanced_pairs(&g, Layer::Upper, kappa, 30, &mut rng).unwrap();
        assert!(!pairs.is_empty());
        for p in pairs {
            let du = g.degree(Layer::Upper, p.u) as f64;
            let dw = g.degree(Layer::Upper, p.w) as f64;
            assert!(du.max(dw) > kappa * du.min(dw), "pair violates kappa");
        }
    }

    #[test]
    fn imbalanced_pairs_unreachable_kappa_returns_fewer() {
        // Regular graph: every upper vertex has degree 20 -> no imbalance.
        let edges = (0..5u32).flat_map(|u| (0..20u32).map(move |v| (u, v)));
        let g = BipartiteGraph::from_edges(5, 20, edges).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = imbalanced_pairs(&g, Layer::Upper, 2.0, 5, &mut rng).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn induced_subgraph_full_fraction_is_isomorphic() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(11);
        let s = induced_subgraph(&g, 1.0, &mut rng).unwrap();
        assert_eq!(s.graph.n_upper(), g.n_upper());
        assert_eq!(s.graph.n_lower(), g.n_lower());
        assert_eq!(s.graph.n_edges(), g.n_edges());
        s.graph.validate().unwrap();
    }

    #[test]
    fn induced_subgraph_half_fraction_shrinks() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(13);
        let s = induced_subgraph(&g, 0.5, &mut rng).unwrap();
        assert_eq!(s.graph.n_upper(), 5);
        assert_eq!(s.graph.n_lower(), 10);
        assert!(s.graph.n_edges() <= g.n_edges());
        s.graph.validate().unwrap();
        // Every edge of the subgraph maps back to an edge of the original.
        for (u_new, v_new) in s.graph.edges() {
            let u_old = s.upper_original[u_new as usize];
            let v_old = s.lower_original[v_new as usize];
            assert!(g.has_edge(u_old, v_old));
        }
    }

    #[test]
    fn induced_subgraph_rejects_bad_fraction() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(17);
        assert!(induced_subgraph(&g, 0.0, &mut rng).is_err());
        assert!(induced_subgraph(&g, 1.5, &mut rng).is_err());
        assert!(induced_subgraph(&g, f64::NAN, &mut rng).is_err());
    }
}

//! Degree statistics and dataset summaries (the rows of the paper's Table 2).

use crate::graph::BipartiteGraph;
use crate::vertex::{Layer, VertexId};
use serde::{Deserialize, Serialize};

/// Summary statistics of a bipartite graph, mirroring the columns of the
/// paper's Table 2 plus degree detail used by the experiment harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSummary {
    /// Number of upper vertices, `|U|`.
    pub n_upper: usize,
    /// Number of lower vertices, `|L|`.
    pub n_lower: usize,
    /// Number of edges, `|E|`.
    pub n_edges: usize,
    /// Maximum degree among upper vertices.
    pub max_degree_upper: usize,
    /// Maximum degree among lower vertices.
    pub max_degree_lower: usize,
    /// Average degree of upper vertices.
    pub avg_degree_upper: f64,
    /// Average degree of lower vertices.
    pub avg_degree_lower: f64,
    /// Number of isolated (degree-zero) vertices across both layers.
    pub isolated_vertices: usize,
}

impl GraphSummary {
    /// Computes the summary of `g`.
    #[must_use]
    pub fn of(g: &BipartiteGraph) -> Self {
        let isolated = count_isolated(g, Layer::Upper) + count_isolated(g, Layer::Lower);
        Self {
            n_upper: g.n_upper(),
            n_lower: g.n_lower(),
            n_edges: g.n_edges(),
            max_degree_upper: g.max_degree(Layer::Upper),
            max_degree_lower: g.max_degree(Layer::Lower),
            avg_degree_upper: g.avg_degree(Layer::Upper),
            avg_degree_lower: g.avg_degree(Layer::Lower),
            isolated_vertices: isolated,
        }
    }

    /// Graph density `m / (n₁ · n₂)`; 0 for degenerate layer sizes.
    #[must_use]
    pub fn density(&self) -> f64 {
        let denom = self.n_upper as f64 * self.n_lower as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.n_edges as f64 / denom
        }
    }
}

/// Full degree histogram of one layer: `histogram[d]` = number of vertices of
/// degree `d`.
#[must_use]
pub fn degree_histogram(g: &BipartiteGraph, layer: Layer) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree(layer) + 1];
    for v in 0..g.layer_size(layer) as VertexId {
        hist[g.degree(layer, v)] += 1;
    }
    hist
}

/// The degree sequence of one layer, sorted descending.
#[must_use]
pub fn degree_sequence(g: &BipartiteGraph, layer: Layer) -> Vec<usize> {
    let mut seq: Vec<usize> = (0..g.layer_size(layer) as VertexId)
        .map(|v| g.degree(layer, v))
        .collect();
    seq.sort_unstable_by(|a, b| b.cmp(a));
    seq
}

/// The `q`-th percentile (0–100) of the degree distribution of `layer`,
/// using nearest-rank interpolation. Returns 0 for an empty layer.
#[must_use]
pub fn degree_percentile(g: &BipartiteGraph, layer: Layer, q: f64) -> usize {
    let mut seq = degree_sequence(g, layer);
    if seq.is_empty() {
        return 0;
    }
    seq.reverse(); // ascending
    let q = q.clamp(0.0, 100.0);
    let rank = ((q / 100.0) * (seq.len() as f64 - 1.0)).round() as usize;
    seq[rank]
}

fn count_isolated(g: &BipartiteGraph, layer: Layer) -> usize {
    (0..g.layer_size(layer) as VertexId)
        .filter(|&v| g.degree(layer, v) == 0)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BipartiteGraph {
        // degrees upper: [3, 1, 0]; lower: [2, 1, 1, 0]
        BipartiteGraph::from_edges(3, 4, [(0, 0), (0, 1), (0, 2), (1, 0)]).unwrap()
    }

    #[test]
    fn summary_fields() {
        let s = GraphSummary::of(&toy());
        assert_eq!(s.n_upper, 3);
        assert_eq!(s.n_lower, 4);
        assert_eq!(s.n_edges, 4);
        assert_eq!(s.max_degree_upper, 3);
        assert_eq!(s.max_degree_lower, 2);
        assert!((s.avg_degree_upper - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.avg_degree_lower - 1.0).abs() < 1e-12);
        assert_eq!(s.isolated_vertices, 2);
        assert!((s.density() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, std::iter::empty()).unwrap();
        let s = GraphSummary::of(&g);
        assert_eq!(s.n_edges, 0);
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.isolated_vertices, 0);
    }

    #[test]
    fn histogram_sums_to_layer_size() {
        let g = toy();
        let h = degree_histogram(&g, Layer::Upper);
        assert_eq!(h.iter().sum::<usize>(), g.n_upper());
        assert_eq!(h, vec![1, 1, 0, 1]); // one deg-0, one deg-1, one deg-3
        let h = degree_histogram(&g, Layer::Lower);
        assert_eq!(h, vec![1, 2, 1]);
    }

    #[test]
    fn degree_sequence_is_sorted_desc() {
        let g = toy();
        assert_eq!(degree_sequence(&g, Layer::Upper), vec![3, 1, 0]);
        assert_eq!(degree_sequence(&g, Layer::Lower), vec![2, 1, 1, 0]);
    }

    #[test]
    fn percentiles() {
        let g = toy();
        assert_eq!(degree_percentile(&g, Layer::Upper, 0.0), 0);
        assert_eq!(degree_percentile(&g, Layer::Upper, 100.0), 3);
        assert_eq!(degree_percentile(&g, Layer::Upper, 50.0), 1);
        // Out-of-range q is clamped.
        assert_eq!(degree_percentile(&g, Layer::Upper, 150.0), 3);
        assert_eq!(degree_percentile(&g, Layer::Upper, -5.0), 0);
    }

    #[test]
    fn percentile_of_empty_layer_is_zero() {
        let g = BipartiteGraph::from_edges(0, 3, std::iter::empty()).unwrap();
        assert_eq!(degree_percentile(&g, Layer::Upper, 50.0), 0);
    }

    #[test]
    fn serde_round_trip() {
        let s = GraphSummary::of(&toy());
        let json = serde_json::to_string(&s).unwrap();
        let back: GraphSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

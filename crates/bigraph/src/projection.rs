//! One-mode projection of a bipartite graph.
//!
//! The projection onto a layer connects two vertices of that layer whenever
//! they share at least one neighbor, weighting each pair by its common-neighbor
//! count. Bipartite graph projection is one of the downstream applications of
//! common-neighborhood computation that the paper's introduction cites.

use crate::error::Result;
use crate::graph::BipartiteGraph;
use crate::vertex::{Layer, VertexId};
use std::collections::HashMap;

/// A weighted one-mode projection of a bipartite graph onto one layer.
///
/// Edges are stored as a map from vertex pairs `(a, b)` with `a < b` to the
/// number of common neighbors that produced the pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    layer: Layer,
    weights: HashMap<(VertexId, VertexId), u64>,
}

impl Projection {
    /// The layer the projection was built on.
    #[must_use]
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// Number of projected edges (pairs sharing at least one neighbor).
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.weights.len()
    }

    /// Weight of the projected edge `(a, b)`, i.e. their common-neighbor count.
    /// Returns 0 for pairs that share no neighbor.
    #[must_use]
    pub fn weight(&self, a: VertexId, b: VertexId) -> u64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.weights.get(&key).copied().unwrap_or(0)
    }

    /// Iterates over `((a, b), weight)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = ((VertexId, VertexId), u64)> + '_ {
        self.weights.iter().map(|(&k, &v)| (k, v))
    }

    /// The total projected weight, i.e. the number of *wedges* centred on the
    /// opposite layer: `Σ_v C(deg(v), 2)`.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.weights.values().sum()
    }
}

/// Builds the weighted projection of `g` onto `layer`.
///
/// Complexity is `O(Σ_v deg(v)²)` over the vertices `v` of the opposite layer,
/// which is the standard wedge-enumeration cost.
///
/// # Errors
///
/// Currently infallible but returns `Result` for API stability with the rest
/// of the crate.
pub fn project(g: &BipartiteGraph, layer: Layer) -> Result<Projection> {
    let opposite = layer.opposite();
    let mut weights: HashMap<(VertexId, VertexId), u64> = HashMap::new();
    for v in 0..g.layer_size(opposite) as VertexId {
        let neigh = g.neighbors(opposite, v);
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                let key = (neigh[i], neigh[j]);
                *weights.entry(key).or_insert(0) += 1;
            }
        }
    }
    Ok(Projection { layer, weights })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common_neighbors;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_edges(3, 4, [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn projection_weights_equal_common_neighbor_counts() {
        let g = toy();
        let p = project(&g, Layer::Upper).unwrap();
        for a in 0..3u32 {
            for b in (a + 1)..3u32 {
                let expected = common_neighbors::count(&g, Layer::Upper, a, b).unwrap();
                assert_eq!(p.weight(a, b), expected, "pair ({a},{b})");
                assert_eq!(p.weight(b, a), expected, "weight must be symmetric");
            }
        }
    }

    #[test]
    fn projection_edge_count_and_total_weight() {
        let g = toy();
        let p = project(&g, Layer::Upper).unwrap();
        // Only (u0,u1) share neighbors (v0 and v1).
        assert_eq!(p.n_edges(), 1);
        assert_eq!(p.total_weight(), 2);
        assert_eq!(p.layer(), Layer::Upper);
    }

    #[test]
    fn lower_projection() {
        let g = toy();
        let p = project(&g, Layer::Lower).unwrap();
        // v0,v1 share u0,u1 (weight 2); v0,v2 share u1; v1,v2 share u1.
        assert_eq!(p.weight(0, 1), 2);
        assert_eq!(p.weight(0, 2), 1);
        assert_eq!(p.weight(1, 2), 1);
        assert_eq!(p.weight(0, 3), 0);
        assert_eq!(p.n_edges(), 3);
    }

    #[test]
    fn empty_graph_projects_to_nothing() {
        let g = BipartiteGraph::from_edges(4, 4, std::iter::empty()).unwrap();
        let p = project(&g, Layer::Upper).unwrap();
        assert_eq!(p.n_edges(), 0);
        assert_eq!(p.total_weight(), 0);
    }

    #[test]
    fn total_weight_counts_wedges() {
        let g = toy();
        let p = project(&g, Layer::Upper).unwrap();
        // Wedges centred on lower vertices: deg(v0)=2 -> 1, deg(v1)=2 -> 1,
        // deg(v2)=1 -> 0, deg(v3)=1 -> 0. Total 2.
        assert_eq!(p.total_weight(), 2);
    }

    #[test]
    fn iter_yields_all_entries() {
        let g = toy();
        let p = project(&g, Layer::Lower).unwrap();
        let collected: Vec<_> = p.iter().collect();
        assert_eq!(collected.len(), p.n_edges());
    }
}

//! Streaming mutations: edge/vertex deltas, update batches, and the
//! ingestion log.
//!
//! The serving story in `ROADMAP.md` assumes edges arrive and retire while
//! the curator keeps answering common-neighbor queries. This module is the
//! graph-side half of that story:
//!
//! * [`GraphDelta`] — one atomic mutation (add/remove an edge, append a
//!   vertex to a layer);
//! * [`UpdateBatch`] — an ordered sequence of deltas applied transactionally
//!   by [`BipartiteGraph::apply_update_batch`](crate::BipartiteGraph::apply_update_batch):
//!   either every delta validates and the whole batch lands, or the graph is
//!   left untouched;
//! * [`AppliedBatch`] — the receipt: the graph's new epoch, net edge/vertex
//!   counts, and the **touched vertex sets** downstream caches (the
//!   `cne::engine` adjacency store) use for precise invalidation;
//! * [`UpdateLog`] — a thread-safe append log decoupling producers (edges
//!   arriving from live traffic) from the single writer that drains the log
//!   into batches and applies them between query rounds.
//!
//! # Batch semantics
//!
//! Deltas apply in order within a batch, and the batch is *idempotent at the
//! edge level*: adding an edge that already exists and removing one that
//! does not are no-ops (streams routinely replay events), so the net effect
//! of a batch on an edge is decided by the **last** delta naming it. Vertex
//! additions grow a layer by one id each and take effect immediately — a
//! later delta in the same batch may reference the new vertex.
//!
//! Application cost is `O(n + m + b log b)` for a batch of `b` deltas — one
//! merge pass over the CSR arrays (untouched vertex ranges are copied
//! wholesale) instead of the `O(m log m)` sort of a full
//! [`GraphBuilder`](crate::GraphBuilder) rebuild, and no re-validation of
//! untouched adjacency.
//!
//! # Epochs
//!
//! Every applied batch that changes anything bumps the graph's
//! [`epoch`](crate::BipartiteGraph::epoch) by one. The epoch is a mutation
//! counter, not part of graph identity: two structurally equal graphs
//! compare equal regardless of how many batches produced them. Downstream
//! caches tag entries with the epoch they were built at and use the
//! [`AppliedBatch`] receipt to invalidate precisely.

use crate::error::{GraphError, Result};
use crate::graph::BipartiteGraph;
use crate::vertex::{Layer, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One atomic graph mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphDelta {
    /// Insert the edge `(upper, lower)`. A no-op if the edge already exists.
    AddEdge {
        /// The upper-layer endpoint.
        upper: VertexId,
        /// The lower-layer endpoint.
        lower: VertexId,
    },
    /// Delete the edge `(upper, lower)`. A no-op if the edge is absent.
    RemoveEdge {
        /// The upper-layer endpoint.
        upper: VertexId,
        /// The lower-layer endpoint.
        lower: VertexId,
    },
    /// Append one isolated vertex to `layer` (its id is the layer's current
    /// size). Later deltas in the same batch may reference it.
    AddVertex {
        /// The layer that grows.
        layer: Layer,
    },
}

impl GraphDelta {
    /// The endpoint that decides which contiguous vertex-range shard owns
    /// this delta when the graph is partitioned along `shard_layer`.
    ///
    /// Edge deltas are owned by their `shard_layer` endpoint; `AddVertex`
    /// has no owner (`None`) and must be **broadcast** to every shard so
    /// layer sizes stay aligned across replicas.
    #[must_use]
    pub fn shard_vertex(&self, shard_layer: Layer) -> Option<VertexId> {
        match *self {
            GraphDelta::AddEdge { upper, lower } | GraphDelta::RemoveEdge { upper, lower } => {
                Some(match shard_layer {
                    Layer::Upper => upper,
                    Layer::Lower => lower,
                })
            }
            GraphDelta::AddVertex { .. } => None,
        }
    }
}

/// An ordered sequence of [`GraphDelta`]s applied as one transaction.
///
/// ```
/// use bigraph::{BipartiteGraph, Layer, UpdateBatch};
///
/// let mut g = BipartiteGraph::from_edges(2, 3, [(0, 0), (1, 2)]).unwrap();
/// let mut batch = UpdateBatch::new();
/// batch.add_edge(0, 1).remove_edge(1, 2).add_vertex(Layer::Lower);
/// let applied = g.apply_update_batch(&batch).unwrap();
/// assert_eq!(applied.edges_added, 1);
/// assert_eq!(applied.edges_removed, 1);
/// assert_eq!(g.n_lower(), 4);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(1, 2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateBatch {
    deltas: Vec<GraphDelta>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `n` deltas.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            deltas: Vec::with_capacity(n),
        }
    }

    /// Appends an arbitrary delta.
    pub fn push(&mut self, delta: GraphDelta) -> &mut Self {
        self.deltas.push(delta);
        self
    }

    /// Appends an edge insertion.
    pub fn add_edge(&mut self, upper: VertexId, lower: VertexId) -> &mut Self {
        self.push(GraphDelta::AddEdge { upper, lower })
    }

    /// Appends an edge deletion.
    pub fn remove_edge(&mut self, upper: VertexId, lower: VertexId) -> &mut Self {
        self.push(GraphDelta::RemoveEdge { upper, lower })
    }

    /// Appends a vertex addition on `layer`.
    pub fn add_vertex(&mut self, layer: Layer) -> &mut Self {
        self.push(GraphDelta::AddVertex { layer })
    }

    /// The deltas in application order.
    #[must_use]
    pub fn deltas(&self) -> &[GraphDelta] {
        &self.deltas
    }

    /// Validates every delta against `g` without applying anything: edge
    /// endpoints must be in range at their point in the sequence (vertices
    /// added earlier in the batch count). Exactly the check
    /// [`BipartiteGraph::apply_update_batch`](crate::BipartiteGraph::apply_update_batch)
    /// performs before touching the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] for the first out-of-range
    /// edge delta.
    pub fn validate(&self, g: &BipartiteGraph) -> Result<()> {
        NetEffect::compute(g, self).map(|_| ())
    }

    /// Splits the batch into one sub-batch per contiguous vertex range of
    /// `shard_layer`, in a **single pass** — the replication path in a
    /// sharded deployment calls this instead of cloning the full batch per
    /// worker and filtering.
    ///
    /// Routing rules (the shard-assignment contract the multi-process
    /// serving tier relies on):
    ///
    /// * an edge delta goes to the one range containing its `shard_layer`
    ///   endpoint ([`GraphDelta::shard_vertex`]); a delta covered by no
    ///   range is dropped, so callers should make the ranges cover the id
    ///   space (conventionally the last range ends at `VertexId::MAX`);
    /// * `AddVertex` is **broadcast** into every sub-batch, keeping layer
    ///   sizes aligned across shards;
    /// * relative order is preserved within each sub-batch, which is enough
    ///   for equivalence: two deltas naming the same edge share a
    ///   `shard_layer` endpoint and therefore a sub-batch, and deltas on
    ///   different edges commute under last-delta-wins semantics.
    #[must_use]
    pub fn partition_by_ranges(
        &self,
        shard_layer: Layer,
        ranges: &[std::ops::Range<VertexId>],
    ) -> Vec<UpdateBatch> {
        let mut parts = vec![UpdateBatch::new(); ranges.len()];
        for &delta in &self.deltas {
            match delta.shard_vertex(shard_layer) {
                Some(v) => {
                    if let Some(at) = ranges.iter().position(|r| r.contains(&v)) {
                        parts[at].push(delta);
                    }
                }
                None => {
                    for part in &mut parts {
                        part.push(delta);
                    }
                }
            }
        }
        parts
    }

    /// Number of deltas in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the batch holds no deltas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }
}

impl FromIterator<GraphDelta> for UpdateBatch {
    fn from_iter<I: IntoIterator<Item = GraphDelta>>(iter: I) -> Self {
        Self {
            deltas: iter.into_iter().collect(),
        }
    }
}

impl Extend<GraphDelta> for UpdateBatch {
    fn extend<I: IntoIterator<Item = GraphDelta>>(&mut self, iter: I) {
        self.deltas.extend(iter);
    }
}

/// The receipt of one applied [`UpdateBatch`]: what actually changed, and
/// which vertices downstream caches must invalidate.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedBatch {
    /// The graph's epoch after application (unchanged for a no-op batch).
    pub epoch: u64,
    /// Edges that were actually inserted (idempotent re-adds excluded).
    pub edges_added: usize,
    /// Edges that were actually deleted (removals of absent edges excluded).
    pub edges_removed: usize,
    /// Vertices appended to the upper layer.
    pub vertices_added_upper: usize,
    /// Vertices appended to the lower layer.
    pub vertices_added_lower: usize,
    /// Upper vertices whose adjacency changed (sorted, deduplicated).
    pub touched_upper: Vec<VertexId>,
    /// Lower vertices whose adjacency changed (sorted, deduplicated).
    pub touched_lower: Vec<VertexId>,
}

impl AppliedBatch {
    /// Whether the batch changed nothing (every delta was a no-op).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.edges_added == 0
            && self.edges_removed == 0
            && self.vertices_added_upper == 0
            && self.vertices_added_lower == 0
    }

    /// The touched vertices of `layer`.
    #[must_use]
    pub fn touched(&self, layer: Layer) -> &[VertexId] {
        match layer {
            Layer::Upper => &self.touched_upper,
            Layer::Lower => &self.touched_lower,
        }
    }

    /// Vertices appended to `layer`.
    #[must_use]
    pub fn vertices_added(&self, layer: Layer) -> usize {
        match layer {
            Layer::Upper => self.vertices_added_upper,
            Layer::Lower => self.vertices_added_lower,
        }
    }
}

/// Number of producer-side shards in an [`UpdateLog`]. Appending threads
/// spread across shards round-robin, so producers contend with at most
/// `1/LOG_SHARDS` of their peers (and never with the drain's merge work).
const LOG_SHARDS: usize = 8;

/// A sentinel-free shard assignment: each OS thread picks a shard once, via
/// a global round-robin counter, and sticks with it. Two threads may share
/// a shard (hint collisions are fine — shards tolerate interleaved
/// producers), but a single producer never migrates, which keeps its
/// entries nearly sorted within the shard.
fn shard_hint() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
    }
    HINT.with(|h| *h)
}

/// A thread-safe append log decoupling edge producers from the single
/// writer that applies batches.
///
/// Producers [`append`](UpdateLog::append) deltas from any thread; the
/// writer periodically [`drain`](UpdateLog::drain_batch)s up to a batch
/// budget and applies the result between query rounds. Sequence numbers
/// (`appended` / `drained` / [`lag`](UpdateLog::lag)) let operators observe
/// ingestion lag exactly.
///
/// # Lock split
///
/// The log is internally sharded so producers never serialize behind the
/// drain. A global atomic allocates sequence numbers; each append then only
/// locks its thread's shard buffer for a push. The drain side sweeps the
/// shards (one brief lock each) into a private staging map and emits deltas
/// in **exact global sequence order**, stopping at the first gap — a
/// sequence number that was allocated but whose delta has not landed in a
/// shard yet is never jumped over, so arrival order is preserved even under
/// concurrent producers.
///
/// ```
/// use bigraph::{GraphDelta, UpdateLog};
///
/// let log = UpdateLog::new();
/// log.append(GraphDelta::AddEdge { upper: 0, lower: 1 });
/// log.append(GraphDelta::AddEdge { upper: 0, lower: 2 });
/// assert_eq!(log.pending(), 2);
/// assert_eq!(log.lag(), 2);
/// let batch = log.drain_batch(10).unwrap();
/// assert_eq!(batch.len(), 2);
/// assert_eq!(log.pending(), 0);
/// assert_eq!(log.drained(), 2);
/// ```
#[derive(Debug, Default)]
pub struct UpdateLog {
    /// Per-producer buffers of `(sequence, delta)`, each kept sorted by
    /// sequence (producers insert near the back; inversions only happen
    /// when two threads share a shard and race the allocator).
    shards: [Mutex<VecDeque<(u64, GraphDelta)>>; LOG_SHARDS],
    /// Drain-side staging: deltas swept out of the shards but not yet
    /// emitted into a batch (because an earlier sequence number was still
    /// in flight, or the batch budget ran out). Guarded by the drain lock.
    staging: Mutex<BTreeMap<u64, GraphDelta>>,
    /// Highest sequence number ever allocated (1-based; 0 = empty).
    appended: AtomicU64,
    /// Total deltas emitted into batches, in order: the drain cursor.
    emitted: AtomicU64,
    /// Drained-delta retention, `None` unless the log was built with
    /// [`with_retention`](UpdateLog::with_retention): every emitted
    /// `(sequence, delta)` pair, in sequence order, kept for
    /// [`replay_from`](UpdateLog::replay_from).
    history: Mutex<Option<Vec<(u64, GraphDelta)>>>,
}

/// Inserts `(seq, delta)` keeping `q` sorted by sequence. Scans from the
/// back: an entry is out of order only when two producers sharing a shard
/// raced the sequence allocator, so the scan is O(1) amortized.
fn insert_by_seq(q: &mut VecDeque<(u64, GraphDelta)>, seq: u64, delta: GraphDelta) {
    let mut at = q.len();
    while at > 0 && q[at - 1].0 > seq {
        at -= 1;
    }
    q.insert(at, (seq, delta));
}

impl UpdateLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty log that **retains drained deltas** so
    /// [`replay_from`](UpdateLog::replay_from) can re-emit any tail of the
    /// stream. A plain [`new`](UpdateLog::new) log discards deltas as they
    /// are drained.
    ///
    /// Retention grows by one entry per drained delta until the owner
    /// truncates it: once a newer snapshot covers a prefix of the stream,
    /// [`truncate_history_through`](UpdateLog::truncate_history_through)
    /// discards everything at or below the snapshot's pinned sequence —
    /// which is how a sharded-serving coordinator bounds the history each
    /// time a rebalance re-pins its recovery source.
    #[must_use]
    pub fn with_retention() -> Self {
        Self {
            history: Mutex::new(Some(Vec::new())),
            ..Self::default()
        }
    }

    /// Re-emits every retained delta with sequence number **strictly
    /// greater than** `after_seq`, in sequence order — the tail-replay
    /// primitive for snapshot-bootstrapped consumers: a snapshot pinned at
    /// sequence `s` is caught up by applying `replay_from(s)`.
    ///
    /// Only deltas that have already been drained are replayed (the
    /// retention hook sits on the drain path); anything still pending will
    /// arrive through the normal drain. Returns `None` when the log was
    /// not built with [`with_retention`](UpdateLog::with_retention) —
    /// callers must treat that as "replay unavailable", not "empty tail".
    /// The returned batch may be empty when the tail is fully covered.
    #[must_use]
    pub fn replay_from(&self, after_seq: u64) -> Option<UpdateBatch> {
        let history = self.history.lock().expect("update log poisoned");
        let history = history.as_ref()?;
        // History is sorted by sequence; find the first entry past the pin.
        let start = history.partition_point(|&(seq, _)| seq <= after_seq);
        Some(history[start..].iter().map(|&(_, delta)| delta).collect())
    }

    /// Discards retained history with sequence number **at or below**
    /// `through_seq`, bounding the memory
    /// [`replay_from`](UpdateLog::replay_from) keeps alive. Call it when a
    /// newer snapshot covers that prefix of the stream: a later
    /// `replay_from(s)` with `s >= through_seq` still returns the exact
    /// tail, while replaying from an older pin would silently miss the
    /// truncated deltas — the caller owns that invariant. No-op on a log
    /// without retention.
    pub fn truncate_history_through(&self, through_seq: u64) {
        if let Some(history) = self.history.lock().expect("update log poisoned").as_mut() {
            let keep_from = history.partition_point(|&(seq, _)| seq <= through_seq);
            history.drain(..keep_from);
        }
    }

    /// Appends one delta, returning its sequence number (1-based).
    pub fn append(&self, delta: GraphDelta) -> u64 {
        let seq = self.appended.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = &self.shards[shard_hint() % LOG_SHARDS];
        insert_by_seq(&mut shard.lock().expect("update log poisoned"), seq, delta);
        seq
    }

    /// Appends many deltas, returning the last sequence number assigned.
    /// The deltas receive consecutive-per-call order within this thread's
    /// shard; other producers may interleave between them in global order.
    pub fn extend<I: IntoIterator<Item = GraphDelta>>(&self, deltas: I) -> u64 {
        let shard = &self.shards[shard_hint() % LOG_SHARDS];
        let mut q = shard.lock().expect("update log poisoned");
        let mut last = self.appended.load(Ordering::Relaxed);
        for d in deltas {
            last = self.appended.fetch_add(1, Ordering::Relaxed) + 1;
            insert_by_seq(&mut q, last, d);
        }
        last
    }

    /// Number of deltas waiting to be drained (allocated sequence numbers
    /// not yet emitted into a batch, including any still in producer
    /// shards or the drain staging area).
    #[must_use]
    pub fn pending(&self) -> usize {
        usize::try_from(self.lag()).unwrap_or(usize::MAX)
    }

    /// Total deltas ever appended.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    /// Total deltas ever drained into batches.
    #[must_use]
    pub fn drained(&self) -> u64 {
        self.emitted.load(Ordering::Acquire)
    }

    /// Exact ingestion lag in deltas: `appended() - drained()`.
    #[must_use]
    pub fn lag(&self) -> u64 {
        // Load the drain cursor first: racing producers can only make the
        // reported lag momentarily high, never negative.
        let emitted = self.emitted.load(Ordering::Acquire);
        self.appended
            .load(Ordering::Acquire)
            .saturating_sub(emitted)
    }

    /// Drains up to `max` pending deltas (in exact arrival order) into a
    /// batch. Returns `None` when nothing is ready. A delta whose sequence
    /// number was allocated but whose producer has not finished appending
    /// yet stops the drain at that gap; it (and everything after it) stays
    /// pending for the next call.
    #[must_use]
    pub fn drain_batch(&self, max: usize) -> Option<UpdateBatch> {
        if max == 0 {
            return None;
        }
        let mut staging = self.staging.lock().expect("update log poisoned");
        // Sweep every shard's current contents into the staging map. Each
        // shard lock is held only for the buffer handoff, so producers keep
        // appending while the merge below runs.
        for shard in &self.shards {
            let mut swept = {
                let mut q = shard.lock().expect("update log poisoned");
                std::mem::take(&mut *q)
            };
            for (seq, delta) in swept.drain(..) {
                staging.insert(seq, delta);
            }
        }
        if staging.is_empty() {
            return None;
        }
        let mut next = self.emitted.load(Ordering::Acquire) + 1;
        let mut batch = UpdateBatch::with_capacity(max.min(staging.len()));
        while batch.len() < max {
            match staging.remove(&next) {
                Some(delta) => {
                    batch.push(delta);
                    next += 1;
                }
                None => break,
            }
        }
        if batch.is_empty() {
            return None;
        }
        let first = next - batch.len() as u64;
        if let Some(history) = self.history.lock().expect("update log poisoned").as_mut() {
            history.extend(
                batch
                    .deltas()
                    .iter()
                    .enumerate()
                    .map(|(i, &delta)| (first + i as u64, delta)),
            );
        }
        self.emitted
            .fetch_add(batch.len() as u64, Ordering::Release);
        Some(batch)
    }

    /// Drains up to `max` pending deltas and partitions them by contiguous
    /// vertex range in the same pass — the sharded-replication form of
    /// [`drain_batch`](UpdateLog::drain_batch). Returns one sub-batch per
    /// range (possibly empty), or `None` when nothing was ready.
    ///
    /// Routing follows [`UpdateBatch::partition_by_ranges`]: edge deltas go
    /// to the range owning their `shard_layer` endpoint, `AddVertex` is
    /// broadcast, and global arrival order is preserved within each
    /// sub-batch.
    #[must_use]
    pub fn drain_partitioned(
        &self,
        max: usize,
        shard_layer: Layer,
        ranges: &[std::ops::Range<VertexId>],
    ) -> Option<Vec<UpdateBatch>> {
        self.drain_batch(max)
            .map(|batch| batch.partition_by_ranges(shard_layer, ranges))
    }
}

/// The per-batch working state of [`BipartiteGraph::apply_update_batch`]
/// (crate-internal; constructed by the validation pass in `graph.rs`).
pub(crate) struct NetEffect {
    /// Final upper-layer size after vertex additions.
    pub n_upper: usize,
    /// Final lower-layer size after vertex additions.
    pub n_lower: usize,
    /// Vertices appended per layer.
    pub added_upper: usize,
    /// Vertices appended per layer.
    pub added_lower: usize,
    /// Net edge insertions, sorted by `(upper, lower)`.
    pub adds: Vec<(VertexId, VertexId)>,
    /// Net edge deletions, sorted by `(upper, lower)`.
    pub removes: Vec<(VertexId, VertexId)>,
}

impl NetEffect {
    /// Validates `batch` against `g` and reduces it to its net effect.
    ///
    /// Walks the deltas in order, growing the layer-size bounds as
    /// `AddVertex` deltas appear, and records the **last** operation per
    /// edge pair. The net lists then compare that desired final state with
    /// the current membership, so replayed adds/removes drop out.
    pub(crate) fn compute(g: &BipartiteGraph, batch: &UpdateBatch) -> Result<Self> {
        let mut n_upper = g.n_upper();
        let mut n_lower = g.n_lower();
        let mut added_upper = 0usize;
        let mut added_lower = 0usize;
        // Last-delta-wins per pair: `true` means the edge must exist after
        // the batch. A BTreeMap keeps pairs sorted for the splice pass.
        let mut desired = std::collections::BTreeMap::new();
        for delta in batch.deltas() {
            match *delta {
                GraphDelta::AddVertex { layer } => match layer {
                    Layer::Upper => {
                        n_upper += 1;
                        added_upper += 1;
                    }
                    Layer::Lower => {
                        n_lower += 1;
                        added_lower += 1;
                    }
                },
                GraphDelta::AddEdge { upper, lower } | GraphDelta::RemoveEdge { upper, lower } => {
                    if upper as usize >= n_upper {
                        return Err(GraphError::VertexOutOfRange {
                            layer: Layer::Upper,
                            id: upper,
                            layer_size: n_upper,
                        });
                    }
                    if lower as usize >= n_lower {
                        return Err(GraphError::VertexOutOfRange {
                            layer: Layer::Lower,
                            id: lower,
                            layer_size: n_lower,
                        });
                    }
                    let present = matches!(delta, GraphDelta::AddEdge { .. });
                    desired.insert((upper, lower), present);
                }
            }
        }
        let mut adds = Vec::new();
        let mut removes = Vec::new();
        for (&(u, v), &present) in &desired {
            // `has_edge` answers `false` for ids beyond the *current* layer
            // sizes, which is exactly right for edges on just-added vertices.
            let has = g.has_edge(u, v);
            if present && !has {
                adds.push((u, v));
            } else if !present && has {
                removes.push((u, v));
            }
        }
        Ok(Self {
            n_upper,
            n_lower,
            added_upper,
            added_lower,
            adds,
            removes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_edges(2, 4, [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (1, 3)]).unwrap()
    }

    #[test]
    fn batch_builder_collects_in_order() {
        let mut b = UpdateBatch::new();
        b.add_edge(0, 1).remove_edge(2, 3).add_vertex(Layer::Upper);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.deltas()[0], GraphDelta::AddEdge { upper: 0, lower: 1 });
        assert_eq!(b.deltas()[1], GraphDelta::RemoveEdge { upper: 2, lower: 3 });
        assert_eq!(
            b.deltas()[2],
            GraphDelta::AddVertex {
                layer: Layer::Upper
            }
        );
    }

    #[test]
    fn net_effect_applies_last_delta_per_pair() {
        let g = toy();
        let mut b = UpdateBatch::new();
        // Edge (0,3): absent, add→remove→add ⇒ net add.
        b.add_edge(0, 3).remove_edge(0, 3).add_edge(0, 3);
        // Edge (0,0): present, remove→add ⇒ net nothing.
        b.remove_edge(0, 0).add_edge(0, 0);
        // Edge (1,1): present, add (replay) ⇒ net nothing.
        b.add_edge(1, 1);
        let net = NetEffect::compute(&g, &b).unwrap();
        assert_eq!(net.adds, vec![(0, 3)]);
        assert!(net.removes.is_empty());
    }

    #[test]
    fn net_effect_validates_against_growing_sizes() {
        let g = toy();
        // Vertex u2 does not exist yet...
        let mut early = UpdateBatch::new();
        early.add_edge(2, 0).add_vertex(Layer::Upper);
        assert!(matches!(
            NetEffect::compute(&g, &early),
            Err(GraphError::VertexOutOfRange {
                layer: Layer::Upper,
                id: 2,
                ..
            })
        ));
        // ...but referencing it after its AddVertex delta is fine.
        let mut late = UpdateBatch::new();
        late.add_vertex(Layer::Upper).add_edge(2, 0);
        let net = NetEffect::compute(&g, &late).unwrap();
        assert_eq!(net.n_upper, 3);
        assert_eq!(net.adds, vec![(2, 0)]);
    }

    #[test]
    fn partition_routes_by_shard_endpoint_and_broadcasts_vertices() {
        let mut b = UpdateBatch::new();
        b.add_edge(0, 9)
            .add_edge(5, 0)
            .add_vertex(Layer::Lower)
            .remove_edge(3, 1)
            .add_edge(9, 9);
        let ranges = [0u32..4, 4..u32::MAX];
        let parts = b.partition_by_ranges(Layer::Upper, &ranges);
        assert_eq!(parts.len(), 2);
        // Shard 0 owns uppers [0,4): edges on u0/u3 plus the broadcast.
        assert_eq!(
            parts[0].deltas(),
            &[
                GraphDelta::AddEdge { upper: 0, lower: 9 },
                GraphDelta::AddVertex {
                    layer: Layer::Lower
                },
                GraphDelta::RemoveEdge { upper: 3, lower: 1 },
            ]
        );
        // Shard 1 owns uppers [4,MAX): edges on u5/u9 plus the broadcast.
        assert_eq!(
            parts[1].deltas(),
            &[
                GraphDelta::AddEdge { upper: 5, lower: 0 },
                GraphDelta::AddVertex {
                    layer: Layer::Lower
                },
                GraphDelta::AddEdge { upper: 9, lower: 9 },
            ]
        );
        // Every edge delta lands exactly once; AddVertex lands everywhere.
        let total: usize = parts.iter().map(UpdateBatch::len).sum();
        assert_eq!(total, 4 + 2);
        // Partitioning along the other layer routes by the lower endpoint.
        let by_lower = b.partition_by_ranges(Layer::Lower, &[0u32..2, 2..u32::MAX]);
        assert_eq!(by_lower[0].len(), 2 + 1); // l0, l1 edges + broadcast
        assert_eq!(by_lower[1].len(), 2 + 1); // l9, l9 edges + broadcast
    }

    #[test]
    fn partition_drops_deltas_covered_by_no_range() {
        let mut b = UpdateBatch::new();
        b.add_edge(0, 0).add_edge(7, 0);
        let parts = b.partition_by_ranges(Layer::Upper, std::slice::from_ref(&(0u32..4)));
        assert_eq!(parts.len(), 1);
        assert_eq!(
            parts[0].deltas(),
            &[GraphDelta::AddEdge { upper: 0, lower: 0 }]
        );
    }

    #[test]
    fn drain_partitioned_matches_drain_then_partition() {
        let log = UpdateLog::new();
        assert!(log
            .drain_partitioned(8, Layer::Upper, std::slice::from_ref(&(0..u32::MAX)))
            .is_none());
        for i in 0..10u32 {
            log.append(GraphDelta::AddEdge {
                upper: i % 4,
                lower: i,
            });
        }
        let ranges = [0u32..1, 1..2, 2..u32::MAX];
        let parts = log
            .drain_partitioned(10, Layer::Upper, &ranges)
            .expect("deltas pending");
        assert_eq!(parts.len(), 3);
        assert_eq!(log.drained(), 10);
        // Reconstruct per-range expectations from the original stream.
        for (range, part) in ranges.iter().zip(&parts) {
            for delta in part.deltas() {
                let v = delta.shard_vertex(Layer::Upper).unwrap();
                assert!(range.contains(&v));
            }
        }
        let total: usize = parts.iter().map(UpdateBatch::len).sum();
        assert_eq!(total, 10);
        // Order within a sub-batch follows global arrival order: lowers
        // are strictly increasing for each shard's stream.
        for part in &parts {
            let lowers: Vec<u32> = part
                .deltas()
                .iter()
                .map(|d| match *d {
                    GraphDelta::AddEdge { lower, .. } => lower,
                    _ => unreachable!(),
                })
                .collect();
            let mut sorted = lowers.clone();
            sorted.sort_unstable();
            assert_eq!(lowers, sorted);
        }
    }

    #[test]
    fn update_log_drains_in_arrival_order() {
        let log = UpdateLog::new();
        assert!(log.drain_batch(8).is_none());
        assert_eq!(log.append(GraphDelta::AddEdge { upper: 0, lower: 0 }), 1);
        let last = log.extend([
            GraphDelta::AddEdge { upper: 0, lower: 1 },
            GraphDelta::RemoveEdge { upper: 0, lower: 0 },
        ]);
        assert_eq!(last, 3);
        assert_eq!(log.pending(), 3);
        let batch = log.drain_batch(2).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch.deltas()[0],
            GraphDelta::AddEdge { upper: 0, lower: 0 }
        );
        assert_eq!(log.pending(), 1);
        assert_eq!(log.appended(), 3);
        assert_eq!(log.drained(), 2);
        assert!(log.drain_batch(0).is_none());
        let rest = log.drain_batch(99).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(log.drained(), 3);
    }

    #[test]
    fn update_log_is_shareable_across_threads() {
        let log = std::sync::Arc::new(UpdateLog::new());
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for k in 0..25u32 {
                        log.append(GraphDelta::AddEdge { upper: t, lower: k });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.pending(), 100);
        assert_eq!(log.appended(), 100);
    }

    #[test]
    fn update_log_emits_exact_global_sequence_order() {
        // Concurrent producers record the sequence number of every delta
        // they append; the drained stream must equal the deltas sorted by
        // sequence, with no gap jumped and no delta lost.
        let log = std::sync::Arc::new(UpdateLog::new());
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    (0..250u32)
                        .map(|k| (log.append(GraphDelta::AddEdge { upper: t, lower: k }), t, k))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut by_seq = std::collections::BTreeMap::new();
        for h in handles {
            for (seq, t, k) in h.join().unwrap() {
                assert!(by_seq.insert(seq, (t, k)).is_none(), "duplicate seq {seq}");
            }
        }
        assert_eq!(by_seq.len(), 1000);
        assert_eq!(log.lag(), 1000);
        let mut drained = Vec::new();
        while let Some(batch) = log.drain_batch(7) {
            drained.extend(batch.deltas().iter().copied());
        }
        assert_eq!(log.drained(), 1000);
        assert_eq!(log.lag(), 0);
        let expected: Vec<GraphDelta> = by_seq
            .values()
            .map(|&(t, k)| GraphDelta::AddEdge { upper: t, lower: k })
            .collect();
        assert_eq!(drained, expected);
    }

    #[test]
    fn update_log_drain_runs_concurrently_with_producers() {
        let log = std::sync::Arc::new(UpdateLog::new());
        let producers: Vec<_> = (0..3u32)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for k in 0..400u32 {
                        log.append(GraphDelta::AddEdge { upper: t, lower: k });
                        if k % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        // Drain while producers are live: per-producer order must survive
        // in the concatenated output, and counters must stay exact.
        let mut seen: Vec<GraphDelta> = Vec::new();
        loop {
            if let Some(batch) = log.drain_batch(97) {
                seen.extend(batch.deltas().iter().copied());
            }
            if producers.iter().all(|p| p.is_finished()) && log.lag() == 0 {
                break;
            }
            std::thread::yield_now();
        }
        for p in producers {
            p.join().unwrap();
        }
        while let Some(batch) = log.drain_batch(usize::MAX) {
            seen.extend(batch.deltas().iter().copied());
        }
        assert_eq!(seen.len(), 1200);
        assert_eq!(log.appended(), 1200);
        assert_eq!(log.drained(), 1200);
        let mut next_per_thread = [0u32; 3];
        for d in seen {
            let GraphDelta::AddEdge { upper, lower } = d else {
                panic!("unexpected delta {d:?}");
            };
            assert_eq!(
                lower, next_per_thread[upper as usize],
                "thread {upper} reordered"
            );
            next_per_thread[upper as usize] += 1;
        }
        assert_eq!(next_per_thread, [400; 3]);
    }

    #[test]
    fn serde_round_trip() {
        let mut b = UpdateBatch::new();
        b.add_edge(1, 2).add_vertex(Layer::Lower).remove_edge(0, 0);
        let json = serde_json::to_string(&b).unwrap();
        let back: UpdateBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}

//! Vertex identifiers and layer designations.
//!
//! A bipartite graph has two vertex layers. Within each layer, vertices are
//! identified by dense `u32` indices starting at zero. A `(Layer, VertexId)`
//! pair uniquely identifies a vertex in the graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A vertex index inside one layer of a bipartite graph.
///
/// Indices are dense: a layer with `n` vertices uses ids `0..n`.
pub type VertexId = u32;

/// The two vertex layers of a bipartite graph.
///
/// The paper denotes these `U(G)` (upper) and `L(G)` (lower). Query vertices
/// always live on the same layer; their candidate common neighbors live on the
/// opposite layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Layer {
    /// The upper layer, `U(G)` in the paper (e.g. users, authors, people).
    Upper,
    /// The lower layer, `L(G)` in the paper (e.g. items, papers, locations).
    Lower,
}

impl Layer {
    /// Returns the opposite layer.
    ///
    /// ```
    /// use bigraph::Layer;
    /// assert_eq!(Layer::Upper.opposite(), Layer::Lower);
    /// assert_eq!(Layer::Lower.opposite(), Layer::Upper);
    /// ```
    #[must_use]
    pub fn opposite(self) -> Layer {
        match self {
            Layer::Upper => Layer::Lower,
            Layer::Lower => Layer::Upper,
        }
    }

    /// A short, stable label used in reports and serialized output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Layer::Upper => "upper",
            Layer::Lower => "lower",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully-qualified vertex reference: layer plus in-layer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VertexRef {
    /// Which layer the vertex belongs to.
    pub layer: Layer,
    /// The vertex index within its layer.
    pub id: VertexId,
}

impl VertexRef {
    /// Creates a new vertex reference.
    #[must_use]
    pub fn new(layer: Layer, id: VertexId) -> Self {
        Self { layer, id }
    }

    /// Convenience constructor for an upper-layer vertex.
    #[must_use]
    pub fn upper(id: VertexId) -> Self {
        Self::new(Layer::Upper, id)
    }

    /// Convenience constructor for a lower-layer vertex.
    #[must_use]
    pub fn lower(id: VertexId) -> Self {
        Self::new(Layer::Lower, id)
    }
}

impl fmt::Display for VertexRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.layer {
            Layer::Upper => write!(f, "u{}", self.id),
            Layer::Lower => write!(f, "v{}", self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        assert_eq!(Layer::Upper.opposite().opposite(), Layer::Upper);
        assert_eq!(Layer::Lower.opposite().opposite(), Layer::Lower);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Layer::Upper.label(), Layer::Lower.label());
        assert_eq!(Layer::Upper.to_string(), "upper");
        assert_eq!(Layer::Lower.to_string(), "lower");
    }

    #[test]
    fn vertex_ref_display() {
        assert_eq!(VertexRef::upper(3).to_string(), "u3");
        assert_eq!(VertexRef::lower(7).to_string(), "v7");
    }

    #[test]
    fn vertex_ref_equality_depends_on_layer() {
        assert_ne!(VertexRef::upper(1), VertexRef::lower(1));
        assert_eq!(VertexRef::upper(1), VertexRef::new(Layer::Upper, 1));
    }

    #[test]
    fn serde_round_trip() {
        let v = VertexRef::lower(42);
        let json = serde_json::to_string(&v).unwrap();
        let back: VertexRef = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}

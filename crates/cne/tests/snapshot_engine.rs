//! Snapshot adoption at the engine and serving layers: an engine or
//! serving tier bootstrapped from a binary snapshot must be
//! indistinguishable — byte-for-byte, across estimates, transcripts, and
//! budget ledgers — from one built from the original graph, and the
//! snapshot's pinned sequence number must be exact (tail replay of
//! non-idempotent `AddVertex` deltas depends on it).

use bigraph::snapshot::GraphSnapshot;
use bigraph::{BipartiteGraph, GraphDelta, Layer};
use cne::serving::{ServingConfig, ServingEngine};
use cne::{AlgorithmKind, EstimationEngine, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// 48 upper over 300 lower with a dense/sparse degree mix, so snapshot
/// adoption covers both the preloaded-bitmap and scratch-packing paths.
fn mixed_graph() -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..48u32 {
        let degree = if u % 2 == 0 {
            30 + (u % 11) as usize
        } else {
            3
        };
        for k in 0..degree {
            edges.push((u, (u * 17 + k as u32 * 7) % 300));
        }
    }
    BipartiteGraph::from_edges(48, 300, edges).unwrap()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cne-snapshot-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("engine.snap")
}

/// Serialized-report equality: estimate bits, budget ledger, transcript
/// aggregates — everything the report carries.
fn assert_same_reports(a: &impl serde::Serialize, b: &impl serde::Serialize) {
    assert_eq!(
        serde_json::to_string(a).unwrap(),
        serde_json::to_string(b).unwrap()
    );
}

#[test]
fn snapshot_engine_reports_are_byte_identical_to_text_built() {
    let g = mixed_graph();
    let snap = GraphSnapshot::from_bytes(&GraphSnapshot::capture(&g, 0).to_bytes()).unwrap();
    let from_snapshot = EstimationEngine::from_snapshot(&snap);
    let from_text = EstimationEngine::from_graph(g);
    from_text.warm(Layer::Upper).warm(Layer::Lower);

    for kind in [
        AlgorithmKind::Naive,
        AlgorithmKind::OneR,
        AlgorithmKind::MultiRSS,
        AlgorithmKind::MultiRDS,
        AlgorithmKind::CentralDP,
    ] {
        for seed in [1u64, 42, 99] {
            let q = Query::new(Layer::Upper, 2, 6);
            let a = from_snapshot
                .estimate(&q, kind, 2.0, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let b = from_text
                .estimate(&q, kind, 2.0, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            assert_same_reports(&a, &b);
        }
    }
    let a = from_snapshot
        .estimate_batch(
            Layer::Upper,
            0,
            &(1..48).collect::<Vec<_>>(),
            2.0,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
    let b = from_text
        .estimate_batch(
            Layer::Upper,
            0,
            &(1..48).collect::<Vec<_>>(),
            2.0,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
    assert_same_reports(&a, &b);
}

#[test]
fn snapshot_adoption_prepopulates_the_warm_store() {
    let g = mixed_graph();
    let snap = GraphSnapshot::capture(&g, 0);
    let engine = EstimationEngine::from_snapshot(&snap);
    // Every packed section entry lands in the store, without a single
    // query having run — the fast-restart property.
    for layer in [Layer::Upper, Layer::Lower] {
        assert_eq!(
            engine.store().cached_count(layer),
            snap.packed(layer).len(),
            "layer {layer:?}"
        );
        for &(v, ref set) in snap.packed(layer) {
            assert_eq!(engine.store().cached(layer, v), Some(set));
        }
    }
    assert!(engine.store().cached_count(Layer::Upper) > 0);
    assert!(engine.store().bytes_used() > 0);
    assert_eq!(engine.graph(), &g);
}

#[test]
fn byte_capped_snapshot_adoption_stays_within_budget_and_bit_identical() {
    let g = mixed_graph();
    let snap = GraphSnapshot::capture(&g, 0);
    // Room for only a handful of bitmaps.
    let cap = 4 * g.n_lower().div_ceil(64) * 8;
    let capped = EstimationEngine::from_snapshot_with_cache_budget(&snap, cap);
    assert!(capped.store().bytes_used() <= cap);
    assert!(capped.store().cached_count(Layer::Upper) < snap.packed(Layer::Upper).len());

    let uncapped = EstimationEngine::from_snapshot(&snap);
    let q = Query::new(Layer::Upper, 0, 4);
    for kind in [AlgorithmKind::OneR, AlgorithmKind::MultiRSS] {
        let a = capped
            .estimate(&q, kind, 2.0, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let b = uncapped
            .estimate(&q, kind, 2.0, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_same_reports(&a, &b);
    }
}

#[test]
fn serving_write_snapshot_pins_the_exact_published_sequence() {
    let serving = ServingEngine::new(mixed_graph());
    let path = scratch("seq");
    // Quiet tier: covers sequence 0.
    assert_eq!(serving.write_snapshot(&path).unwrap(), 0);

    let n = 25u32;
    serving.extend((0..n).map(|i| GraphDelta::AddEdge {
        upper: i % 48,
        lower: (i * 13) % 300,
    }));
    serving.flush();
    let seq = serving.write_snapshot(&path).unwrap();
    assert_eq!(
        seq,
        u64::from(n),
        "stamp must be the exact covered sequence"
    );
    let snap = bigraph::read_snapshot(&path).unwrap();
    assert_eq!(snap.log_seq(), u64::from(n));
    assert_eq!(snap.graph(), serving.snapshot().graph());
}

#[test]
fn serving_round_trip_through_disk_preserves_reports_and_streaming() {
    // Stream into a tier, snapshot it, bootstrap a second tier from the
    // file, then stream the SAME suffix (AddVertex included — the
    // non-idempotent delta) into both and compare end states + reports.
    let deltas: Vec<GraphDelta> = (0..60u32)
        .map(|i| match i % 5 {
            0 => GraphDelta::RemoveEdge {
                upper: i % 48,
                lower: (i * 17) % 300,
            },
            4 => GraphDelta::AddVertex {
                layer: Layer::Lower,
            },
            _ => GraphDelta::AddEdge {
                upper: (i * 7) % 48,
                lower: (i * 29) % 300,
            },
        })
        .collect();
    let (head, tail) = deltas.split_at(40);

    let original = ServingEngine::with_config(
        mixed_graph(),
        ServingConfig {
            warm_layer: Some(Layer::Upper),
            ..ServingConfig::default()
        },
    );
    original.extend(head.iter().copied());
    original.flush();
    let path = scratch("roundtrip");
    let seq = original.write_snapshot(&path).unwrap();
    assert_eq!(seq, head.len() as u64);

    let snap = bigraph::read_snapshot(&path).unwrap();
    let restored = ServingEngine::bootstrap_from_snapshot(&snap, ServingConfig::default());

    // Identical reports right after bootstrap...
    let q = Query::new(Layer::Upper, 2, 9);
    let a = original
        .estimate(
            &q,
            AlgorithmKind::MultiRSS,
            2.0,
            &mut StdRng::seed_from_u64(11),
        )
        .unwrap();
    let b = restored
        .estimate(
            &q,
            AlgorithmKind::MultiRSS,
            2.0,
            &mut StdRng::seed_from_u64(11),
        )
        .unwrap();
    assert_same_reports(&a, &b);

    // ...and after both tiers ingest the identical tail.
    original.extend(tail.iter().copied());
    restored.extend(tail.iter().copied());
    original.flush();
    restored.flush();
    let a = original
        .estimate(
            &q,
            AlgorithmKind::MultiRDS,
            2.0,
            &mut StdRng::seed_from_u64(23),
        )
        .unwrap();
    let b = restored
        .estimate(
            &q,
            AlgorithmKind::MultiRDS,
            2.0,
            &mut StdRng::seed_from_u64(23),
        )
        .unwrap();
    assert_same_reports(&a, &b);

    let final_original = original.into_engine();
    let final_restored = restored.into_engine();
    assert_eq!(final_original.graph(), final_restored.graph());
}

//! Regression and property tests for the mutable-graph subsystem
//! (ISSUE 4 tentpole): streaming update batches, precise `AdjacencyStore`
//! invalidation, and the byte-capped LRU store.
//!
//! The contracts under test (see the `cne::engine` module docs, "Mutation &
//! invalidation lifecycle"):
//!
//! 1. **Update transparency** — after an arbitrary sequence of update
//!    batches interleaved with queries, a warm engine's estimates are
//!    **byte-identical** to a cold engine built from scratch on the
//!    post-update graph.
//! 2. **Budget safety** — a byte-capped store never exceeds its configured
//!    budget at any observation point, while still answering every query
//!    byte-identically to an unbounded engine.
//! 3. **Generation checks** — readers holding a stale generation snapshot
//!    are rejected with `StaleGeneration`, never silently served.

use bigraph::{BipartiteGraph, GraphDelta, Layer, UpdateBatch, UpdateLog};
use cne::batch::BatchReport;
use cne::{AlgorithmKind, CneError, EstimationEngine, Query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_UPPER: usize = 12;
const N_LOWER: usize = 96; // ≥ 64 so some vertices cross the dense threshold

/// A graph dense enough that several upper vertices take the packed
/// (cache-hitting) dispatch: universe 96 → 2 words → dense means degree > 4.
fn base_graph() -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..N_UPPER as u32 {
        let degree = 3 + (u * 7) % 40;
        for k in 0..degree {
            edges.push((u, (u * 31 + k * 5) % N_LOWER as u32));
        }
    }
    BipartiteGraph::from_edges(N_UPPER, N_LOWER, edges).unwrap()
}

/// Batch-report fingerprint at full bit precision.
fn bits(report: &BatchReport) -> Vec<u64> {
    report
        .estimates
        .iter()
        .map(|e| e.estimate.to_bits())
        .collect()
}

/// Runs the reference screening query on `engine` with a fixed seed.
fn screen(engine: &EstimationEngine<'_>, target: u32, seed: u64) -> Vec<u64> {
    let candidates: Vec<u32> = (0..N_UPPER as u32).filter(|&w| w != target).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    bits(
        &engine
            .estimate_batch(Layer::Upper, target, &candidates, 2.0, &mut rng)
            .unwrap(),
    )
}

/// Raw delta descriptors: kind 0 = add edge, 1 = remove edge, 2 = add a
/// lower vertex (coarsely invalidates upper bitmaps), 3 = add an upper
/// vertex (coarsely invalidates lower bitmaps — and must not swallow the
/// same-round precise invalidation of touched upper vertices).
fn arb_rounds() -> impl Strategy<Value = Vec<Vec<(u8, u32, u32)>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..4, 0u32..N_UPPER as u32, 0u32..N_LOWER as u32), 1..12),
        1..5,
    )
}

/// Materializes one round of raw descriptors into a batch, tracking the
/// growing lower-layer size so every edge delta is in range. (Edge deltas
/// stay on the base vertices, so the query workload is always valid.)
fn materialize(raw: &[(u8, u32, u32)], n_lower: &mut usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for &(kind, u, v) in raw {
        match kind {
            0 => batch.add_edge(u, v % *n_lower as u32),
            1 => batch.remove_edge(u, v % *n_lower as u32),
            2 => {
                *n_lower += 1;
                batch.add_vertex(Layer::Lower)
            }
            _ => batch.add_vertex(Layer::Upper),
        };
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: any interleaving of update batches and queries leaves the
    /// warm engine byte-identical to a cold rebuild — for the batch
    /// protocol and for a point query of every estimator family's shared
    /// machinery (MultiR-SS exercises the single-source hot path).
    #[test]
    fn updates_are_byte_identical_to_cold_rebuild(rounds in arb_rounds(), seed in 0u64..1000) {
        let mut engine = EstimationEngine::from_graph(base_graph());
        engine.warm(Layer::Upper);
        let mut n_lower = N_LOWER;
        for (i, raw) in rounds.iter().enumerate() {
            let batch = materialize(raw, &mut n_lower);
            engine.apply_updates(&batch).unwrap();
            // Interleave: query the warm engine after every batch, not just
            // at the end, so stale cache entries would be caught mid-stream.
            let round_seed = seed + i as u64;
            let warm = screen(&engine, 0, round_seed);
            let cold_engine = EstimationEngine::new(engine.graph());
            let cold = screen(&cold_engine, 0, round_seed);
            prop_assert_eq!(&warm, &cold, "batch round {}", i);

            let q = Query::new(Layer::Upper, 1, 2);
            let mut rng_a = StdRng::seed_from_u64(round_seed);
            let mut rng_b = StdRng::seed_from_u64(round_seed);
            let a = engine.estimate(&q, AlgorithmKind::MultiRSS, 2.0, &mut rng_a).unwrap();
            let b = cold_engine.estimate(&q, AlgorithmKind::MultiRSS, 2.0, &mut rng_b).unwrap();
            prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            prop_assert_eq!(&a.transcript, &b.transcript);
        }
        prop_assert_eq!(engine.generation() as usize > 0, engine.graph().epoch() > 0);
    }

    /// Property 2: a byte-capped engine never exceeds its budget at any
    /// observation point and stays byte-identical to the unbounded engine
    /// through the same update/query interleaving.
    #[test]
    fn capped_store_is_bounded_and_identical(rounds in arb_rounds(), seed in 0u64..1000) {
        // Room for about three 2-word bitmaps: tight enough that admission
        // declines and evictions actually happen on this workload.
        let cap = 48usize;
        let mut capped = EstimationEngine::from_graph_with_cache_budget(base_graph(), cap);
        let mut unbounded = EstimationEngine::from_graph(base_graph());
        capped.warm(Layer::Upper);
        unbounded.warm(Layer::Upper);
        prop_assert!(capped.store().bytes_used() <= cap);
        let mut n_lower = N_LOWER;
        for (i, raw) in rounds.iter().enumerate() {
            let batch = materialize(raw, &mut n_lower);
            capped.apply_updates(&batch).unwrap();
            unbounded.apply_updates(&batch).unwrap();
            let round_seed = seed.wrapping_add(i as u64);
            for target in [0u32, 3] {
                let a = screen(&capped, target, round_seed);
                let b = screen(&unbounded, target, round_seed);
                prop_assert_eq!(a, b, "round {} target {}", i, target);
                prop_assert!(
                    capped.store().bytes_used() <= cap,
                    "byte budget exceeded: {} > {}",
                    capped.store().bytes_used(),
                    cap
                );
            }
            capped.maintain_cache();
            prop_assert!(capped.store().bytes_used() <= cap);
        }
    }
}

#[test]
fn update_log_drains_into_engine_rounds() {
    // The ingestion front end to end: producers append to the log, the
    // writer drains bounded batches and applies them between query rounds.
    let mut engine = EstimationEngine::from_graph(base_graph());
    let log = UpdateLog::new();
    for k in 0..10u32 {
        log.append(GraphDelta::AddEdge {
            upper: k % 4,
            lower: 90 + (k % 6),
        });
    }
    log.append(GraphDelta::RemoveEdge { upper: 0, lower: 0 });
    let mut applied_batches = 0;
    while let Some(batch) = log.drain_batch(4) {
        engine.apply_updates(&batch).unwrap();
        applied_batches += 1;
    }
    assert_eq!(applied_batches, 3, "11 deltas in chunks of 4");
    assert_eq!(log.pending(), 0);
    assert_eq!(log.drained(), 11);
    assert!(engine.graph().has_edge(0, 90));
    assert!(!engine.graph().has_edge(0, 0));
    // The engine's answers match a cold rebuild after the whole stream.
    let cold = EstimationEngine::new(engine.graph());
    assert_eq!(screen(&engine, 0, 7), screen(&cold, 0, 7));
}

#[test]
fn stale_readers_are_rejected_not_served() {
    let mut engine = EstimationEngine::from_graph(base_graph());
    let snapshot = engine.generation();
    let candidates: Vec<u32> = (1..6).collect();
    // Reader and engine agree: the checked read succeeds.
    let mut rng = StdRng::seed_from_u64(5);
    engine
        .estimate_batch_at(snapshot, Layer::Upper, 0, &candidates, 2.0, &mut rng)
        .unwrap();
    // An effective update lands.
    let mut batch = UpdateBatch::new();
    batch.add_edge(0, 95).remove_edge(1, 0);
    engine.apply_updates(&batch).unwrap();
    // The stale snapshot is rejected with the structured error...
    let mut rng = StdRng::seed_from_u64(5);
    let err = engine
        .estimate_batch_at(snapshot, Layer::Upper, 0, &candidates, 2.0, &mut rng)
        .unwrap_err();
    assert!(matches!(
        err,
        CneError::StaleGeneration {
            observed: 0,
            current: 1
        }
    ));
    // ...and refreshing the snapshot is the documented recovery.
    let fresh = engine.generation();
    let mut rng = StdRng::seed_from_u64(5);
    engine
        .estimate_batch_at(fresh, Layer::Upper, 0, &candidates, 2.0, &mut rng)
        .unwrap();
}

#[test]
fn eviction_preserves_results_under_thrashing() {
    // A cap that fits only a few bitmaps while the workload cycles through
    // many dense targets: admissions decline, maintain evicts, and every
    // answer must still equal the unbounded engine's.
    let g = base_graph();
    let cap = 32usize;
    let mut capped = EstimationEngine::with_cache_budget(&g, cap);
    let unbounded = EstimationEngine::new(&g);
    for round in 0..6u64 {
        for target in 0..N_UPPER as u32 {
            let a = screen(&capped, target, round);
            let b = screen(&unbounded, target, round);
            assert_eq!(a, b, "round {round} target {target}");
            assert!(capped.store().bytes_used() <= cap);
        }
        capped.maintain_cache();
        assert!(capped.store().bytes_used() <= cap);
    }
}

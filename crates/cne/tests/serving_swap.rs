//! Swap-correctness suite for the double-buffered serving tier
//! (ISSUE 7 tentpole): every pinned snapshot must be **byte-identical** to
//! a cold engine built at that snapshot's epoch — transcripts included —
//! across randomized interleavings of update batches and queries, with
//! concurrent readers, and whether or not the writer published while a
//! snapshot was held.
//!
//! Contracts under test (see the `cne::serving` module docs):
//!
//! 1. **Snapshot identity** — a pinned [`EngineSnapshot`]'s estimates,
//!    transcripts, and graph equal a cold [`EstimationEngine`] built from
//!    the snapshot's graph.
//! 2. **Pin stability** — a held snapshot keeps serving its epoch's state,
//!    bit-for-bit, while the writer publishes newer epochs underneath it,
//!    and fresh snapshots see the new state immediately.
//! 3. **Retry-hint semantics** — generation misses on the serving tier are
//!    transparently re-resolved, and the bounded-retry engine helper
//!    consumes no randomness on a rejected attempt.
//! 4. **Convergence** — after the log drains, the final engine state
//!    equals a reference replay of the same delta stream, regardless of
//!    how the writer chunked it into batches.
//!
//! The suite runs under the `RAYON_NUM_THREADS=1/4/8` determinism matrix
//! (the `estimate_many_targets` comparisons exercise the sharded path) and
//! under `CNE_FORCE_PORTABLE_KERNELS=1` in the portable-kernels CI leg.

use bigraph::{BipartiteGraph, GraphDelta, Layer, UpdateBatch};
use cne::batch::BatchReport;
use cne::serving::{EngineSnapshot, ServingConfig, ServingEngine};
use cne::{AlgorithmKind, CneError, EstimationEngine, Query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const N_UPPER: usize = 12;
const N_LOWER: usize = 96; // ≥ 64 so some vertices cross the dense threshold

/// Same base graph as `streaming_updates.rs`: dense enough that several
/// upper vertices take the packed (cache-hitting) dispatch.
fn base_graph() -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..N_UPPER as u32 {
        let degree = 3 + (u * 7) % 40;
        for k in 0..degree {
            edges.push((u, (u * 31 + k * 5) % N_LOWER as u32));
        }
    }
    BipartiteGraph::from_edges(N_UPPER, N_LOWER, edges).unwrap()
}

/// A serving config tuned for tests: the writer idles until `flush`
/// unparks it, so each flush drains one predictable batch.
fn test_config() -> ServingConfig {
    ServingConfig {
        poll_interval: Duration::from_millis(50),
        ..ServingConfig::default()
    }
}

/// Batch-report fingerprint at full bit precision.
fn bits(report: &BatchReport) -> Vec<u64> {
    report
        .estimates
        .iter()
        .map(|e| e.estimate.to_bits())
        .collect()
}

/// Runs the reference screening query on `engine` with a fixed seed.
fn screen(engine: &EstimationEngine<'_>, target: u32, seed: u64) -> Vec<u64> {
    let candidates: Vec<u32> = (0..N_UPPER as u32).filter(|&w| w != target).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    bits(
        &engine
            .estimate_batch(Layer::Upper, target, &candidates, 2.0, &mut rng)
            .unwrap(),
    )
}

/// Asserts a pinned snapshot is byte-identical to a cold engine built from
/// the snapshot's own graph: batch screening, a point query with its full
/// transcript, and the sharded multi-target path.
fn assert_snapshot_matches_cold(snap: &EngineSnapshot<'_>, seed: u64) {
    let cold = EstimationEngine::new(snap.graph());
    assert_eq!(screen(snap.engine(), 0, seed), screen(&cold, 0, seed));

    let q = Query::new(Layer::Upper, 1, 2);
    let mut rng_a = StdRng::seed_from_u64(seed);
    let mut rng_b = StdRng::seed_from_u64(seed);
    let a = snap
        .estimate(&q, AlgorithmKind::MultiRSS, 2.0, &mut rng_a)
        .unwrap();
    let b = cold
        .estimate(&q, AlgorithmKind::MultiRSS, 2.0, &mut rng_b)
        .unwrap();
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    assert_eq!(a.transcript, b.transcript);

    let targets = [0u32, 3, 5];
    let candidates: Vec<u32> = (0..N_UPPER as u32).collect();
    let many_a = snap
        .estimate_many_targets(Layer::Upper, &targets, &candidates, 2.0, seed)
        .unwrap();
    let many_b = cold
        .estimate_many_targets(Layer::Upper, &targets, &candidates, 2.0, seed)
        .unwrap();
    for (ra, rb) in many_a.iter().zip(&many_b) {
        assert_eq!(bits(ra), bits(rb));
    }
}

/// Raw delta descriptors, as in `streaming_updates.rs`: kind 0 = add edge,
/// 1 = remove edge, 2 = add a lower vertex, 3 = add an upper vertex.
fn arb_rounds() -> impl Strategy<Value = Vec<Vec<(u8, u32, u32)>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..4, 0u32..N_UPPER as u32, 0u32..N_LOWER as u32), 1..12),
        1..5,
    )
}

/// Materializes one round of raw descriptors into deltas, tracking the
/// growing lower-layer size so every edge delta is in range.
fn materialize(raw: &[(u8, u32, u32)], n_lower: &mut usize) -> Vec<GraphDelta> {
    let mut deltas = Vec::with_capacity(raw.len());
    for &(kind, u, v) in raw {
        deltas.push(match kind {
            0 => GraphDelta::AddEdge {
                upper: u,
                lower: v % *n_lower as u32,
            },
            1 => GraphDelta::RemoveEdge {
                upper: u,
                lower: v % *n_lower as u32,
            },
            2 => {
                *n_lower += 1;
                GraphDelta::AddVertex {
                    layer: Layer::Lower,
                }
            }
            _ => GraphDelta::AddVertex {
                layer: Layer::Upper,
            },
        });
    }
    deltas
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 1 + 4 across randomized interleavings: after every flushed
    /// round, a fresh pinned snapshot equals a cold engine on its graph,
    /// and the reference replay of the same delta stream (batch boundaries
    /// chosen independently of the writer's chunking) converges to the
    /// same graph.
    #[test]
    fn pinned_snapshots_match_cold_engine_across_interleavings(
        rounds in arb_rounds(),
        seed in 0u64..1000,
    ) {
        let serving = ServingEngine::with_config(base_graph(), test_config());
        let mut reference = base_graph();
        let mut n_lower = N_LOWER;
        for (i, raw) in rounds.iter().enumerate() {
            let deltas = materialize(raw, &mut n_lower);
            let batch: UpdateBatch = deltas.iter().copied().collect();
            reference.apply_update_batch(&batch).unwrap();
            serving.extend(deltas);
            serving.flush();
            let snap = serving.snapshot();
            prop_assert_eq!(snap.graph(), &reference, "round {}", i);
            assert_snapshot_matches_cold(&snap, seed + i as u64);
        }
        prop_assert_eq!(serving.stats().ingest_lag, 0);
        let final_engine = serving.into_engine();
        prop_assert_eq!(final_engine.graph(), &reference);
    }
}

#[test]
fn held_snapshot_is_stable_while_writer_publishes() {
    let serving = ServingEngine::with_config(base_graph(), test_config());
    let old = serving.snapshot();
    let old_bits = screen(old.engine(), 0, 42);
    let old_epoch = old.epoch();
    assert!(!old.graph().has_edge(0, 95));

    // A publish lands *while `old` stays pinned*: flush returns without
    // the held snapshot ever blocking the swap.
    serving.append(GraphDelta::AddEdge {
        upper: 0,
        lower: 95,
    });
    serving.flush();

    // Fresh snapshots resolve to the new epoch immediately...
    let fresh = serving.snapshot();
    assert!(fresh.epoch() > old_epoch);
    assert!(fresh.graph().has_edge(0, 95));
    assert_eq!(fresh.generation(), 1);
    assert_snapshot_matches_cold(&fresh, 43);
    drop(fresh);

    // ...while the held snapshot keeps serving its epoch bit-for-bit.
    assert_eq!(old.epoch(), old_epoch);
    assert_eq!(old.generation(), 0);
    assert!(!old.graph().has_edge(0, 95));
    assert_eq!(screen(old.engine(), 0, 42), old_bits);
    assert_snapshot_matches_cold(&old, 44);
    drop(old);

    // With the old epoch retired, the next cycle recycles its buffer.
    serving.append(GraphDelta::RemoveEdge {
        upper: 0,
        lower: 95,
    });
    serving.flush();
    let snap = serving.snapshot();
    assert!(!snap.graph().has_edge(0, 95));
    assert_eq!(snap.generation(), 2);
    assert_snapshot_matches_cold(&snap, 45);
}

#[test]
fn concurrent_readers_always_see_consistent_snapshots() {
    let serving = ServingEngine::new(base_graph());
    std::thread::scope(|scope| {
        for reader in 0..2u64 {
            let serving = &serving;
            scope.spawn(move || {
                for i in 0..12u64 {
                    let snap = serving.snapshot();
                    assert_snapshot_matches_cold(&snap, reader * 1000 + i);
                }
            });
        }
        // Meanwhile the writer keeps publishing a live stream.
        for k in 0..40u32 {
            serving.append(if k % 3 == 0 {
                GraphDelta::RemoveEdge {
                    upper: k % N_UPPER as u32,
                    lower: (k * 17) % N_LOWER as u32,
                }
            } else {
                GraphDelta::AddEdge {
                    upper: k % N_UPPER as u32,
                    lower: (k * 13) % N_LOWER as u32,
                }
            });
            if k % 8 == 0 {
                std::thread::yield_now();
            }
        }
    });
    serving.flush();

    // Convergence: the final state equals a reference replay of the same
    // stream (one batch; boundaries don't change the net graph).
    let mut reference = base_graph();
    let mut batch = UpdateBatch::new();
    for k in 0..40u32 {
        if k % 3 == 0 {
            batch.remove_edge(k % N_UPPER as u32, (k * 17) % N_LOWER as u32);
        } else {
            batch.add_edge(k % N_UPPER as u32, (k * 13) % N_LOWER as u32);
        }
    }
    reference.apply_update_batch(&batch).unwrap();
    let final_engine = serving.into_engine();
    assert_eq!(final_engine.graph(), &reference);
}

#[test]
fn stale_generation_is_a_transparent_retry_on_the_serving_tier() {
    let serving = ServingEngine::with_config(base_graph(), test_config());
    let candidates: Vec<u32> = (1..6).collect();
    let stale_generation = serving.snapshot().generation();

    // Updates publish; the caller's generation cursor is now stale.
    serving.append(GraphDelta::AddEdge {
        upper: 0,
        lower: 95,
    });
    serving.flush();

    // The serving tier re-resolves instead of erroring, reports the
    // generation actually served, and the result is byte-identical to a
    // caller that had a fresh cursor all along.
    let mut rng = StdRng::seed_from_u64(9);
    let (report, served) = serving
        .estimate_batch_at(
            stale_generation,
            Layer::Upper,
            0,
            &candidates,
            2.0,
            &mut rng,
        )
        .unwrap();
    assert_eq!(served, 1);
    let mut rng = StdRng::seed_from_u64(9);
    let (fresh_report, fresh_served) = serving
        .estimate_batch_at(served, Layer::Upper, 0, &candidates, 2.0, &mut rng)
        .unwrap();
    assert_eq!(fresh_served, served);
    assert_eq!(bits(&report), bits(&fresh_report));

    // Point-query flavour.
    let q = Query::new(Layer::Upper, 1, 2);
    let mut rng = StdRng::seed_from_u64(11);
    let (point, point_served) = serving
        .estimate_at(stale_generation, &q, AlgorithmKind::OneR, 2.0, &mut rng)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let (point_fresh, _) = serving
        .estimate_at(point_served, &q, AlgorithmKind::OneR, 2.0, &mut rng)
        .unwrap();
    assert_eq!(point.estimate.to_bits(), point_fresh.estimate.to_bits());
    assert_eq!(point.transcript, point_fresh.transcript);
}

#[test]
fn bounded_retry_helper_consumes_no_randomness_on_rejection() {
    let mut engine = EstimationEngine::from_graph(base_graph());
    let stale = engine.generation();
    let mut batch = UpdateBatch::new();
    batch.add_edge(0, 95);
    engine.apply_updates(&batch).unwrap();

    let candidates: Vec<u32> = (1..6).collect();

    // max_retries = 0 keeps the strict stale-rejection semantics.
    let mut cursor = stale;
    let mut rng = StdRng::seed_from_u64(3);
    let err = engine
        .estimate_batch_with_retry(&mut cursor, Layer::Upper, 0, &candidates, 2.0, &mut rng, 0)
        .unwrap_err();
    assert_eq!(err.stale_current(), Some(1));
    assert!(matches!(err, CneError::StaleGeneration { observed: 0, .. }));

    // One retry succeeds, advances the cursor, and — because the rejected
    // attempt consumed no randomness — the report is byte-identical to a
    // first-try success with the same seed.
    let mut cursor = stale;
    let mut rng = StdRng::seed_from_u64(3);
    let retried = engine
        .estimate_batch_with_retry(&mut cursor, Layer::Upper, 0, &candidates, 2.0, &mut rng, 1)
        .unwrap();
    assert_eq!(cursor, 1);
    let mut rng = StdRng::seed_from_u64(3);
    let direct = engine
        .estimate_batch(Layer::Upper, 0, &candidates, 2.0, &mut rng)
        .unwrap();
    assert_eq!(bits(&retried), bits(&direct));

    // Point-query flavour of the helper.
    let q = Query::new(Layer::Upper, 1, 2);
    let mut cursor = stale;
    let mut rng = StdRng::seed_from_u64(4);
    let report = engine
        .estimate_with_retry(&mut cursor, &q, AlgorithmKind::MultiRSS, 2.0, &mut rng, 1)
        .unwrap();
    assert_eq!(cursor, 1);
    let mut rng = StdRng::seed_from_u64(4);
    let direct = engine
        .estimate(&q, AlgorithmKind::MultiRSS, 2.0, &mut rng)
        .unwrap();
    assert_eq!(report.estimate.to_bits(), direct.estimate.to_bits());
    assert_eq!(report.transcript, direct.transcript);
}

#[test]
fn rejected_batches_drop_without_diverging_the_buffers() {
    let serving = ServingEngine::with_config(base_graph(), test_config());

    serving.append(GraphDelta::AddEdge {
        upper: 0,
        lower: 95,
    });
    serving.flush();

    // An out-of-range endpoint: the drained batch is transactionally
    // rejected, the publish cursor still advances past it (flush must not
    // hang on poisoned input), and the rejected counter records it.
    serving.append(GraphDelta::AddEdge {
        upper: 10_000,
        lower: 0,
    });
    serving.flush();
    let stats = serving.stats();
    assert_eq!(stats.ingest_lag, 0);
    assert_eq!(stats.rejected, 1);

    // Ingestion keeps going, and both buffers stayed on the valid-stream
    // state: a fresh snapshot equals a cold engine on the expected graph.
    serving.append(GraphDelta::AddEdge {
        upper: 1,
        lower: 95,
    });
    serving.flush();
    let snap = serving.snapshot();
    let mut expected = base_graph();
    let mut batch = UpdateBatch::new();
    batch.add_edge(0, 95).add_edge(1, 95);
    expected.apply_update_batch(&batch).unwrap();
    assert_eq!(snap.graph(), &expected);
    assert_eq!(snap.generation(), 2);
    assert_snapshot_matches_cold(&snap, 77);
    drop(snap);

    // And the final drained engine matches too.
    assert_eq!(serving.into_engine().graph(), &expected);
}

#[test]
fn byte_capped_serving_buffers_stay_identical_to_unbounded() {
    // Contract 1 under cache pressure: a byte-capped serving tier answers
    // byte-identically to an unbounded one through the same stream (caps
    // change eviction, never estimates).
    let capped = ServingEngine::with_config(
        base_graph(),
        ServingConfig {
            cache_budget: Some(48),
            ..test_config()
        },
    );
    let unbounded = ServingEngine::with_config(base_graph(), test_config());
    for k in 0..24u32 {
        let delta = GraphDelta::AddEdge {
            upper: k % N_UPPER as u32,
            lower: (k * 29) % N_LOWER as u32,
        };
        capped.append(delta);
        unbounded.append(delta);
        if k % 6 == 5 {
            capped.flush();
            unbounded.flush();
            let a = capped.snapshot();
            let b = unbounded.snapshot();
            for target in [0u32, 3] {
                assert_eq!(
                    screen(a.engine(), target, u64::from(k)),
                    screen(b.engine(), target, u64::from(k)),
                    "k={k} target={target}"
                );
            }
            assert!(a.store().bytes_used() <= 48);
        }
    }
}

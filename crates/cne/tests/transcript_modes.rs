//! Property tests for the lean vs detailed accounting contract
//! (`cne::engine` module docs): the always-on [`ldp::TranscriptStats`]
//! aggregates must be identical to what the retained detailed message log
//! implies, and switching modes must never change an estimate or a budget
//! total by a single bit.

use bigraph::{BipartiteGraph, Layer};
use cne::batch::BatchSingleSource;
use cne::{
    run_detailed, CentralDP, EngineEstimator, MultiRDS, MultiRDSBasic, MultiRDSStar, MultiRSS,
    Naive, OneR, Query,
};
use ldp::budget::{BudgetAccountant, Composition};
use ldp::transcript::{Direction, Transcript};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random graph with degrees spanning the sparse-probe and dense-packed
/// dispatch branches, plus a valid query pair.
fn arb_instance() -> impl Strategy<Value = (BipartiteGraph, Query)> {
    (4usize..12, 64usize..320, any::<u64>()).prop_map(|(n_upper, n_lower, seed)| {
        let mut edges = Vec::new();
        for u in 0..n_upper as u32 {
            // Vertex u gets degree between 2 and ~n_lower/2, striding the
            // lower layer so neighborhoods overlap but differ.
            let degree = 2 + (seed as u32 ^ (u * 7)) % (n_lower as u32 / 2);
            for k in 0..degree {
                edges.push((u, (u * 13 + k * 3) % n_lower as u32));
            }
        }
        let g = BipartiteGraph::from_edges(n_upper, n_lower, edges).expect("edges in range");
        (g, Query::new(Layer::Upper, 0, 1))
    })
}

fn estimators() -> Vec<Box<dyn EngineEstimator>> {
    vec![
        Box::new(Naive),
        Box::new(OneR::default()),
        Box::new(MultiRSS::default()),
        Box::new(MultiRDSBasic::default()),
        Box::new(MultiRDS::default()),
        Box::new(MultiRDSStar),
        Box::new(CentralDP),
    ]
}

/// Recomputes every aggregate the lean stats claim from the retained
/// detailed message log and asserts they agree.
fn assert_stats_match_log(transcript: &Transcript) {
    let messages = transcript.messages();
    assert_eq!(transcript.message_count(), messages.len());
    assert_eq!(
        transcript.total_bytes(),
        messages.iter().map(|m| m.bytes).sum::<usize>()
    );
    assert_eq!(
        transcript.rounds(),
        messages.iter().map(|m| m.round).max().unwrap_or(0)
    );
    for direction in [Direction::Upload, Direction::Download] {
        assert_eq!(
            transcript.bytes_in_direction(direction),
            messages
                .iter()
                .filter(|m| m.direction == direction)
                .map(|m| m.bytes)
                .sum::<usize>()
        );
    }
    for round in 1..=4u32 {
        assert_eq!(
            transcript.bytes_in_round(round),
            messages
                .iter()
                .filter(|m| m.round == round)
                .map(|m| m.bytes)
                .sum::<usize>()
        );
        let cell_up = transcript.stats().cell(round, Direction::Upload);
        let in_cell: Vec<_> = messages
            .iter()
            .filter(|m| m.round == round && m.direction == Direction::Upload)
            .collect();
        assert_eq!(cell_up.messages as usize, in_cell.len());
        assert_eq!(
            cell_up.bytes as usize,
            in_cell.iter().map(|m| m.bytes).sum::<usize>()
        );
    }
    for m in messages {
        assert!(!m.label.is_empty(), "retained labels must render non-empty");
    }
}

/// Recomputes consumption from the retained ledger with the grouping rule
/// (sequential charges add, parallel charges max into the open group) and
/// asserts it matches the incrementally tracked total bit for bit.
fn assert_ledger_matches_consumed(budget: &BudgetAccountant) {
    let mut total = 0.0f64;
    let mut group = 0.0f64;
    for charge in budget.charges() {
        match charge.composition {
            Composition::Sequential => {
                total += group;
                group = charge.epsilon;
            }
            Composition::Parallel => {
                group = group.max(charge.epsilon);
            }
        }
    }
    assert_eq!((total + group).to_bits(), budget.consumed().to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every algorithm: a lean run and a detailed run on the same seed
    /// produce bit-identical estimates and aggregates, and the detailed
    /// run's retained logs reproduce the lean aggregates exactly.
    #[test]
    fn lean_and_detailed_runs_agree_for_every_algorithm(
        (g, query) in arb_instance(),
        epsilon in 0.5f64..4.0,
        seed in any::<u64>(),
    ) {
        for est in &estimators() {
            let mut rng_lean = StdRng::seed_from_u64(seed);
            let mut rng_detail = StdRng::seed_from_u64(seed);
            let lean = est.estimate(&g, &query, epsilon, &mut rng_lean).unwrap();
            let detail = run_detailed(est.as_ref(), &g, &query, epsilon, &mut rng_detail).unwrap();

            prop_assert_eq!(lean.estimate.to_bits(), detail.estimate.to_bits());
            prop_assert_eq!(
                lean.budget.consumed().to_bits(),
                detail.budget.consumed().to_bits()
            );
            prop_assert_eq!(lean.transcript.stats(), detail.transcript.stats());
            prop_assert!(lean.transcript.messages().is_empty());
            prop_assert!(lean.budget.charges().is_empty());
            prop_assert!(!detail.budget.charges().is_empty());
            assert_stats_match_log(&detail.transcript);
            assert_ledger_matches_consumed(&detail.budget);
        }
    }

    /// The batch protocol honors the same contract, per candidate.
    #[test]
    fn lean_and_detailed_batch_runs_agree(
        (g, _) in arb_instance(),
        epsilon in 0.5f64..4.0,
        seed in any::<u64>(),
        n_candidates in 2usize..8,
    ) {
        let k = n_candidates.min(g.n_upper() - 1);
        let candidates: Vec<u32> = (1..=k as u32).collect();
        let algo = BatchSingleSource::default();
        let mut rng_lean = StdRng::seed_from_u64(seed);
        let mut rng_detail = StdRng::seed_from_u64(seed);
        let lean = algo
            .estimate_batch(&g, Layer::Upper, 0, &candidates, epsilon, &mut rng_lean)
            .unwrap();
        let detail = algo
            .estimate_batch_detailed(&g, Layer::Upper, 0, &candidates, epsilon, &mut rng_detail)
            .unwrap();

        let bits = |r: &cne::BatchReport| -> Vec<u64> {
            r.estimates.iter().map(|e| e.estimate.to_bits()).collect()
        };
        prop_assert_eq!(bits(&lean), bits(&detail));
        prop_assert_eq!(
            lean.budget.consumed().to_bits(),
            detail.budget.consumed().to_bits()
        );
        prop_assert_eq!(lean.transcript.stats(), detail.transcript.stats());
        prop_assert!(lean.transcript.messages().is_empty());
        // One download + one scalar upload per candidate, one target upload.
        prop_assert_eq!(detail.transcript.messages().len(), 1 + 2 * candidates.len());
        assert_stats_match_log(&detail.transcript);
        assert_ledger_matches_consumed(&detail.budget);
    }
}

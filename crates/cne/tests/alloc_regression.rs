//! Allocation-count regression test for the warm batch hot path.
//!
//! The contract (ISSUE 3 tentpole, `cne::engine` module docs): after
//! warmup, the inner candidate loop of `estimate_batch` performs **zero
//! heap allocations per candidate** — lean transcript/ledger accounting is
//! pure counter arithmetic, interned labels are never rendered, and any
//! per-candidate packing reuses the worker's scratch arena. The test pins
//! that down with a counting global allocator: the total allocation count
//! of a warm batch call must not depend on the number of candidates.
//!
//! Run in release mode in CI (`cargo test --release -p cne --test
//! alloc_regression`) so the count reflects the optimized hot path.

use bigraph::{BipartiteGraph, Layer};
use cne::batch::BatchSingleSource;
use cne::EstimationEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// 120 upper vertices over 4 096 items (64 packed words): every candidate
/// has degree 400 > 2·64 = 128, i.e. all of them take the dense packed
/// dispatch — the branch that used to allocate a fresh bitmap per
/// candidate on the uncached path.
fn dense_screening_graph() -> BipartiteGraph {
    const N_ITEMS: u32 = 4_096;
    const DEGREE: u32 = 400;
    let n_upper = 121u32;
    let mut edges = Vec::with_capacity((n_upper * DEGREE) as usize);
    for u in 0..n_upper {
        for k in 0..DEGREE {
            edges.push((u, (u.wrapping_mul(389).wrapping_add(k * 7)) % N_ITEMS));
        }
    }
    BipartiteGraph::from_edges(n_upper as usize, N_ITEMS as usize, edges).expect("valid edges")
}

/// One test function (not several) so no concurrent test thread can
/// perturb the global allocation counter mid-measurement.
#[test]
fn warm_batch_inner_loop_is_allocation_free_per_candidate() {
    // Pin the fan-out to the calling thread: worker threads spawned per
    // call would (legitimately) allocate their stacks, and the thread-local
    // scratch arenas of short-lived workers cannot stay warm. On one
    // thread the arena persists across calls, which is the steady state a
    // long-lived single-shard service sees.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let g = dense_screening_graph();
    let small: Vec<u32> = (1..=30).collect();
    let large: Vec<u32> = (1..=120).collect();
    let algo = BatchSingleSource::default();

    // --- Warm engine path: candidates come from the adjacency cache. ----
    let engine = EstimationEngine::new(&g);
    engine.warm(Layer::Upper);
    // Warmup: grow the thread-local scratch and any lazy cache slots.
    for _ in 0..2 {
        engine
            .estimate_batch(Layer::Upper, 0, &large, 2.0, &mut StdRng::seed_from_u64(7))
            .expect("valid batch");
    }

    // Identical seeds: round 1 (the only RNG-dependent allocation site)
    // draws the same noisy target list in both runs, so any difference in
    // allocation count is attributable to the per-candidate loop.
    let (allocs_small, report_small) = allocations_during(|| {
        engine
            .estimate_batch(Layer::Upper, 0, &small, 2.0, &mut StdRng::seed_from_u64(7))
            .expect("valid batch")
    });
    let (allocs_large, report_large) = allocations_during(|| {
        engine
            .estimate_batch(Layer::Upper, 0, &large, 2.0, &mut StdRng::seed_from_u64(7))
            .expect("valid batch")
    });
    assert_eq!(report_small.estimates.len(), 30);
    assert_eq!(report_large.estimates.len(), 120);
    assert_eq!(
        allocs_small, allocs_large,
        "warm estimate_batch allocated per candidate: {allocs_small} allocations for 30 \
         candidates vs {allocs_large} for 120"
    );
    // The per-call constant stays a handful of buffers (noisy list, packed
    // target, report vectors) — catch regressions that stay O(1) but balloon.
    assert!(
        allocs_large < 40,
        "warm estimate_batch should allocate only a few per-call buffers, got {allocs_large}"
    );

    // --- Uncached path: packing reuses the worker's scratch arena. ------
    for _ in 0..2 {
        algo.estimate_batch(
            &g,
            Layer::Upper,
            0,
            &large,
            2.0,
            &mut StdRng::seed_from_u64(7),
        )
        .expect("valid batch");
    }
    let (allocs_small, _) = allocations_during(|| {
        algo.estimate_batch(
            &g,
            Layer::Upper,
            0,
            &small,
            2.0,
            &mut StdRng::seed_from_u64(7),
        )
        .expect("valid batch")
    });
    let (allocs_large, _) = allocations_during(|| {
        algo.estimate_batch(
            &g,
            Layer::Upper,
            0,
            &large,
            2.0,
            &mut StdRng::seed_from_u64(7),
        )
        .expect("valid batch")
    });
    assert_eq!(
        allocs_small, allocs_large,
        "uncached estimate_batch allocated per candidate: {allocs_small} for 30 vs \
         {allocs_large} for 120"
    );

    // --- Serving path: pin a snapshot, query through it (ISSUE 7). ------
    // The epoch-pinned snapshot must add zero allocations on the warm
    // path: pinning is a slot CAS plus an uncontended read guard, and the
    // query runs the same engine code as above. A long poll interval
    // parks the writer thread for the whole measurement.
    let serving = cne::serving::ServingEngine::with_config(
        g.clone(),
        cne::serving::ServingConfig {
            warm_layer: Some(Layer::Upper),
            poll_interval: std::time::Duration::from_secs(30),
            ..cne::serving::ServingConfig::default()
        },
    );
    for _ in 0..2 {
        serving
            .snapshot()
            .estimate_batch(Layer::Upper, 0, &large, 2.0, &mut StdRng::seed_from_u64(7))
            .expect("valid batch");
    }
    let (allocs_pin, _) = allocations_during(|| serving.snapshot());
    assert_eq!(
        allocs_pin, 0,
        "pinning a snapshot must not allocate, got {allocs_pin}"
    );
    let (allocs_small, _) = allocations_during(|| {
        serving
            .snapshot()
            .estimate_batch(Layer::Upper, 0, &small, 2.0, &mut StdRng::seed_from_u64(7))
            .expect("valid batch")
    });
    let (allocs_large, _) = allocations_during(|| {
        serving
            .snapshot()
            .estimate_batch(Layer::Upper, 0, &large, 2.0, &mut StdRng::seed_from_u64(7))
            .expect("valid batch")
    });
    assert_eq!(
        allocs_small, allocs_large,
        "serving snapshot estimate_batch allocated per candidate: {allocs_small} for 30 vs \
         {allocs_large} for 120"
    );
    assert!(
        allocs_large < 40,
        "serving snapshot batch should match the warm engine's per-call constant, got \
         {allocs_large}"
    );
    drop(serving);

    std::env::remove_var("RAYON_NUM_THREADS");
}
